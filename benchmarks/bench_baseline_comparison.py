"""Extension: every implemented miner against three planted pattern types.

Plants one pure-shifting, one pure-scaling and one shifting-and-scaling
(with negative members) bicluster into a noisy matrix, then asks each
implemented algorithm to recover them.  The expected recovery matrix is
the paper's whole argument in one table:

| miner              | shifting | scaling | shifting-and-scaling |
|--------------------|----------|---------|----------------------|
| pCluster (+fast)   | yes      | no      | no                   |
| TriCluster-style   | no       | yes     | no                   |
| Cheng-Church (MSR) | yes      | no      | no                   |
| tendency / OPSM    | yes*     | yes*    | yes* (and outliers)  |
| reg-cluster        | yes      | yes     | yes                  |

(*) tendency models accept anything order-compatible — including genes
with no affine relation at all, which is why "recovers" is qualified by
a coherence check for them.
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.baselines.cheng_church import mine_msr_biclusters
from repro.baselines.pcluster import mine_pclusters
from repro.baselines.pcluster_fast import mine_pclusters_fast
from repro.baselines.tendency import mine_tendency_clusters
from repro.baselines.tricluster import mine_scaling_clusters
from repro.bench.report import ascii_table
from repro.core.miner import mine_reg_clusters
from repro.matrix.expression import ExpressionMatrix

BASE = np.array([2.0, 8.0, 4.0, 12.0, 6.0, 10.0])

#: gene ids of each planted family
SHIFTING = (0, 1, 2)
SCALING = (3, 4, 5)
MIXED = (6, 7, 8)


def planted_matrix() -> ExpressionMatrix:
    rng = np.random.default_rng(29)
    values = rng.uniform(0.0, 40.0, size=(14, 6))
    values[0] = BASE
    values[1] = BASE + 6.0
    values[2] = BASE + 15.0
    values[3] = BASE
    values[4] = 2.0 * BASE
    values[5] = 0.5 * BASE
    values[6] = BASE
    values[7] = 1.8 * BASE + 5.0
    values[8] = -1.2 * BASE + 30.0
    return ExpressionMatrix(values)


def recovers(gene_sets, family) -> bool:
    return any(set(family) <= set(genes) for genes in gene_sets)


def test_recovery_matrix(benchmark):
    matrix = planted_matrix()

    def run_all():
        outcomes = {}
        exact = mine_pclusters(
            matrix, delta=1e-6, min_genes=3, min_conditions=6
        )
        outcomes["pCluster (exact)"] = [
            c.genes for c in exact
        ]
        outcomes["pCluster (MDS fast)"] = [
            c.genes
            for c in mine_pclusters_fast(
                matrix, delta=1e-6, min_genes=3, min_conditions=6
            )
        ]
        outcomes["TriCluster-style"] = [
            c.genes
            for c in mine_scaling_clusters(
                matrix, epsilon=1e-6, min_genes=3, min_conditions=6
            )
        ]
        outcomes["Cheng-Church (MSR)"] = [
            c.genes
            for c in mine_msr_biclusters(
                matrix, delta=0.01, n_clusters=4, seed=0, min_genes=3,
                min_conditions=6,
            )
        ]
        outcomes["tendency (OP)"] = [
            c.genes
            for c in mine_tendency_clusters(
                matrix, min_genes=3, min_conditions=6
            )
        ]
        outcomes["reg-cluster"] = [
            c.genes
            for c in mine_reg_clusters(
                matrix, min_genes=3, min_conditions=6, gamma=0.15,
                epsilon=0.01,
            ).clusters
        ]
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    table = {}
    for miner, gene_sets in outcomes.items():
        row = [
            recovers(gene_sets, SHIFTING),
            recovers(gene_sets, SCALING),
            recovers(gene_sets, MIXED),
        ]
        table[miner] = row
        rows.append([miner, *row])
    print_block(
        "Recovery matrix: planted shifting / scaling / mixed families",
        ascii_table(
            ["miner", "pure shifting", "pure scaling",
             "shifting-and-scaling"],
            rows,
        ),
    )

    # the paper's core claims, one per cell
    assert table["pCluster (exact)"] == [True, False, False]
    assert table["pCluster (MDS fast)"][0] is True
    assert table["pCluster (MDS fast)"][2] is False
    assert table["TriCluster-style"] == [False, True, False]
    assert table["reg-cluster"] == [True, True, True]
    # tendency models accept ascending families (magnitude-blind)
    assert table["tendency (OP)"][0] is True
    # MSR handles shifting but not per-gene scaling or sign flips
    assert table["Cheng-Church (MSR)"][2] is False
