"""Benchmarks on the paper's running example (Table 1).

Regenerates the worked examples: the RWave^0.15 models of Figure 3, the
enumeration outcome of Figure 6 (exactly one validated chain,
``c7 <- c9 <- c5 <- c1 <- c3``), and the Figure 2 cluster content.
"""

from __future__ import annotations

from conftest import print_block

from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.rwave import RWaveIndex, build_rwave
from repro.core.trace import SearchTrace
from repro.datasets.running_example import load_running_example

PARAMS = MiningParameters(
    min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
)


def test_fig3_rwave_construction(benchmark):
    """Figure 3: build the RWave^0.15 models of g1..g3."""
    matrix = load_running_example()
    index = benchmark(RWaveIndex, matrix, 0.15)
    lines = []
    for gene in range(3):
        model = build_rwave(matrix, gene, 0.15)
        lines.append(
            f"g{gene + 1} (gamma_i = {model.threshold:g}):"
        )
        lines.append(model.render(matrix.condition_names))
    print_block("Figure 3: RWave^0.15 models", lines)
    assert len(index) == 3


def test_fig6_enumeration(benchmark):
    """Figure 6: the full depth-first enumeration with prunings."""
    matrix = load_running_example()

    def run():
        return RegClusterMiner(matrix, PARAMS).mine()

    result = benchmark(run)
    cluster = result[0]
    tracer = SearchTrace()
    RegClusterMiner(matrix, PARAMS, tracer=tracer).mine()
    lines = [
        "parameters: MinG=3 MinC=5 gamma=0.15 epsilon=0.1",
        f"validated representative regulation chains: {len(result)}",
        cluster.describe(matrix),
        "",
        "enumeration tree (paper Figure 6):",
        tracer.render(matrix.condition_names),
        "",
        "search statistics:",
    ]
    lines += [
        f"  {key} = {value}"
        for key, value in result.statistics.as_dict().items()
    ]
    print_block("Figure 6: enumeration of the running example", lines)

    assert len(result) == 1
    assert [matrix.condition_names[c] for c in cluster.chain] == [
        "c7", "c9", "c5", "c1", "c3",
    ]
    assert cluster.p_members == (0, 2)
    assert cluster.n_members == (1,)


def test_fig2_cluster_relationships(benchmark):
    """Figure 2: the mined cluster exhibits the printed affine relations."""
    matrix = load_running_example()
    result = RegClusterMiner(matrix, PARAMS).mine()
    cluster = result[0]

    fits = benchmark(cluster.affine_fits, matrix, 2)  # reference g3
    lines = ["fitted d_g = s1 * d_g3 + s2 on the cluster's conditions:"]
    for gene, fit in sorted(fits.items()):
        lines.append(
            f"  g{gene + 1}: s1 = {fit.scaling:+.3f}, s2 = {fit.shifting:+.3f}"
            f" (residual {fit.residual:.2g})"
        )
    print_block("Figure 2: shifting-and-scaling relations", lines)

    assert abs(fits[0].scaling - 2.5) < 1e-9
    assert abs(fits[0].shifting + 5.0) < 1e-9
    assert abs(fits[1].scaling + 2.5) < 1e-9
    assert abs(fits[1].shifting - 35.0) < 1e-9
