"""Parameter sensitivity (extension): gamma, epsilon, MinG, MinC sweeps.

The paper fixes one parameter setting per experiment; this bench charts
how each mining knob shapes runtime and output volume on a fixed
synthetic dataset, filling in the sensitivity analysis DESIGN.md calls
out.  Expected shapes:

* raising **gamma** shrinks the regulated-pair graph → fewer, smaller
  clusters, faster search;
* raising **epsilon** widens coherence windows → more (and wider)
  clusters, slower search;
* raising **MinG** / **MinC** prunes harder → monotonically fewer
  clusters.
"""

from __future__ import annotations

import time

from conftest import PAPER_SCALE, print_block

from repro.bench.report import ascii_table, format_seconds
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.datasets.synthetic import make_synthetic_dataset

if PAPER_SCALE:
    DATASET = dict(n_genes=1000, n_conditions=24, n_clusters=10, seed=23,
                   gene_fraction=0.02)
else:
    DATASET = dict(n_genes=300, n_conditions=14, n_clusters=4, seed=23,
                   gene_fraction=0.04)

BASELINE = dict(min_genes=10, min_conditions=6, gamma=0.1, epsilon=0.01)


def _sweep(data, knob, values):
    rows = []
    counts = []
    for value in values:
        params = MiningParameters(**{**BASELINE, knob: value})
        start = time.perf_counter()
        result = RegClusterMiner(data.matrix, params).mine()
        seconds = time.perf_counter() - start
        rows.append([f"{knob}={value}", len(result),
                     result.statistics.nodes_expanded,
                     format_seconds(seconds)])
        counts.append(len(result))
    return rows, counts


def test_gamma_sensitivity(benchmark):
    data = make_synthetic_dataset(**DATASET)

    def run():
        return _sweep(data, "gamma", [0.02, 0.05, 0.1, 0.15, 0.2])

    rows, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Sensitivity: regulation threshold gamma",
        ascii_table(["setting", "clusters", "nodes", "time"], rows),
    )
    # a stricter regulation test can only remove regulated pairs,
    # so the trend in output volume is non-increasing overall
    assert counts[0] >= counts[-1]


def test_epsilon_sensitivity(benchmark):
    data = make_synthetic_dataset(**DATASET)

    def run():
        return _sweep(data, "epsilon", [0.0, 0.01, 0.05, 0.2])

    rows, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Sensitivity: coherence threshold epsilon",
        ascii_table(["setting", "clusters", "nodes", "time"], rows),
    )
    assert counts[-1] >= counts[0]  # looser coherence -> more output


def test_min_genes_sensitivity(benchmark):
    data = make_synthetic_dataset(**DATASET)

    def run():
        return _sweep(data, "min_genes", [5, 10, 15, 20, 25])

    rows, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Sensitivity: MinG",
        ascii_table(["setting", "clusters", "nodes", "time"], rows),
    )
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_min_conditions_sensitivity(benchmark):
    data = make_synthetic_dataset(**DATASET)

    def run():
        return _sweep(data, "min_conditions", [4, 5, 6, 7, 8])

    rows, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Sensitivity: MinC",
        ascii_table(["setting", "clusters", "nodes", "time"], rows),
    )
    assert counts[0] >= counts[-1]
