"""Ablation: the contribution of each pruning strategy (section 4).

Not a table in the paper, but DESIGN.md calls out the four prunings as
the algorithm's load-bearing design choices.  This bench mines the same
synthetic dataset with each lossless pruning disabled in turn (and all
disabled), reporting nodes expanded and runtime; output equality with the
fully-pruned run is asserted every time (prunings 1-3 are lossless).
"""

from __future__ import annotations

import time

from conftest import PAPER_SCALE, print_block

from repro.bench.report import ascii_table, format_seconds
from repro.bench.runner import paper_mining_parameters
from repro.core.miner import PruningConfig, RegClusterMiner
from repro.datasets.synthetic import make_synthetic_dataset

if PAPER_SCALE:
    DATASET = dict(n_genes=800, n_conditions=20, n_clusters=8, seed=17)
else:
    DATASET = dict(n_genes=200, n_conditions=12, n_clusters=3, seed=17)

CONFIGS = [
    ("all prunings", PruningConfig()),
    ("no MinG pruning (1)", PruningConfig(min_genes=False)),
    ("no MinC reachability (2)", PruningConfig(reachability=False)),
    ("no p-majority (3a)", PruningConfig(p_majority=False)),
    ("no redundancy (3b)", PruningConfig(redundancy=False)),
    ("no prunings at all", PruningConfig.none()),
]


def test_pruning_ablation(benchmark):
    data = make_synthetic_dataset(**DATASET)
    params = paper_mining_parameters(DATASET["n_genes"])

    def run_all():
        rows = []
        results = []
        for label, config in CONFIGS:
            start = time.perf_counter()
            result = RegClusterMiner(
                data.matrix, params, prunings=config
            ).mine()
            seconds = time.perf_counter() - start
            rows.append(
                [
                    label,
                    result.statistics.nodes_expanded,
                    result.statistics.candidates_examined,
                    format_seconds(seconds),
                ]
            )
            results.append(set(result.clusters))
        return rows, results

    rows, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_block(
        "Ablation: pruning strategies (1), (2), (3a), (3b)",
        ascii_table(
            ["configuration", "nodes", "candidates", "time"], rows
        ),
    )

    # lossless: every configuration yields the identical cluster set
    reference = results[0]
    for (label, __), clusters in zip(CONFIGS, results):
        assert clusters == reference, f"{label} changed the output"

    # the full pruning stack expands the fewest nodes
    nodes = [row[1] for row in rows]
    assert nodes[0] == min(nodes)
    assert nodes[-1] >= nodes[0]
