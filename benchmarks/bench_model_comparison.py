"""Figures 1, 2 and 4: model-comparison experiments.

Thin benchmark wrappers around :mod:`repro.experiments.model_comparison`;
each test runs the driver, prints its rendered report and asserts the
paper's claims hold.
"""

from __future__ import annotations

from conftest import print_block

from repro.experiments.model_comparison import (
    run_figure1,
    run_figure2,
    run_figure4,
)


def test_fig1_pattern_universality(benchmark):
    """Figure 1: only reg-cluster groups all six patterns at once."""
    result = benchmark(run_figure1)
    print_block(
        "Figure 1: P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3", result.render()
    )
    assert result.shifting_groups_subfamily
    assert result.scaling_groups_subfamily
    assert not result.shifting_groups_all
    assert not result.scaling_groups_all
    assert result.reg_cluster_groups_all


def test_fig2_negative_correlation(benchmark):
    """Figure 2: only reg-cluster groups g1, g2, g3 on the chain."""
    result = benchmark(run_figure2)
    print_block(
        "Figure 2: negative correlation on the running example",
        result.render(),
    )
    assert not result.shifting_accepts
    assert not result.scaling_accepts
    assert result.memberships == {"g1": "p", "g2": "n", "g3": "p"}


def test_fig4_outlier(benchmark):
    """Figure 4: tendency models accept the outlier, reg-cluster rejects,
    pattern models find nothing at all."""
    result = benchmark(run_figure4)
    print_block(
        "Figure 4: the outlier g2 on {c2, c4, c8, c10}", result.render()
    )
    gene_sets = [set(genes) for genes in result.reg_cluster_gene_sets]
    assert result.tendency_groups_all
    assert {0, 2} in gene_sets
    assert {0, 1, 2} not in gene_sets
    assert not result.pattern_models_relate_g1_g3
