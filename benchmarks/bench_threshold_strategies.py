"""Extension: the section 3.1 regulation-threshold strategies compared.

Mines one synthetic dataset under every implemented threshold strategy
(Eq. 4 range-fraction, closest-pair average [18], normalized std [17],
mean fraction [5], and the global constant the paper argues against) and
reports output volume, recovery of the embedded ground truth and
runtime.  The expected shape: the per-gene (local) strategies all
recover the embedded clusters; the global constant — blind to per-gene
sensitivity — misses the low-amplitude ones.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import PAPER_SCALE, print_block

from repro.bench.report import ascii_table, format_seconds
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.thresholds import (
    closest_pair_average,
    constant,
    mean_fraction,
    normalized_std,
    range_fraction,
)
from repro.datasets.synthetic import make_synthetic_dataset
from repro.eval.match import match_report
from repro.matrix.expression import ExpressionMatrix

N_GENES = 500 if PAPER_SCALE else 200


def scaled_dataset():
    """Synthetic data whose embedded clusters span amplitudes 100x apart.

    Half the member genes are rescaled to a tiny amplitude, so any
    *global* threshold large enough to suppress background noise also
    silences them.
    """
    data = make_synthetic_dataset(
        n_genes=N_GENES, n_conditions=18, n_clusters=3, seed=41,
        gene_fraction=0.05, dimensionality_jitter=0,
    )
    values = np.array(data.matrix.values, copy=True)
    shrunken = []
    for cluster in data.embedded:
        low_half = cluster.genes[: len(cluster.genes) // 2]
        for gene in low_half:
            values[gene] = values[gene] / 100.0
            shrunken.append(gene)
    return ExpressionMatrix(values), data.embedded, shrunken


def test_threshold_strategy_comparison(benchmark):
    matrix, embedded, shrunken = scaled_dataset()
    params = MiningParameters(
        min_genes=max(2, int(0.05 * N_GENES) - 3),
        min_conditions=6,
        gamma=0.1,
        epsilon=0.05,
    )
    # a constant threshold tuned for the *large* amplitude genes
    typical_range = float(np.median(matrix.gene_ranges()))
    strategies = {
        "range_fraction (Eq. 4)": range_fraction(matrix, 0.1),
        "closest_pair_average [18]": closest_pair_average(matrix, 1.0),
        "normalized_std [17]": normalized_std(matrix, 0.3),
        "mean_fraction [5]": mean_fraction(matrix, 0.15),
        "constant (global)": constant(matrix, 0.1 * typical_range),
    }

    def run_all():
        rows = []
        recovered = {}
        for label, thresholds in strategies.items():
            start = time.perf_counter()
            result = RegClusterMiner(
                matrix, params, thresholds=thresholds
            ).mine()
            seconds = time.perf_counter() - start
            report = match_report(result.clusters, embedded, threshold=0.6)
            rows.append(
                [label, len(result),
                 f"{report.n_recovered}/{report.n_embedded}",
                 format_seconds(seconds)]
            )
            recovered[label] = report.n_recovered
        return rows, recovered

    rows, recovered = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_block(
        "Threshold strategies (section 3.1): local vs global",
        [
            f"dataset: {matrix.n_genes} genes, 3 embedded clusters; half "
            f"of each cluster's members rescaled to 1% amplitude",
            "",
            ascii_table(
                ["strategy", "clusters", "recovered", "time"], rows
            ),
        ],
    )

    # every *local* strategy recovers all embedded clusters
    for label in list(strategies)[:4]:
        assert recovered[label] == len(embedded), label
    # the global constant misses them (its threshold dwarfs the tiny
    # members' swings, splitting every embedded cluster below MinG)
    assert recovered["constant (global)"] < len(embedded)
