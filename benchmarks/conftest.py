"""Shared fixtures for the benchmark suite.

Set ``REPRO_BENCH_SCALE=quick`` to shrink the workloads (useful on slow
machines); the default reproduces the paper's experiment sizes.

The yeast effectiveness run (Figure 8 / Table 2) is mined once per
session — via :func:`repro.experiments.run_figure8` — and shared between
the benchmarks that report on it.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.experiments.fig8 import Figure8Result, run_figure8

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper") != "quick"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return "paper" if PAPER_SCALE else "quick"


@pytest.fixture(scope="session")
def figure8_run() -> Figure8Result:
    """The section 5.2 mining run, performed once per session."""
    shape = (2884, 17) if PAPER_SCALE else (600, 17)
    return run_figure8(shape=shape)


def print_block(title: str, lines: "List[str] | str") -> None:
    """Print a clearly delimited report block inside benchmark output."""
    body = lines if isinstance(lines, str) else "\n".join(lines)
    print()
    print(f"=== {title} " + "=" * max(1, 70 - len(title)))
    print(body)
    print("=" * 74)
