"""Figure 7: efficiency of reg-cluster on synthetic datasets.

Thin benchmark wrapper around :func:`repro.experiments.run_figure7`.
Expected shapes (the reproduction target — absolute numbers are
hardware-bound):

* runtime vs #g      : slightly more than linear;
* runtime vs #cond   : clearly super-linear (the worst axis);
* runtime vs #clus   : approximately linear.
"""

from __future__ import annotations

from conftest import PAPER_SCALE, print_block

from repro.bench.runner import paper_mining_parameters
from repro.core.miner import RegClusterMiner
from repro.datasets.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.experiments.fig7 import run_figure7

SCALE = "paper" if PAPER_SCALE else "quick"


def test_fig7_all_sweeps(benchmark):
    """All three panels in one driver run (each point mines a fresh
    dataset with the paper's Figure 7 mining parameters)."""
    def run():
        return run_figure7(scale=SCALE)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block("Figure 7: efficiency on synthetic datasets",
                result.render())

    for sweep in result.sweeps.values():
        assert all(p.seconds > 0 for p in sweep.points)
    # the paper's qualitative claim: conditions scale worse than linear
    assert result.growth_ratio("n_conditions") > 1.0
    # ... and worse than the other two axes
    assert result.growth_ratio("n_conditions") > result.growth_ratio(
        "n_genes"
    )
    assert result.growth_ratio("n_conditions") > result.growth_ratio(
        "n_clusters"
    )


def test_fig7_single_default_run(benchmark):
    """One mining run at the generator defaults (the sweeps' center)."""
    config = (
        SyntheticConfig()
        if PAPER_SCALE
        else SyntheticConfig(n_genes=400, n_conditions=16, n_clusters=6)
    )
    data = make_synthetic_dataset(config)
    params = paper_mining_parameters(config.n_genes)

    def run():
        return RegClusterMiner(data.matrix, params).mine()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print_block(
        "Figure 7 center point",
        [
            f"matrix: {data.matrix.n_genes} x {data.matrix.n_conditions}, "
            f"{data.n_embedded} embedded clusters",
            f"clusters found: {len(result)}",
            f"nodes expanded: {result.statistics.nodes_expanded}",
        ],
    )
    assert len(result) > 0
