"""Figure 8 / section 5.2: effectiveness on the yeast dataset (surrogate).

Thin benchmark wrapper around :func:`repro.experiments.run_figure8`: the
session fixture performs the mining once; this module re-validates the
output, prints the section 5.2 report, and asserts the paper's claims —
cluster count magnitude, non-overlapping clusters with mixed-sign
members and profile crossovers, and the baselines' inability to express
them.
"""

from __future__ import annotations

from conftest import print_block

from repro.core.validate import validation_errors


def test_fig8_yeast_effectiveness(benchmark, figure8_run):
    run = figure8_run
    matrix = run.surrogate.matrix

    # benchmark payload: independent re-validation of every mined cluster
    # (the mining itself happened once in the session fixture; its wall
    # time is part of the printed report).
    def validate_all():
        return [
            validation_errors(matrix, cluster, run.parameters)
            for cluster in run.mining.clusters
        ]

    errors = benchmark.pedantic(validate_all, rounds=1, iterations=1)
    print_block("Figure 8: yeast effectiveness", run.render())

    assert all(not e for e in errors)
    # same order of magnitude as the paper's 21 clusters
    assert 10 <= run.n_clusters <= 60
    # non-overlapping clusters exist (the paper's 0% end of the range);
    # asserting the exact sentinel is intended here
    assert run.overlap.min_overlap == 0.0  # reglint: disable=RL101
    assert len(run.reported) == 3
    for entry in run.reported:
        cluster = entry.cluster
        assert cluster.n_genes >= run.parameters.min_genes
        assert cluster.n_conditions >= run.parameters.min_conditions
        # negative correlation present in every reported cluster
        assert cluster.n_members
        assert entry.negative_scaling_genes > 0
        # the crossover signature of shifting-and-scaling
        assert entry.crossovers > 0
        # ground truth: each reported cluster matches an embedded module
        assert entry.match_jaccard > 0.6


def test_fig8_baselines_miss_the_clusters(benchmark, figure8_run):
    """Mixing a p-member with an n-member blows up both the pScore and
    the expression ratio range (paper section 1.3)."""
    run = figure8_run

    def collect():
        return [
            (entry.relative_pscore, entry.scaling_model_accepts)
            for entry in run.reported
        ]

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["cluster  pScore/spread  scaling-model(eps=1.0) accepts?"]
    for index, (relative_pscore, scaling_ok) in enumerate(rows, start=1):
        lines.append(f"  C{index:<5} {relative_pscore:13.2f}  {scaling_ok}")
    print_block("Figure 8 (comparison): pattern-based baselines", lines)

    # far outside the pure-shifting model ...
    assert all(r > 0.5 for r, __ in rows)
    # ... and outside the pure-scaling model even at a generous epsilon
    assert not any(ok for __, ok in rows)
