"""Table 2: GO term enrichment of the discovered bi-reg-clusters.

Thin benchmark wrapper around :func:`repro.experiments.run_table2`,
reusing the session's Figure 8 mining run.  The reproduction target: per
reported cluster, the top term in each GO namespace is the module's
characteristic term, at an extremely low hypergeometric p-value.
"""

from __future__ import annotations

from conftest import print_block

from repro.datasets.yeast import DEFAULT_MODULES
from repro.experiments.table2 import run_table2


def test_table2_go_enrichment(benchmark, figure8_run):
    def build():
        return run_table2(figure8_run)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    print_block(
        "Table 2: top GO terms of the discovered biclusters",
        result.render(),
    )

    modules = {m.name: m for m in DEFAULT_MODULES}
    assert len(result.rows) == 3
    for row in result.rows:
        module = modules[row.module_name]
        best = row.top_terms
        assert best["biological_process"].name == module.process
        assert best["molecular_function"].name == module.function
        assert best["cellular_component"].name == module.component
        # "extremely low p-values" — orders of magnitude below chance
        assert all(p < 1e-2 for p in row.p_values())
        assert best["biological_process"].p_value < 1e-6
