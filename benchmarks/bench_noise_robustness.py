"""Noise robustness (extension): recovery vs noise level, per epsilon.

The paper embeds perfect clusters; real measurements are noisy.  This
bench charts ground-truth recovery as Gaussian noise grows, for a strict
and a relaxed coherence threshold, plus the permutation null control.
Expected shape: the relaxed epsilon tolerates noise the strict one
cannot, and the null control recovers nothing at any setting.
"""

from __future__ import annotations

from conftest import PAPER_SCALE, print_block

from repro.bench.report import ascii_table
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.datasets.noise import add_gaussian_noise, permute_cells
from repro.datasets.synthetic import make_synthetic_dataset
from repro.eval.match import match_report

if PAPER_SCALE:
    DATASET = dict(n_genes=400, n_conditions=18, n_clusters=4, seed=31,
                   gene_fraction=0.05, dimensionality_jitter=0)
else:
    DATASET = dict(n_genes=150, n_conditions=14, n_clusters=2, seed=31,
                   gene_fraction=0.08, dimensionality_jitter=0)

NOISE_LEVELS = [0.0, 0.005, 0.01, 0.02]
EPSILONS = [0.05, 0.5]


def test_recovery_under_noise(benchmark):
    data = make_synthetic_dataset(**DATASET)
    min_genes = max(2, int(DATASET["n_genes"] * DATASET["gene_fraction"]) - 3)

    def run():
        rows = []
        recovered = {}
        for level in NOISE_LEVELS:
            noisy = add_gaussian_noise(data.matrix, level, seed=3)
            row = [f"{level:.3f}"]
            for epsilon in EPSILONS:
                params = MiningParameters(
                    min_genes=min_genes, min_conditions=6,
                    gamma=0.08, epsilon=epsilon,
                )
                result = RegClusterMiner(noisy, params).mine()
                report = match_report(
                    result.clusters, data.embedded, threshold=0.8
                )
                row.append(f"{report.n_recovered}/{report.n_embedded}")
                recovered[(level, epsilon)] = report.n_recovered
            rows.append(row)
        return rows, recovered

    rows, recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Robustness: embedded-cluster recovery vs noise level",
        ascii_table(
            ["noise (x gene range)",
             *(f"recovered @ eps={e}" for e in EPSILONS)],
            rows,
        ),
    )
    n_embedded = data.n_embedded
    # noiseless data is fully recovered at either epsilon
    assert recovered[(0.0, EPSILONS[0])] == n_embedded
    # at every noise level the relaxed epsilon does at least as well
    for level in NOISE_LEVELS:
        assert recovered[(level, EPSILONS[1])] >= recovered[
            (level, EPSILONS[0])
        ]
    # the relaxed epsilon absorbs moderate noise (1% of gene range) that
    # breaks the strict setting completely; the top level (2%) is
    # observational — H-score spread grows past 0.5 there
    assert recovered[(0.01, EPSILONS[1])] == n_embedded
    assert recovered[(0.01, EPSILONS[0])] < n_embedded


def test_permutation_null_control(benchmark):
    data = make_synthetic_dataset(**DATASET)
    shuffled = permute_cells(data.matrix, seed=5)
    params = MiningParameters(
        min_genes=max(2, int(DATASET["n_genes"] * DATASET["gene_fraction"])),
        min_conditions=6,
        gamma=0.08,
        epsilon=0.5,
    )

    def run():
        result = RegClusterMiner(shuffled, params).mine()
        return match_report(result.clusters, data.embedded, threshold=0.5)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "Robustness: permutation null control",
        [
            f"clusters found on permuted data: {report.n_found}",
            f"embedded clusters recovered:     "
            f"{report.n_recovered}/{report.n_embedded}",
        ],
    )
    assert report.n_recovered == 0
