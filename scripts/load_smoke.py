"""Load smoke test: concurrent submission storm against the front door.

Drives the selector-based HTTP front end with many concurrent client
threads (``LOAD_CLIENTS``, default 32 for laptops; CI runs 1000) for
``LOAD_DURATION`` seconds and asserts the two properties admission
control promises (docs/service.md):

1. **Bounded tail latency** — the server-side p99 of
   ``repro_http_request_seconds`` (service time, long-poll park
   excluded) must stay under the committed threshold in
   ``LOAD_thresholds.json``.  The full latency summary is written as
   JSON (``LOAD_SUMMARY``, default ``load-summary.json``) and uploaded
   as a CI artifact, so regressions come with the evidence attached.
2. **Zero dropped accepted jobs** — every job id returned by a
   successful submission must reach a result state.  Sheds (429) are
   fine — that is the design — but an *accepted* job that vanishes is
   a bug.

A second mini-phase boots a deliberately tiny server (one worker,
depth-1 queue) and requires overload to surface as typed
:class:`ServiceBusy` errors carrying ``Retry-After``, with the
``repro_http_shed_total`` counter visible in ``/metrics`` — the
degrade-by-refusal contract, end to end.

Environment knobs: ``LOAD_CLIENTS``, ``LOAD_DURATION`` (seconds),
``LOAD_SUMMARY``, ``LOAD_THRESHOLDS``.  Exit status 0 on success.
Used by ``make load-smoke`` and the CI ``load-smoke`` job.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List

from repro.core.params import MiningParameters
from repro.matrix.expression import ExpressionMatrix
from repro.service import MiningService, ServiceBusy, ServiceClient, serve
from repro.service.jobs import parameters_to_dict

CLIENTS = int(os.environ.get("LOAD_CLIENTS", "32"))
DURATION = float(os.environ.get("LOAD_DURATION", "3"))
SUMMARY_PATH = os.environ.get("LOAD_SUMMARY", "load-summary.json")
THRESHOLDS_PATH = os.environ.get("LOAD_THRESHOLDS", "LOAD_thresholds.json")

#: Distinct tiny matrices shared by all clients: submissions dedupe
#: onto this many jobs (idempotent by content + parameters), so the
#: storm exercises the front door, not the miner.
N_MATRICES = 8

PARAMS = MiningParameters(
    min_genes=2, min_conditions=3, gamma=0.3, epsilon=0.5
)

PRIORITIES = ("high", "normal", "low")


def _matrix(index: int) -> ExpressionMatrix:
    """A deterministic 6x6 matrix, distinct per index."""
    values = [
        [((row * 7 + col * 3 + index) % 11) + index * 0.125
         for col in range(6)]
        for row in range(6)
    ]
    return ExpressionMatrix(values)


class _Tally:
    """Cross-thread counters for the storm phase."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: List[float] = []
        self.submissions = 0
        self.requests = 0
        self.busy_retries_exhausted = 0
        self.errors: List[str] = []
        self.job_ids: set = set()
        self.in_flight = 0
        self.peak_in_flight = 0

    def enter(self) -> None:
        with self.lock:
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def leave(self) -> None:
        with self.lock:
            self.in_flight -= 1


def _storm_client(
    index: int, base_url: str, barrier: threading.Barrier, tally: _Tally,
    deadline_box: Dict[str, float],
) -> None:
    client = ServiceClient(
        base_url,
        connect_retries=8,
        retry_backoff=0.05,
        tenant=f"team-{index % 4}",
    )
    matrices = [_matrix(k) for k in range(N_MATRICES)]
    barrier.wait()
    if "deadline" not in deadline_box:  # first thread through sets it
        deadline_box.setdefault("deadline", time.monotonic() + DURATION)
    deadline = deadline_box["deadline"]
    iteration = 0
    while time.monotonic() < deadline:
        matrix = matrices[(index + iteration) % N_MATRICES]
        priority = PRIORITIES[iteration % len(PRIORITIES)]
        try:
            tally.enter()
            started = time.monotonic()
            record = client.submit_matrix(
                matrix, parameters_to_dict(PARAMS), priority=priority
            )
            elapsed = time.monotonic() - started
            with tally.lock:
                tally.submissions += 1
                tally.requests += 1
                tally.latencies.append(elapsed)
                tally.job_ids.add(record["job_id"])
        except ServiceBusy:
            # No job id to poll this round — on the first iteration
            # `record` is unbound, and later it would be stale.
            with tally.lock:
                tally.busy_retries_exhausted += 1
            iteration += 1
            continue
        except Exception as error:  # noqa: BLE001 — summarized below
            with tally.lock:
                tally.errors.append(f"submit: {error!r}")
            return
        finally:
            tally.leave()
        try:
            tally.enter()
            started = time.monotonic()
            client.status(record["job_id"])
            elapsed = time.monotonic() - started
            with tally.lock:
                tally.requests += 1
                tally.latencies.append(elapsed)
        except ServiceBusy:
            with tally.lock:
                tally.busy_retries_exhausted += 1
        except Exception as error:  # noqa: BLE001
            with tally.lock:
                tally.errors.append(f"status: {error!r}")
            return
        finally:
            tally.leave()
        iteration += 1


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[rank]


def storm_phase() -> Dict[str, Any]:
    """Phase 1: the submission storm; returns the latency summary."""
    with tempfile.TemporaryDirectory(prefix="reg-cluster-load-") as store:
        service = MiningService(store)
        server = serve(
            service,
            max_connections=max(2048, 2 * CLIENTS),
            queue_depth=max(512, CLIENTS),
            http_workers=16,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[0], server.server_address[1]
        base_url = f"http://{host}:{port}"
        print(f"load: daemon on {base_url}, {CLIENTS} clients, "
              f"{DURATION:g}s storm")
        tally = _Tally()
        barrier = threading.Barrier(CLIENTS)
        deadline_box: Dict[str, float] = {}
        try:
            threads = [
                threading.Thread(
                    target=_storm_client,
                    args=(i, base_url, barrier, tally, deadline_box),
                    daemon=True,
                )
                for i in range(CLIENTS)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=DURATION + 120.0)
            alive = sum(1 for worker in threads if worker.is_alive())
            if alive:
                print(f"load: FAIL — {alive} client thread(s) hung")
                return {"failed": True}
            if tally.errors:
                print(f"load: FAIL — {len(tally.errors)} client error(s), "
                      f"first: {tally.errors[0]}")
                return {"failed": True}

            # Zero dropped accepted jobs: every accepted id must reach
            # a result state.
            waiter = ServiceClient(base_url, connect_retries=8)
            dropped = []
            for job_id in sorted(tally.job_ids):
                record = waiter.wait(job_id, timeout=120.0)
                if record["state"] not in ("done", "degraded"):
                    dropped.append((job_id, record["state"]))
            if dropped:
                print(f"load: FAIL — accepted jobs dropped: {dropped}")
                return {"failed": True}

            # Server-side latency: the p99 the threshold file gates.
            latency = service.metrics.histogram(
                "repro_http_request_seconds",
                "HTTP request latency in seconds, by method "
                "(long-poll park time excluded).",
                labelnames=("method",),
            )
            server_p50 = max(
                latency.labels(method=m).quantile(0.5)
                for m in ("GET", "POST")
            )
            server_p99 = max(
                latency.labels(method=m).quantile(0.99)
                for m in ("GET", "POST")
            )
            metrics_text = service.metrics.render()
            shed_lines = [
                line for line in metrics_text.splitlines()
                if line.startswith("repro_http_shed_total")
            ]
            summary = {
                "clients": CLIENTS,
                "duration_seconds": DURATION,
                "requests_total": tally.requests,
                "submissions_total": tally.submissions,
                "distinct_jobs": len(tally.job_ids),
                "jobs_all_finished": True,
                "peak_in_flight": tally.peak_in_flight,
                "busy_after_retries": tally.busy_retries_exhausted,
                "client": {
                    "p50_seconds": _percentile(tally.latencies, 0.50),
                    "p95_seconds": _percentile(tally.latencies, 0.95),
                    "p99_seconds": _percentile(tally.latencies, 0.99),
                },
                "server": {
                    "p50_seconds": server_p50,
                    "p99_seconds": server_p99,
                },
                "sheds": shed_lines,
            }
            print(f"load: {tally.requests} requests from {CLIENTS} "
                  f"clients (peak in-flight {tally.peak_in_flight}), "
                  f"{len(tally.job_ids)} distinct jobs all finished")
            print(f"load: server p50 {server_p50 * 1000:.1f}ms, "
                  f"p99 {server_p99 * 1000:.1f}ms; client p99 "
                  f"{summary['client']['p99_seconds'] * 1000:.1f}ms")
            return summary
        finally:
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


def overload_phase() -> bool:
    """Phase 2: a tiny server must refuse crisply, not collapse."""
    with tempfile.TemporaryDirectory(prefix="reg-cluster-load-") as store:
        service = MiningService(store)  # never started: long-polls park
        server = serve(service, http_workers=1, queue_depth=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        base_url = f"http://{host}:{port}"
        try:
            client = ServiceClient(base_url, connect_retries=8)
            record = client.submit_matrix(
                _matrix(0), parameters_to_dict(PARAMS)
            )
            job_id = record["job_id"]
            impatient = ServiceClient(base_url, connect_retries=0)

            parked: List[Any] = []

            def park(wait_s: float) -> None:
                try:
                    parked.append(
                        impatient.wait_for_change(job_id, wait=wait_s)
                    )
                except ServiceBusy:
                    parked.append(None)

            first = threading.Thread(target=park, args=(2.0,), daemon=True)
            first.start()
            time.sleep(0.3)
            second = threading.Thread(target=park, args=(0.5,), daemon=True)
            second.start()
            time.sleep(0.2)
            try:
                impatient.status(job_id)
            except ServiceBusy as busy:
                if busy.retry_after < 1.0:
                    print(f"load: FAIL — Retry-After hint "
                          f"{busy.retry_after}, expected >= 1")
                    return False
                print(f"load: overload surfaced as ServiceBusy "
                      f"(retry after {busy.retry_after:g}s)")
            else:
                print("load: FAIL — full queue did not shed with 429")
                return False
            first.join(timeout=10)
            second.join(timeout=10)
            text = ServiceClient(base_url).metrics()
            if "repro_http_shed_total" not in text:
                print("load: FAIL — shed counter missing from /metrics")
                return False
            print("load: shed counter visible in /metrics")
            return True
        finally:
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


def main() -> int:
    summary = storm_phase()
    if summary.get("failed"):
        return 1
    if not overload_phase():
        return 1

    with open(SUMMARY_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"load: summary written to {SUMMARY_PATH}")

    try:
        with open(THRESHOLDS_PATH, encoding="utf-8") as handle:
            thresholds = json.load(handle)
    except FileNotFoundError:
        print(f"load: FAIL — threshold file {THRESHOLDS_PATH} missing "
              f"(commit one; the CI gate needs it)")
        return 1
    ceiling = float(thresholds["server_p99_seconds"])
    p99 = summary["server"]["p99_seconds"]
    if not p99 <= ceiling:
        print(f"load: FAIL — server p99 {p99:.3f}s exceeds the committed "
              f"threshold {ceiling:.3f}s ({THRESHOLDS_PATH})")
        return 1
    print(f"load: p99 {p99 * 1000:.1f}ms within threshold "
          f"{ceiling * 1000:.0f}ms")
    print("load: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
