"""Trace smoke test: one job, many processes, a single stitched trace.

The observability counterpart of ``scripts/serve_smoke.py``
(docs/observability.md).  Two phases:

1. **CLI tracing.**  Run ``reg-cluster mine --workers 3 --trace`` on a
   synthetic matrix through the real console entry point, then feed the
   trace file to ``reg-cluster trace summary`` and require the rendered
   per-shard breakdown.
2. **Daemon tracing under chaos.**  Run a :class:`MiningService` with a
   ``trace_dir`` and a fault plan that crashes one shard's first
   attempt.  The job's trace file must hold exactly one trace: a root
   ``job`` span, every shard span stitched under its trace id across
   the worker processes, and *both* attempts of the crashed shard (the
   failed one marked ``outcome=failed``).

Exit status 0 on success; prints a unified summary either way.
Used by ``make trace-smoke`` and the CI ``trace-smoke`` job.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core.params import MiningParameters
from repro.datasets.running_example import load_running_example
from repro.obs.trace import load_spans, summarize_trace
from repro.service import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    MiningService,
    RetryPolicy,
)
from repro.service.jobs import JobState


def _phase_cli(tmp: Path) -> int:
    print("trace: phase 1 — reg-cluster mine --workers 3 --trace")
    matrix_path = tmp / "smoke.tsv"
    trace_path = tmp / "cli.trace.jsonl"
    base = [sys.executable, "-m", "repro.cli"]
    generate = subprocess.run(
        base + ["generate", "synthetic", "--out", str(matrix_path),
                "--genes", "120", "--conditions", "14", "--seed", "7"],
        capture_output=True, text=True,
    )
    if generate.returncode != 0:
        print(f"trace: FAIL — generate exited {generate.returncode}: "
              f"{generate.stderr}")
        return 1
    mine = subprocess.run(
        base + ["mine", str(matrix_path), "--min-genes", "3",
                "--min-conditions", "5", "--gamma", "0.15",
                "--epsilon", "0.1", "--workers", "3",
                "--trace", str(trace_path)],
        capture_output=True, text=True,
    )
    if mine.returncode != 0:
        print(f"trace: FAIL — mine exited {mine.returncode}: {mine.stderr}")
        return 1
    summary = subprocess.run(
        base + ["trace", "summary", str(trace_path)],
        capture_output=True, text=True,
    )
    if summary.returncode != 0:
        print(f"trace: FAIL — trace summary exited {summary.returncode}: "
              f"{summary.stderr}")
        return 1
    for needle in ("root: job", "phases (summed over shards)", "status"):
        if needle not in summary.stdout:
            print(f"trace: FAIL — summary missing {needle!r}:\n"
                  f"{summary.stdout}")
            return 1
    spans = load_spans(trace_path)
    if len({span["trace_id"] for span in spans}) != 1:
        print("trace: FAIL — CLI trace holds more than one trace id")
        return 1
    print(f"trace: CLI wrote {len(spans)} span(s) under one trace; "
          f"summary rendered")
    return 0


def _phase_daemon(tmp: Path) -> int:
    print("trace: phase 2 — daemon trace_dir, crash-shard retried once")
    matrix = load_running_example()
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )
    victim = 4
    plan = FaultPlan(
        [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=victim, times=1)],
        seed=5,
    )
    trace_dir = tmp / "traces"
    service = MiningService(
        tmp / "store",
        n_workers=2,
        retry=RetryPolicy(max_retries=2, backoff_base=0.01),
        fault_plan=plan,
        trace_dir=trace_dir,
    )
    try:
        record = service.submit(matrix, params)
        service.run_pending()
        done = service.status(record.job_id)
        if done.state is not JobState.DONE:
            print(f"trace: FAIL — job ended {done.state.value}: "
                  f"{done.error}")
            return 1
    finally:
        service.stop()

    trace_path = trace_dir / f"{record.job_id}.trace.jsonl"
    spans = load_spans(trace_path)
    if not spans:
        print(f"trace: FAIL — no spans in {trace_path}")
        return 1
    trace_ids = {span["trace_id"] for span in spans}
    if len(trace_ids) != 1:
        print(f"trace: FAIL — {len(trace_ids)} trace ids in one job trace")
        return 1
    roots = [s for s in spans if s["parent_id"] is None]
    if len(roots) != 1 or roots[0]["name"] != "job":
        print(f"trace: FAIL — expected one 'job' root, got "
              f"{[r['name'] for r in roots]}")
        return 1
    if roots[0]["attributes"].get("job_id") != record.job_id:
        print("trace: FAIL — root span does not carry the job id")
        return 1
    pids = {s["pid"] for s in spans if s["name"] == "shard"}
    if len(pids) < 2:
        print(f"trace: FAIL — shard spans came from {len(pids)} process(es);"
              f" expected the worker pool to contribute several")
        return 1
    attempts = sorted(
        span["attributes"]["attempt"]
        for span in spans
        if span["name"] == "shard"
        and span["attributes"].get("shard") == victim
    )
    if attempts != [0, 1]:
        print(f"trace: FAIL — crashed shard kept attempts {attempts}, "
              f"expected [0, 1]")
        return 1
    failed = [
        span for span in spans
        if span["name"] == "shard"
        and span["attributes"].get("shard") == victim
        and span["attributes"].get("outcome") == "failed"
    ]
    if len(failed) != 1:
        print("trace: FAIL — the crashed attempt is not marked failed")
        return 1
    rendered = summarize_trace(spans)
    if "resumed" in rendered.splitlines()[0]:
        print("trace: FAIL — fresh job rendered as resumed")
        return 1
    print(f"trace: {len(spans)} span(s) from {len(pids)} worker pid(s) "
          f"stitched under one root; crashed shard kept both attempts")
    return 0


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="reg-cluster-trace-") as tmp:
        for phase in (_phase_cli, _phase_daemon):
            status = phase(Path(tmp))
            if status != 0:
                return status
    print("trace: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
