"""Chaos smoke test: kill a worker mid-job, require a perfect recovery.

The fault-injection counterpart of ``scripts/serve_smoke.py``
(docs/robustness.md).  Three phases, each on a fresh store:

1. **Crash recovery, end to end.**  Boot the daemon (two-process worker
   pool) under a :class:`~repro.service.resilience.FaultPlan` that
   SIGKILLs the worker mining one deterministically chosen shard.
   Submit the paper's running example over HTTP and require the job to
   finish ``done`` with a result *identical* to a direct in-process
   :func:`repro.core.miner.mine_reg_clusters` run — the retry must heal
   the crash without a trace in the output — and the retry to show up
   in ``GET /metrics`` (``repro_shard_retries_total``).
2. **Graceful degradation.**  Re-mine with the retry budget set to
   zero and a shard that always crashes: the job must finish
   ``degraded`` (not ``failed``), listing exactly the killed shard in
   ``missing_shards``, its payload must equal the direct run minus
   that shard's clusters, and the degraded gauge / lost-shard and
   fault counters must all move.
3. **HTTP 5xx + client retry.**  Serve under an ``http-5xx`` fault and
   require the stock :class:`~repro.service.ServiceClient` to absorb
   the injected 503s transparently — while ``/healthz`` and
   ``/metrics``, which answer *before* fault injection, stay usable
   throughout the chaos.

Exit status 0 on success; prints a unified summary either way.
Used by ``make chaos-smoke`` and the CI ``chaos-smoke`` job.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time

from repro.core.miner import mine_reg_clusters
from repro.core.params import MiningParameters
from repro.core.serialize import result_to_dict
from repro.datasets.running_example import load_running_example
from repro.service import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    MiningService,
    RetryPolicy,
    ServiceClient,
    serve,
)
from repro.service.jobs import JobState, parameters_to_dict


def _wait_healthy(client: ServiceClient, timeout: float = 30.0) -> dict:
    """Poll ``GET /healthz`` until the daemon reports itself ready."""
    deadline = time.monotonic() + timeout
    while True:
        health = client.health()
        if health.get("status") == "ok" and health.get("executor_alive"):
            return health
        if time.monotonic() >= deadline:
            raise TimeoutError(f"daemon never became healthy: {health}")
        time.sleep(0.05)


def _direct_payload(matrix, params):
    return result_to_dict(
        mine_reg_clusters(
            matrix,
            min_genes=params.min_genes,
            min_conditions=params.min_conditions,
            gamma=params.gamma,
            epsilon=params.epsilon,
        ),
        matrix,
    )


def _phase_crash_recovery(matrix, params, direct) -> int:
    plan = FaultPlan(
        [FaultSpec(kind=FaultKind.KILL_WORKER, shard=None, times=1)],
        seed=7,
    )
    victim = plan.choose_shard(matrix.n_conditions)
    # Pin the kill to the chosen shard so exactly one attempt dies.
    plan = FaultPlan(
        [FaultSpec(kind=FaultKind.KILL_WORKER, shard=victim, times=1)],
        seed=7,
    )
    print(f"chaos: phase 1 — SIGKILL the worker mining shard {victim}")
    with tempfile.TemporaryDirectory(prefix="reg-cluster-chaos-") as store:
        service = MiningService(
            store,
            n_workers=2,
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
            fault_plan=plan,
        )
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            client = ServiceClient(f"http://{host}:{port}")
            _wait_healthy(client)
            record = client.submit_matrix(matrix, parameters_to_dict(params))
            done = client.wait(record["job_id"], timeout=180)
            if done["state"] != "done":
                print(f"chaos: FAIL — job ended {done['state']}: "
                      f"{done.get('error')}")
                return 1
            if not done.get("shard_failures"):
                print("chaos: FAIL — no shard failure was recorded, so the "
                      "fault never fired")
                return 1
            via_http = client.result(record["job_id"])
            if via_http != direct:
                print("chaos: FAIL — recovered result differs from direct "
                      "mining")
                return 1
            # A SIGKILLed worker fails every shard it had in flight, so
            # one kill can surface as several retried attempts.
            metrics = client.metrics()
            retries = next(
                (
                    float(line.rsplit(" ", 1)[1])
                    for line in metrics.splitlines()
                    if line.startswith("repro_shard_retries_total ")
                ),
                0.0,
            )
            if retries < 1:
                print("chaos: FAIL — /metrics did not count the shard retry")
                return 1
            if 'repro_jobs_current{state="done"} 1' not in metrics:
                print("chaos: FAIL — done gauge did not move after recovery")
                return 1
            print(
                f"chaos: worker killed and retried "
                f"(failures: {done['shard_failures']}); result identical "
                f"to direct mining ({len(direct['clusters'])} cluster(s)); "
                f"retry visible in /metrics"
            )
        finally:
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    return 0


def _phase_degraded(matrix, params, direct) -> int:
    # Kill the shard that actually carries the running example's
    # cluster, so the loss is visible in the degraded payload.
    # (Serialized chains carry condition *names*; shards are indices.)
    victim = list(matrix.condition_names).index(
        direct["clusters"][0]["chain"][0]
    )
    victim_name = matrix.condition_names[victim]
    plan = FaultPlan(
        [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=victim, times=10**6)],
        seed=11,
    )
    print(f"chaos: phase 2 — shard {victim} always crashes, retry budget 0")
    with tempfile.TemporaryDirectory(prefix="reg-cluster-chaos-") as store:
        service = MiningService(
            store,
            n_workers=1,
            retry=RetryPolicy(max_retries=0),
            fault_plan=plan,
        )
        try:
            record = service.submit(matrix, params)
            service.run_pending()
            done = service.status(record.job_id)
            if done.state is not JobState.DEGRADED:
                print(f"chaos: FAIL — expected degraded, got "
                      f"{done.state.value}: {done.error}")
                return 1
            if done.missing_shards != [victim]:
                print(f"chaos: FAIL — missing_shards {done.missing_shards}, "
                      f"expected [{victim}]")
                return 1
            payload = service.result(record.job_id)
            if any(
                c["chain"][0] == victim_name for c in payload["clusters"]
            ):
                print("chaos: FAIL — degraded payload contains clusters "
                      "from the lost shard")
                return 1
            surviving = [
                c for c in direct["clusters"] if c["chain"][0] != victim_name
            ]
            missing = [c for c in surviving if c not in payload["clusters"]]
            if missing:
                print("chaos: FAIL — degraded payload dropped clusters of "
                      "surviving shards")
                return 1
            metrics = service.metrics.render()
            for needle in (
                'repro_jobs_current{state="degraded"} 1',
                "repro_shards_lost_total 1",
                'repro_faults_injected_total{kind="crash-shard"} 1',
            ):
                if needle not in metrics:
                    print(f"chaos: FAIL — metrics missing {needle!r}")
                    return 1
            print(
                f"chaos: job degraded cleanly — missing_shards=[{victim}], "
                f"{len(payload['clusters'])}/{len(direct['clusters'])} "
                f"cluster(s) survived; degraded gauge, lost-shard and "
                f"fault counters all moved"
            )
        finally:
            service.stop()
    return 0


def _phase_http_5xx(matrix, params, direct) -> int:
    plan = FaultPlan([FaultSpec(kind=FaultKind.HTTP_5XX, times=2)], seed=3)
    print("chaos: phase 3 — first two HTTP requests answer 503")
    with tempfile.TemporaryDirectory(prefix="reg-cluster-chaos-") as store:
        service = MiningService(store, n_workers=1)
        server = serve(service, fault_plan=plan)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            client = ServiceClient(
                f"http://{host}:{port}",
                connect_retries=4,
                retry_backoff=0.05,
            )
            # The probes answer before fault injection: chaos must never
            # blind /healthz or /metrics (docs/observability.md).
            _wait_healthy(client)
            if plan.fired(FaultKind.HTTP_5XX) != 0:
                print("chaos: FAIL — healthz consumed an injected 503; "
                      "probes must answer before fault injection")
                return 1
            record = client.submit_matrix(matrix, parameters_to_dict(params))
            done = client.wait(record["job_id"], timeout=180)
            if done["state"] != "done":
                print(f"chaos: FAIL — job ended {done['state']}: "
                      f"{done.get('error')}")
                return 1
            if client.result(record["job_id"]) != direct:
                print("chaos: FAIL — result differs from direct mining")
                return 1
            if plan.fired(FaultKind.HTTP_5XX) != 2:
                print("chaos: FAIL — injected 503s never fired "
                      f"({plan.fired(FaultKind.HTTP_5XX)} of 2)")
                return 1
            if (
                'repro_faults_injected_total{kind="http-5xx"} 2'
                not in client.metrics()
            ):
                print("chaos: FAIL — /metrics did not count the 503 faults")
                return 1
            print("chaos: client absorbed both injected 503s (counted in "
                  "/metrics); probes answered through the chaos")
        finally:
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    return 0


def main() -> int:
    matrix = load_running_example()
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )
    direct = _direct_payload(matrix, params)
    for phase in (_phase_crash_recovery, _phase_degraded, _phase_http_5xx):
        status = phase(matrix, params, direct)
        if status != 0:
            return status
    print("chaos: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
