#!/usr/bin/env python
"""Reproduce every paper table/figure in one run and write REPORT.md.

Runs all experiment drivers (Figures 1, 2, 4, 7, 8 and Table 2) at the
requested scale and collects their rendered reports into a single
markdown file — the "did the reproduction hold?" artifact.

Usage:
    python scripts/reproduce_all.py [--scale quick|paper] [--out REPORT.md]

Paper scale takes a few minutes (the Figure 7 sweeps dominate); quick
scale finishes in well under a minute.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import __version__
from repro.experiments import (
    run_figure1,
    run_figure2,
    run_figure4,
    run_figure7,
    run_figure8,
    run_table2,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["quick", "paper"],
                        default="quick")
    parser.add_argument("--out", default="REPORT.md")
    args = parser.parse_args(argv)

    quick = args.scale == "quick"
    yeast_shape = (600, 17) if quick else (2884, 17)
    sections = []

    def section(title: str, body: str, seconds: float) -> None:
        sections.append(
            f"## {title}\n\n```\n{body}\n```\n\n*({seconds:.1f}s)*\n"
        )
        print(f"  done: {title} ({seconds:.1f}s)")

    total_start = time.perf_counter()
    print(f"reproducing all experiments at {args.scale} scale ...")

    start = time.perf_counter()
    section("Figure 1 — pattern universality", run_figure1().render(),
            time.perf_counter() - start)

    start = time.perf_counter()
    section("Figure 2 — negative correlation", run_figure2().render(),
            time.perf_counter() - start)

    start = time.perf_counter()
    section("Figure 4 — the tendency-model outlier",
            run_figure4().render(), time.perf_counter() - start)

    start = time.perf_counter()
    section("Figure 7 — efficiency on synthetic datasets",
            run_figure7(scale=args.scale).render(),
            time.perf_counter() - start)

    start = time.perf_counter()
    figure8 = run_figure8(shape=yeast_shape)
    section("Figure 8 — yeast effectiveness", figure8.render(),
            time.perf_counter() - start)

    start = time.perf_counter()
    section("Table 2 — GO term enrichment", run_table2(figure8).render(),
            time.perf_counter() - start)

    total = time.perf_counter() - total_start
    header = (
        f"# Reproduction report\n\n"
        f"reg-cluster reproduction v{__version__}; scale: {args.scale}; "
        f"total wall time {total:.1f}s.\n\n"
        f"Paper: *Mining Shifting-and-Scaling Co-Regulation Patterns on "
        f"Gene Expression Profiles* (ICDE 2006).\n"
        f"Paper-vs-measured commentary lives in EXPERIMENTS.md; this file "
        f"is the raw regenerated output.\n"
    )
    Path(args.out).write_text(header + "\n" + "\n".join(sections))
    print(f"wrote {args.out} ({total:.1f}s total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
