"""Service smoke test: boot the daemon, mine over HTTP, diff vs direct.

Exercises the full `reg-cluster serve` stack end to end:

1. start a :class:`repro.service.MiningService` plus HTTP front end on
   an ephemeral port (worker pool enabled);
2. poll ``GET /healthz`` until the daemon reports itself ready
   (``executor_alive``) — the readiness handshake every deployment of
   the service should use (docs/observability.md);
3. submit the paper's running example through the HTTP client, poll
   until the job completes, and require ``GET /metrics`` to expose the
   finished job in valid Prometheus text (>= 10 metric families);
4. fetch the result document and require it to be *identical* to a
   direct in-process :func:`repro.core.miner.mine_reg_clusters` run —
   the end-to-end form of the shard-merge equivalence guarantee
   (docs/service.md);
5. resubmit and require an idempotent answer served from cache;
6. on a fresh single-worker store, submit the same matrix/gamma twice
   (different epsilon, so the result cache cannot answer) and require
   the regulation kernel artifact to be built once and reused — the
   second job must record a kernel cache hit.

Exit status 0 on success; prints a unified summary either way.
Used by ``make serve-smoke`` and the CI ``service-smoke`` job.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time

from repro.core.miner import mine_reg_clusters
from repro.core.serialize import result_to_dict
from repro.datasets.running_example import load_running_example
from repro.service import MiningService, ServiceClient, serve
from repro.service.jobs import JobState, parameters_to_dict
from repro.core.params import MiningParameters


def wait_healthy(client: ServiceClient, timeout: float = 30.0) -> dict:
    """Poll ``GET /healthz`` until the daemon reports itself ready."""
    deadline = time.monotonic() + timeout
    while True:
        health = client.health()
        if health.get("status") == "ok" and health.get("executor_alive"):
            return health
        if time.monotonic() >= deadline:
            raise TimeoutError(f"daemon never became healthy: {health}")
        time.sleep(0.05)


def main() -> int:
    matrix = load_running_example()
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )

    with tempfile.TemporaryDirectory(prefix="reg-cluster-smoke-") as store:
        service = MiningService(store, n_workers=2)
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[0], server.server_address[1]
        print(f"smoke: daemon on http://{host}:{port} (store {store})")
        try:
            client = ServiceClient(f"http://{host}:{port}")
            health = wait_healthy(client)
            if health["n_workers"] != 2:
                print(f"smoke: FAIL — healthz reports n_workers="
                      f"{health['n_workers']}, expected 2")
                return 1
            print(f"smoke: daemon healthy (uptime "
                  f"{health['uptime_seconds']:.1f}s)")
            record = client.submit_matrix(matrix, parameters_to_dict(params))
            print(f"smoke: submitted {record['job_id']} ({record['state']})")
            done = client.wait(record["job_id"], timeout=120)
            print(f"smoke: job finished as {done['state']}")
            if done["state"] != "done":
                print(f"smoke: FAIL — job ended {done['state']}: "
                      f"{done.get('error')}")
                return 1
            via_http = client.result(record["job_id"])

            direct = result_to_dict(
                mine_reg_clusters(
                    matrix,
                    min_genes=params.min_genes,
                    min_conditions=params.min_conditions,
                    gamma=params.gamma,
                    epsilon=params.epsilon,
                ),
                matrix,
            )
            if via_http != direct:
                print("smoke: FAIL — service result differs from direct run")
                print("--- service ---")
                print(json.dumps(via_http, indent=2, sort_keys=True))
                print("--- direct ---")
                print(json.dumps(direct, indent=2, sort_keys=True))
                return 1
            print(
                f"smoke: result identical to direct mining "
                f"({len(direct['clusters'])} cluster(s), "
                f"{direct['statistics']['nodes_expanded']} nodes)"
            )

            again = client.submit_matrix(matrix, parameters_to_dict(params))
            if again["job_id"] != record["job_id"] or again["state"] != "done":
                print("smoke: FAIL — resubmission was not idempotent")
                return 1
            print("smoke: resubmission answered idempotently from cache")

            metrics = client.metrics()
            families = [
                line for line in metrics.splitlines()
                if line.startswith("# TYPE ")
            ]
            if len(families) < 10:
                print(f"smoke: FAIL — /metrics exposes only "
                      f"{len(families)} families (< 10)")
                return 1
            if 'repro_jobs_total{state="done"} 1' not in metrics:
                print("smoke: FAIL — /metrics does not show the finished "
                      "job")
                return 1
            print(f"smoke: /metrics exposes {len(families)} Prometheus "
                  f"families; finished job counted")
        finally:
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    # Kernel artifact reuse needs the in-process (single-worker) path:
    # worker pools build kernels in child processes, so nothing reaches
    # the parent's artifact cache.
    with tempfile.TemporaryDirectory(prefix="reg-cluster-smoke-") as store:
        service = MiningService(store, n_workers=1)
        try:
            first = service.submit(matrix, params)
            service.run_pending()
            first_done = service.status(first.job_id)
            if first_done.kernel_cache_hit is not False:
                print("smoke: FAIL — first job should have built the "
                      f"kernel, recorded {first_done.kernel_cache_hit!r}")
                return 1
            if service.cache.stats.kernel_stores != 1:
                print("smoke: FAIL — kernel artifact was not stored")
                return 1

            # Same matrix and gamma, different epsilon: new job id, so
            # the result cache cannot short-circuit the kernel lookup.
            second = service.submit(
                matrix, params.with_overrides(epsilon=0.3)
            )
            service.run_pending()
            second_done = service.status(second.job_id)
            if second_done.state is not JobState.DONE:
                print(f"smoke: FAIL — second job ended "
                      f"{second_done.state.value}: {second_done.error}")
                return 1
            if second_done.kernel_cache_hit is not True:
                print("smoke: FAIL — second job rebuilt the kernel")
                return 1
            if service.cache.stats.kernel_hits != 1 or (
                service.cache.stats.kernel_stores != 1
            ):
                print("smoke: FAIL — kernel cache counters off: "
                      f"{service.cache.stats.as_dict()}")
                return 1
            print("smoke: kernel artifact built once, second submission "
                  "served from cache (kernel_cache_hit recorded)")
        finally:
            service.stop()

    print("smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
