"""Fleet smoke test: SIGKILL a worker node mid-job, require a perfect finish.

The distributed counterpart of ``scripts/chaos_smoke.py``
(docs/distributed.md).  One scenario, real processes end to end:

1. Boot a coordinator daemon (``serve --fleet --fleet-no-local``) with a
   short lease TTL, plus **two** ``reg-cluster node`` worker processes.
   The victim node runs under a ``delay-shard`` fault plan so it holds
   every shard it leases long enough to be killed mid-mine; the
   survivor mines at full speed.
2. Submit the paper's running example over HTTP, wait until the victim
   actually holds a lease, then SIGKILL it — no shutdown handshake, no
   heartbeat goodbye.
3. Require the lease to be reclaimed after the TTL, the job to finish
   ``done`` with a result *identical* to a direct in-process
   :func:`repro.core.miner.mine_reg_clusters` run, the per-shard
   provenance to name only the two nodes, the job trace to stitch every
   shard span under one trace id, and the ``repro_fleet_*`` reclaim
   counters to have moved.

Exit status 0 on success; prints a unified summary either way.
Used by ``make fleet-smoke`` and the CI ``fleet-smoke`` job.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.miner import mine_reg_clusters
from repro.core.params import MiningParameters
from repro.core.serialize import result_to_dict
from repro.datasets.running_example import load_running_example
from repro.service import ServiceClient
from repro.service.jobs import parameters_to_dict

REPO_ROOT = Path(__file__).resolve().parents[1]
LEASE_TTL = 2.0  # seconds; short so the reclaim fires within the smoke
VICTIM, SURVIVOR = "node-victim", "node-survivor"

# Every shard the victim leases stalls this long before mining — wide
# enough a window to SIGKILL it while the lease is provably held.
VICTIM_FAULTS = json.dumps(
    {"seed": 7, "faults": [{"kind": "delay-shard", "times": 10**6,
                            "delay": 1.5}]}
)


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _child_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra)
    return env


def _spawn(argv: list, **env_extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        env=_child_env(**env_extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_healthy(client: ServiceClient, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        health = client.health()
        if health.get("status") == "ok" and health.get("executor_alive"):
            return health
        if time.monotonic() >= deadline:
            raise TimeoutError(f"daemon never became healthy: {health}")
        time.sleep(0.05)


def _wait_for_lease(client: ServiceClient, node_id: str,
                    timeout: float = 60.0) -> None:
    """Block until ``node_id`` holds at least one shard lease."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        nodes = client.fleet_status().get("nodes", {})
        if nodes.get(node_id, {}).get("leases_held", 0) >= 1:
            return
        time.sleep(0.05)
    raise TimeoutError(f"{node_id} never acquired a lease")


def _direct_payload(matrix, params):
    return result_to_dict(
        mine_reg_clusters(
            matrix,
            min_genes=params.min_genes,
            min_conditions=params.min_conditions,
            gamma=params.gamma,
            epsilon=params.epsilon,
        ),
        matrix,
    )


def _counter(metrics: str, name: str) -> float:
    return next(
        (
            float(line.rsplit(" ", 1)[1])
            for line in metrics.splitlines()
            if line.startswith(name + " ")
        ),
        0.0,
    )


def _run(tmp: str, matrix, params, direct) -> int:
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    store = Path(tmp) / "store"
    traces = Path(tmp) / "traces"
    procs: dict = {}
    try:
        procs["coordinator"] = _spawn([
            "serve", "--host", "127.0.0.1", "--port", str(port),
            "--store", str(store), "--fleet", "--fleet-no-local",
            "--lease-ttl", str(LEASE_TTL), "--trace-dir", str(traces),
        ])
        client = ServiceClient(url, connect_retries=8, retry_backoff=0.25)
        _wait_healthy(client)

        node_argv = ["node", "--coordinator", url, "--poll-interval", "0.05"]
        procs[VICTIM] = _spawn(
            [*node_argv, "--node-id", VICTIM,
             "--cache-dir", str(Path(tmp) / "victim-cache")],
            REPRO_FAULTS=VICTIM_FAULTS,
        )
        procs[SURVIVOR] = _spawn(
            [*node_argv, "--node-id", SURVIVOR,
             "--cache-dir", str(Path(tmp) / "survivor-cache")],
        )

        record = client.submit_matrix(matrix, parameters_to_dict(params))
        job_id = record["job_id"]
        _wait_for_lease(client, VICTIM)
        procs[VICTIM].kill()  # SIGKILL: no goodbye, the lease just dies
        print(f"fleet: {VICTIM} SIGKILLed while holding a lease")

        done = client.wait(job_id, timeout=180)
        if done["state"] != "done":
            print(f"fleet: FAIL — job ended {done['state']}: "
                  f"{done.get('error')}")
            return 1
        if client.result(job_id) != direct:
            print("fleet: FAIL — fleet result differs from direct mining")
            return 1

        provenance = done.get("shard_provenance") or {}
        miners = {entry.get("node") for entry in provenance.values()}
        if len(provenance) != matrix.n_conditions:
            print(f"fleet: FAIL — provenance covers {len(provenance)} of "
                  f"{matrix.n_conditions} shards")
            return 1
        if not miners <= {VICTIM, SURVIVOR}:
            print(f"fleet: FAIL — unexpected miners in provenance: {miners}")
            return 1
        if SURVIVOR not in miners:
            print("fleet: FAIL — the surviving node mined nothing")
            return 1

        trace_path = traces / f"{job_id}.trace.jsonl"
        spans = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        trace_ids = {span["trace_id"] for span in spans}
        shard_spans = [span for span in spans if span["name"] == "shard"]
        if len(trace_ids) != 1:
            print(f"fleet: FAIL — trace splintered into {len(trace_ids)} "
                  f"trace ids")
            return 1
        if len(shard_spans) != matrix.n_conditions:
            print(f"fleet: FAIL — {len(shard_spans)} shard spans, expected "
                  f"{matrix.n_conditions}")
            return 1
        span_nodes = {
            span["attributes"].get("node") for span in shard_spans
        }
        if not span_nodes <= {VICTIM, SURVIVOR}:
            print(f"fleet: FAIL — shard spans name foreign nodes: "
                  f"{span_nodes}")
            return 1

        metrics = client.metrics()
        reclaimed = _counter(metrics, "repro_fleet_leases_reclaimed_total")
        if reclaimed < 1:
            print("fleet: FAIL — the dead node's lease was never reclaimed")
            return 1
        granted = _counter(metrics, "repro_fleet_leases_granted_total")
        if granted < 2:
            print(f"fleet: FAIL — only {granted} lease(s) granted for a "
                  f"two-node job")
            return 1
        if 'repro_fleet_shards_completed_total{source="remote"}' not in metrics:
            print("fleet: FAIL — no remote shard completions counted")
            return 1
        if 'repro_jobs_current{state="done"} 1' not in metrics:
            print("fleet: FAIL — done gauge did not move")
            return 1

        print(
            f"fleet: node killed mid-lease, {reclaimed:.0f} lease(s) "
            f"reclaimed; result identical to direct mining "
            f"({len(direct['clusters'])} cluster(s)); "
            f"{len(shard_spans)} shard spans stitched under one trace; "
            f"miners: {sorted(miners)}"
        )
        return 0
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def main() -> int:
    matrix = load_running_example()
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )
    direct = _direct_payload(matrix, params)
    with tempfile.TemporaryDirectory(prefix="reg-cluster-fleet-") as tmp:
        status = _run(tmp, matrix, params, direct)
    if status == 0:
        print("fleet: OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
