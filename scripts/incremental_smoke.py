"""Incremental-mining smoke test: evolve a matrix, reuse, stay exact.

The delta-aware counterpart of ``scripts/serve_smoke.py``
(docs/incremental.md).  Three phases, each on a fresh store:

1. **Revision reuse, end to end.**  Mine a base matrix, append three
   in-range conditions (every Eq. 4 threshold stays float-identical),
   and run the revision job.  The job must reuse at least as many
   shards as the :class:`~repro.incremental.DirtyShardPlanner`
   classifies clean (``JobRecord.reused_shards`` is the provenance),
   must delta-update the kernel instead of rebuilding it cold
   (``kernel_build == "delta"``), and the counters in the rendered
   metrics must agree.
2. **Bit-identity.**  The stitched child result must have *exactly*
   the clusters of mining the child from scratch in a pristine
   service — reuse is an optimization, never an approximation.
3. **Sweep batching.**  A 2x2 gamma/epsilon sweep over the base
   matrix must build exactly one cold kernel per gamma (the other
   points hit the artifact cache), with every point finishing done.

Exit status 0 on success; prints a unified summary either way.
Used by ``make incremental-smoke`` and the CI ``incremental-smoke``
job.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.params import MiningParameters
from repro.incremental import AppendConditions, DirtyShardPlanner, apply_delta
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.summary import matrix_digest
from repro.service.jobs import JobState
from repro.service.service import MiningService

PARAMS = MiningParameters(
    min_genes=2, min_conditions=2, gamma=0.6, epsilon=0.1
)
N_GENES = 12
N_CONDITIONS = 10
N_APPENDED = 3


def _base_matrix() -> ExpressionMatrix:
    """A two-level synthetic matrix with clear co-regulation structure."""
    rng = np.random.default_rng(2006)
    low = rng.uniform(0.0, 2.0, size=(N_GENES, 1))
    high = low + rng.uniform(3.0, 6.0, size=(N_GENES, 1))
    choice = rng.choice([0.0, 1.0], size=(N_GENES, N_CONDITIONS))
    values = low + choice * (high - low)
    return ExpressionMatrix(values)


def _in_range_delta(matrix: ExpressionMatrix) -> AppendConditions:
    """Three new conditions strictly inside every gene's [min, max].

    Keeping appended values in range keeps each gene's Eq. 4 threshold
    ``gamma * (max - min)`` float-identical, which is what makes kernel
    plane reuse (and clean shards) possible at all.
    """
    rng = np.random.default_rng(7)
    lo = matrix.values.min(axis=1)
    hi = matrix.values.max(axis=1)
    # Near the midpoint every gap to an existing level is about half
    # the range — well under the gamma=0.6 threshold — so the appended
    # conditions gain no up-regulation edges and the old shards stay
    # clean for the planner.
    frac = rng.uniform(0.45, 0.55, size=(N_APPENDED, matrix.n_genes))
    return AppendConditions(
        names=tuple(f"appended{i}" for i in range(N_APPENDED)),
        values=lo[None, :] + frac * (hi - lo)[None, :],
    )


def _counter(metrics_text: str, needle: str) -> int:
    pattern = re.escape(needle) + r" (\d+)"
    match = re.search(pattern, metrics_text)
    return int(match.group(1)) if match else 0


def _run_done(service: MiningService, record):
    service.run_pending()
    done = service.status(record.job_id)
    if done.state is not JobState.DONE:
        raise RuntimeError(
            f"job {record.job_id} ended {done.state.value}: {done.error}"
        )
    return done


def _phase_revision_reuse(tmp: Path):
    matrix = _base_matrix()
    delta = _in_range_delta(matrix)
    child = apply_delta(matrix, delta)
    plan = DirtyShardPlanner().plan(matrix, child, delta, PARAMS.gamma)
    print(
        f"incremental: phase 1 — append {N_APPENDED} in-range conditions; "
        f"planner says {len(plan.clean_shards)}/{plan.n_shards} shards clean"
    )
    service = MiningService(tmp / "store", n_workers=1)
    parent = service.submit(matrix, PARAMS)
    _run_done(service, parent)
    revision, record = service.submit_revision(
        matrix_digest(matrix), delta, PARAMS
    )
    done = _run_done(service, record)
    reused = done.reused_shards or []
    if len(reused) < len(plan.clean_shards):
        print(
            f"incremental: FAIL — reused {len(reused)} shards but the "
            f"planner found {len(plan.clean_shards)} clean"
        )
        return None
    if done.kernel_build != "delta":
        print(
            "incremental: FAIL — expected a delta kernel build, got "
            f"{done.kernel_build!r}"
        )
        return None
    if done.revision_parent != parent.job_id:
        print(
            "incremental: FAIL — revision_parent is "
            f"{done.revision_parent!r}, expected {parent.job_id!r}"
        )
        return None
    metrics = service.metrics.render()
    reused_counted = _counter(
        metrics, 'repro_incremental_shards_total{source="reused"}'
    )
    delta_builds = _counter(
        metrics, 'repro_incremental_kernel_builds_total{mode="delta"}'
    )
    if reused_counted != len(reused) or delta_builds < 1:
        print(
            "incremental: FAIL — metrics disagree with the record "
            f"(reused {reused_counted} vs {len(reused)}, "
            f"delta builds {delta_builds})"
        )
        return None
    print(
        f"incremental: reused {len(reused)}/{plan.n_shards} shards, "
        f"kernel delta-updated (metrics agree)"
    )
    return service, record, child


def _phase_bit_identity(tmp: Path, service, record, child) -> int:
    print("incremental: phase 2 — diff the stitched child vs scratch")
    stitched = service.result(record.job_id)
    scratch_service = MiningService(tmp / "scratch", n_workers=1)
    scratch_record = scratch_service.submit(child, PARAMS)
    _run_done(scratch_service, scratch_record)
    scratch = scratch_service.result(scratch_record.job_id)
    if stitched["clusters"] != scratch["clusters"]:
        print(
            "incremental: FAIL — stitched clusters differ from mining "
            "the child from scratch"
        )
        return 1
    print(
        f"incremental: {len(stitched['clusters'])} clusters bit-identical "
        "to the from-scratch mine"
    )
    return 0


def _phase_sweep(tmp: Path) -> int:
    print("incremental: phase 3 — 2x2 sweep, one cold kernel per gamma")
    matrix = _base_matrix()
    service = MiningService(tmp / "sweep-store", n_workers=1)
    batch = service.submit_sweep(
        matrix, PARAMS, gammas=[0.5, 0.7], epsilons=[0.1, 0.2]
    )
    service.run_pending()
    status = service.sweep_status(batch.sweep_id)
    if not status["finished"] or status["counts"] != {"done": 4}:
        print(f"incremental: FAIL — sweep did not finish done: {status}")
        return 1
    metrics = service.metrics.render()
    cold = _counter(
        metrics, 'repro_incremental_kernel_builds_total{mode="cold"}'
    )
    cached = _counter(
        metrics, 'repro_incremental_kernel_builds_total{mode="cached"}'
    )
    if cold != 2 or cached != 2:
        print(
            "incremental: FAIL — expected 2 cold + 2 cached kernel "
            f"builds for 2 gammas x 2 epsilons, got {cold} cold / "
            f"{cached} cached"
        )
        return 1
    print("incremental: 4 points done with 2 cold kernel builds (one "
          "per gamma), 2 cache hits")
    return 0


def main() -> int:
    with tempfile.TemporaryDirectory() as raw:
        tmp = Path(raw)
        staged = _phase_revision_reuse(tmp)
        if staged is None:
            return 1
        service, record, child = staged
        if _phase_bit_identity(tmp, service, record, child) != 0:
            return 1
        if _phase_sweep(tmp) != 0:
            return 1
    print("incremental: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
