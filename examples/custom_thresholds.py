#!/usr/bin/env python
"""Custom regulation thresholds: the section 3.1 alternatives in action.

The reg-cluster model defines "significant" regulation through a
per-gene threshold.  Equation 4 (the default) uses a fraction of each
gene's expression range; the paper notes that other thresholds — the
average closest-pair difference [18], a normalized (variability-based)
threshold [17], the average expression level [5] — "can be used where
appropriate".  This example mines the same dataset under each strategy
and contrasts the outputs, including the degenerate *global constant*
threshold the paper argues against.

Run with:  python examples/custom_thresholds.py
"""

from __future__ import annotations

import numpy as np

from repro import ExpressionMatrix, MiningParameters, RegClusterMiner
from repro.core.thresholds import (
    closest_pair_average,
    constant,
    mean_fraction,
    normalized_std,
    range_fraction,
)


def sensitivity_matrix() -> ExpressionMatrix:
    """Two co-regulated families with sensitivities 100x apart.

    Genes h1..h3 swing across hundreds of units, genes l1..l3 across a
    few — the hormone-E2 situation the paper cites for using *local*
    thresholds.  Both families follow the same shifting-and-scaling
    pattern on conditions c1..c5.
    """
    base = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
    rng = np.random.default_rng(0)
    rows = {
        "h1": 100.0 * base,
        "h2": 150.0 * base + 20.0,
        "h3": -120.0 * base + 520.0,
        "l1": 1.0 * base,
        "l2": 1.5 * base + 0.2,
        "l3": -1.2 * base + 5.2,
    }
    values = np.vstack(list(rows.values()))
    noise_cols = rng.uniform(0, 1, size=(6, 3))
    # three extra unstructured conditions so ranges are not degenerate
    scale = np.array([400.0, 600.0, 480.0, 4.0, 6.0, 4.8])[:, None]
    return ExpressionMatrix(
        np.hstack([values, noise_cols * scale * 0.5]),
        gene_names=list(rows),
    )


def main() -> None:
    matrix = sensitivity_matrix()
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.05
    )

    strategies = {
        "range_fraction (Eq. 4, default)": range_fraction(matrix, 0.15),
        "closest_pair_average [18]": closest_pair_average(matrix, 1.0),
        "normalized_std [17]": normalized_std(matrix, 0.4),
        "mean_fraction [5]": mean_fraction(matrix, 0.2),
        "constant (global, anti-pattern)": constant(matrix, 50.0),
    }

    print("per-gene thresholds under each strategy:")
    header = f"{'strategy':<34}" + "".join(
        f"{name:>8}" for name in matrix.gene_names
    )
    print(header)
    for label, thresholds in strategies.items():
        cells = "".join(f"{t:8.2f}" for t in thresholds)
        print(f"{label:<34}{cells}")
    print()

    print("mining outcome (both families form reg-clusters on c1..c5):")
    for label, thresholds in strategies.items():
        result = RegClusterMiner(
            matrix, params, thresholds=thresholds
        ).mine()
        families = set()
        for cluster in result.clusters:
            names = {matrix.gene_names[g][0] for g in cluster.genes}
            families |= names
        print(
            f"  {label:<34} {len(result)} cluster(s); "
            f"families found: {sorted(families) or '-'}"
        )
    print()
    print("note how the global constant threshold (50.0) silences the")
    print("low-sensitivity family entirely: its swings never reach the")
    print("threshold, which is exactly why the paper uses local gamma_i.")


if __name__ == "__main__":
    main()
