#!/usr/bin/env python
"""Synthetic workload: embed perfect shifting-and-scaling clusters, mine
them back, and score the recovery (the section 5.1 setting, scaled down
to run in a couple of seconds).

Demonstrates:
* the paper's synthetic data generator (uniform background + embedded
  perfect reg-clusters with positive and negative members);
* mining with the Figure 7 parameters (MinG = 1% of genes, MinC = 6,
  gamma = 0.1, epsilon = 0.01);
* ground-truth evaluation: recovery, relevance and per-cluster matches.

Run with:  python examples/synthetic_recovery.py
"""

from __future__ import annotations

import time

from repro import RegClusterMiner, make_synthetic_dataset
from repro.bench.runner import paper_mining_parameters
from repro.eval.match import best_match, match_report
from repro.eval.overlap import overlap_summary


def main() -> None:
    data = make_synthetic_dataset(
        n_genes=600,
        n_conditions=24,
        n_clusters=6,
        seed=42,
        gene_fraction=0.03,       # 18 member genes per cluster
        dimensionality_jitter=0,  # exactly 6 conditions each
    )
    matrix = data.matrix
    print(
        f"generated {matrix.n_genes} x {matrix.n_conditions} matrix with "
        f"{data.n_embedded} embedded clusters"
    )
    for index, cluster in enumerate(data.embedded, start=1):
        print(
            f"  embedded {index}: {cluster.n_genes} genes "
            f"({len(cluster.p_members)} p / {len(cluster.n_members)} n) "
            f"x {cluster.n_conditions} conditions"
        )
    print()

    params = paper_mining_parameters(matrix.n_genes)
    print(
        f"mining with MinG={params.min_genes} MinC={params.min_conditions} "
        f"gamma={params.gamma} epsilon={params.epsilon} ..."
    )
    start = time.perf_counter()
    result = RegClusterMiner(matrix, params).mine()
    seconds = time.perf_counter() - start
    print(f"-> {len(result)} clusters in {seconds:.2f}s "
          f"({result.statistics.nodes_expanded} nodes expanded)")
    print()

    report = match_report(result.clusters, data.embedded, threshold=0.9)
    print(report)
    for index, truth in enumerate(data.embedded, start=1):
        found, score = best_match(truth, result.clusters)
        status = "recovered" if score >= 0.9 else "MISSED"
        shape = f"{found.n_genes}x{found.n_conditions}" if found else "-"
        print(f"  embedded {index}: best match J={score:.3f} ({shape}) "
              f"[{status}]")
    print()
    print(overlap_summary(result.clusters))


if __name__ == "__main__":
    main()
