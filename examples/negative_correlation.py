#!/usr/bin/env python
"""Model comparison: why shifting-and-scaling with negative correlation
needs a new model (Figures 1, 2 and 4 of the paper).

Builds the paper's six Figure 1 patterns (P1 = P2-5 = P3-15 = P4 = P5/1.5
= P6/3) plus a negatively-scaled seventh, and checks which model can
group them: the pure-shifting pScore model, the pure-scaling ratio-range
model, the order-preserving tendency model, the Cheng-Church residue
model — and reg-cluster.  Then replays the Figure 4 outlier experiment.

Run with:  python examples/negative_correlation.py
"""

from __future__ import annotations

import numpy as np

from repro import ExpressionMatrix, mine_reg_clusters
from repro.baselines import (
    is_pcluster,
    is_scaling_cluster,
    mean_squared_residue,
    mine_tendency_clusters,
)
from repro.core.coherence import fit_affine, is_shifting_and_scaling
from repro.datasets import load_running_example


def figure1_patterns() -> ExpressionMatrix:
    p1 = np.array([10.0, 14.0, 9.0, 18.0, 25.0])
    rows = {
        "P1": p1,
        "P2": p1 + 5.0,
        "P3": p1 + 15.0,
        "P4": p1.copy(),
        "P5": 1.5 * p1,
        "P6": 3.0 * p1,
        "P7": -2.0 * p1 + 60.0,  # negative scaling, beyond even Figure 1
    }
    return ExpressionMatrix(
        np.vstack(list(rows.values())), gene_names=list(rows)
    )


def main() -> None:
    matrix = figure1_patterns()
    block = matrix.values

    print("pattern family: P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3,")
    print("                P7 = -2*P1 + 60 (negatively correlated)")
    print()
    print(f"{'model':<42} groups all seven?")
    print("-" * 62)
    print(f"{'pCluster (pure shifting, delta=1)':<42} "
          f"{is_pcluster(block, 1.0)}")
    print(f"{'TriCluster (pure scaling, eps=0.05)':<42} "
          f"{is_scaling_cluster(block, 0.05)}")
    msr = mean_squared_residue(block)
    print(f"{'Cheng-Church (residue <= 1?)':<42} {msr <= 1.0}"
          f"   (MSR = {msr:.1f})")
    reg = all(
        is_shifting_and_scaling(block[0], block[k])
        for k in range(1, matrix.n_genes)
    )
    print(f"{'reg-cluster (shifting-and-scaling)':<42} {reg}")
    print()

    print("per-pattern affine factors against P1:")
    for gene in range(1, matrix.n_genes):
        fit = fit_affine(block[gene], block[0])
        print(f"  {matrix.gene_names[gene]} = {fit.scaling:+.2f} * P1 "
              f"{fit.shifting:+.2f}")
    print()

    # --- mining confirms the model check ------------------------------
    # The c3 -> c1 step of the base pattern (9 -> 10) is below the
    # regulation threshold (gamma_1 = 2.4), so the *regulated* chain has
    # four conditions: the regulation constraint prunes the weak step,
    # exactly as designed.
    result = mine_reg_clusters(
        matrix, min_genes=7, min_conditions=4, gamma=0.15, epsilon=0.01
    )
    grouped = any(c.n_genes == 7 for c in result.clusters)
    print(f"reg-cluster mining groups all seven patterns: {grouped}")
    for cluster in result.clusters:
        if cluster.n_genes == 7:
            print(f"  chain     : "
                  f"{[matrix.condition_names[c] for c in cluster.chain]}")
            print(f"  p-members : "
                  f"{[matrix.gene_names[g] for g in cluster.p_members]}")
            print(f"  n-members : "
                  f"{[matrix.gene_names[g] for g in cluster.n_members]}")
            break
    print()

    # --- Figure 4: the tendency model's false positive ----------------
    running = load_running_example()
    sub = running.submatrix(conditions=["c2", "c10", "c8", "c4"])
    tendency = mine_tendency_clusters(sub, min_genes=3, min_conditions=4)
    grouped = any(set(c.genes) == {0, 1, 2} for c in tendency)
    reg_result = mine_reg_clusters(
        sub, min_genes=2, min_conditions=4, gamma=0.15, epsilon=0.1
    )
    reg_sets = [sorted(g + 1 for g in c.genes) for c in reg_result]
    print("Figure 4 outlier (g2 on conditions c2, c4, c8, c10):")
    print(f"  tendency model groups g1, g2, g3 together: {grouped}")
    print(f"  reg-cluster finds gene sets: {reg_sets} "
          f"(g2 correctly excluded)")


if __name__ == "__main__":
    main()
