#!/usr/bin/env python
"""Quickstart: mine the paper's running example (Table 1).

Walks the library's core loop end to end:

1. load an expression matrix;
2. inspect per-gene RWave^gamma models (Figure 3);
3. mine reg-clusters (Figure 6);
4. inspect the one discovered cluster — its chain, p/n members, H-score
   profiles and fitted shifting/scaling factors (Figure 2).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_rwave, load_running_example, mine_reg_clusters


def main() -> None:
    matrix = load_running_example()
    print(f"dataset: {matrix.n_genes} genes x {matrix.n_conditions} conditions")
    print()

    # --- the RWave^0.15 models of Figure 3 ---------------------------
    print("RWave^0.15 models (conditions sorted by expression value,")
    print("arrows mark bordering regulated pairs):")
    for gene in matrix.gene_names:
        model = build_rwave(matrix, gene, gamma=0.15)
        print(f"\n{gene}  (regulation threshold gamma_i = {model.threshold:g})")
        print(model.render(matrix.condition_names))
    print()

    # --- mining (Figure 6 parameters) --------------------------------
    result = mine_reg_clusters(
        matrix, min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )
    print(f"mined {len(result)} reg-cluster(s) "
          f"(nodes expanded: {result.statistics.nodes_expanded})")
    cluster = result[0]
    print(cluster.describe(matrix))
    print()

    # --- the Figure 2 relationships ----------------------------------
    print("H-score profiles along the chain (identical across members):")
    for gene, profile in cluster.h_profiles(matrix).items():
        rounded = [round(h, 4) for h in profile]
        print(f"  {matrix.gene_names[gene]}: {rounded}")
    print()

    print("fitted affine relations d_g = s1 * d_g3 + s2 on the chain:")
    for gene, fit in cluster.affine_fits(matrix, reference=2).items():
        sign = "positively" if fit.is_positive_correlation else "negatively"
        print(
            f"  {matrix.gene_names[gene]}: s1 = {fit.scaling:+.2f}, "
            f"s2 = {fit.shifting:+.2f}  ({sign} correlated)"
        )


if __name__ == "__main__":
    main()
