#!/usr/bin/env python
"""Yeast analysis: mine the benchmark-style yeast matrix and evaluate the
biological significance of the clusters with the GO term finder.

The paper's section 5.2 pipeline end to end:

1. build the (surrogate) 2884 x 17 yeast expression matrix — here shrunk
   to 700 genes so the example finishes in a few seconds; pass ``--full``
   for the complete Tavazoie shape;
2. mine with MinG=20, MinC=6, gamma=0.05, epsilon=1.0;
3. report cluster count, runtime and pairwise-overlap range;
4. pick three non-overlapping clusters (the paper's Figure 8 selection);
5. print the Table 2 style GO enrichment table.

Run with:  python examples/yeast_go_analysis.py [--full]
"""

from __future__ import annotations

import sys
import time

from repro import MiningParameters, RegClusterMiner, make_yeast_surrogate
from repro.eval.go.annotation import annotate_surrogate
from repro.eval.go.enrichment import go_table
from repro.eval.overlap import overlap_summary, select_non_overlapping


def main() -> None:
    full = "--full" in sys.argv[1:]
    shape = (2884, 17) if full else (700, 17)
    surrogate = make_yeast_surrogate(shape=shape)
    matrix = surrogate.matrix
    print(f"yeast surrogate: {matrix.n_genes} genes x "
          f"{matrix.n_conditions} conditions "
          f"({len(surrogate.modules)} embedded modules)")

    params = MiningParameters(
        min_genes=20, min_conditions=6, gamma=0.05, epsilon=1.0
    )
    start = time.perf_counter()
    result = RegClusterMiner(matrix, params).mine()
    seconds = time.perf_counter() - start
    print(f"mined {len(result)} bi-reg-clusters in {seconds:.1f}s")
    print(overlap_summary(result.clusters))
    print()

    picks = select_non_overlapping(result.clusters, limit=3)
    print(f"three non-overlapping clusters (paper's Figure 8 selection):")
    for index, cluster in enumerate(picks, start=1):
        print(
            f"  [{index}] {cluster.n_genes} genes "
            f"({len(cluster.p_members)} p-members, "
            f"{len(cluster.n_members)} n-members) x "
            f"{cluster.n_conditions} conditions"
        )
    print()

    corpus = annotate_surrogate(surrogate)
    print("GO term enrichment (top term per namespace, Table 2 style):")
    print(go_table(picks, corpus,
                   labels=[f"cluster {i + 1}" for i in range(len(picks))]))


if __name__ == "__main__":
    main()
