#!/usr/bin/env python
"""Inside the search: reconstruct the paper's Figure 6 enumeration tree.

Attaches a :class:`repro.core.SearchTrace` to the miner on the running
example, prints the resulting depth-first enumeration tree with every
pruning decision annotated, and finishes with an ASCII rendering of the
one validated cluster's expression profiles (Figure 8 style — watch the
p-members and the n-member cross over).

Run with:  python examples/enumeration_trace.py
"""

from __future__ import annotations

from repro import MiningParameters, RegClusterMiner, load_running_example
from repro.core import SearchTrace
from repro.eval import render_cluster_profiles


def main() -> None:
    matrix = load_running_example()
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )

    tracer = SearchTrace()
    result = RegClusterMiner(matrix, params, tracer=tracer).mine()

    print("enumeration tree (paper Figure 6), MinG=3 MinC=5 "
          "gamma=0.15 epsilon=0.1:")
    print()
    print(tracer.render(matrix.condition_names))
    print()

    stats = result.statistics
    print(f"nodes traced: {tracer.n_nodes()}  "
          f"(expanded by the search: {stats.nodes_expanded})")
    print(f"prunings -> MinG: {stats.pruned_min_genes}, "
          f"p-majority: {stats.pruned_p_majority}, "
          f"coherence: {stats.coherence_rejections}")
    print()

    cluster = result.clusters[0]
    print("the single validated reg-cluster:")
    print(cluster.describe(matrix))
    print()
    print("expression profiles in chain order "
          "(*/- p-members, o/. n-member):")
    print(render_cluster_profiles(cluster, matrix, height=14,
                                  column_width=7))


if __name__ == "__main__":
    main()
