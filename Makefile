# Developer convenience targets.

PYTHON ?= python

.PHONY: install test coverage bench bench-quick bench-regression examples serve-smoke chaos-smoke trace-smoke fleet-smoke load-smoke incremental-smoke lint lint-full typecheck clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Line coverage over src/repro with the floor recorded in pyproject.toml
# ([tool.coverage.report] fail_under); the CI coverage job uploads the
# HTML report as a workflow artifact.
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src $(PYTHON) -m pytest tests/ --cov=repro --cov-report= \
		&& $(PYTHON) -m coverage html -d coverage-html \
		&& $(PYTHON) -m coverage report; \
	else \
		echo "pytest-cov is not installed; skipping (pip install pytest-cov)"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_BENCH_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Pinned-workload perf snapshots + the regression gate over them
# (see docs/performance.md).  Measures the legacy per-candidate path
# (BENCH_baseline.json) and the kernel path (BENCH_kernels.json) fresh
# on this machine, then gates: the kernel path must not run slower than
# legacy beyond the tolerance band (tiny cases are overhead-bound, the
# large Figure 7 points show the speedup).
bench-regression:
	PYTHONPATH=src $(PYTHON) -m repro.bench.regression run --legacy --out BENCH_baseline.json
	PYTHONPATH=src $(PYTHON) -m repro.bench.regression run --out BENCH_kernels.json
	PYTHONPATH=src $(PYTHON) -m repro.bench.regression compare BENCH_kernels.json BENCH_baseline.json --tolerance 0.5
	PYTHONPATH=src $(PYTHON) -m repro.bench.regression incremental --out BENCH_incremental.json

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

serve-smoke:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

# Fault-injection counterpart of serve-smoke: SIGKILL a worker mid-job
# and require a bit-identical recovery, then a clean degraded job and a
# client that absorbs injected 503s (docs/robustness.md).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) scripts/chaos_smoke.py

# Observability counterpart of serve-smoke: trace a multi-process mine
# through the CLI and the daemon, then require the shard spans of every
# worker to stitch under a single job root (docs/observability.md).
trace-smoke:
	PYTHONPATH=src $(PYTHON) scripts/trace_smoke.py

# Distributed counterpart of chaos-smoke: a coordinator plus two worker
# node processes, one SIGKILLed while it holds a shard lease — the
# reclaim must re-queue its shards and the job must finish bit-identical
# with a single stitched trace (docs/distributed.md).
fleet-smoke:
	PYTHONPATH=src $(PYTHON) scripts/fleet_smoke.py

# Load counterpart of serve-smoke: a concurrent submission storm
# against the selector front door, gating the server-side p99 against
# LOAD_thresholds.json and requiring zero dropped accepted jobs plus
# crisp 429/Retry-After shedding under overload (docs/service.md).
# Laptop-sized by default; CI scales it up (LOAD_CLIENTS=1000).
LOAD_CLIENTS ?= 32
LOAD_DURATION ?= 3
load-smoke:
	PYTHONPATH=src LOAD_CLIENTS=$(LOAD_CLIENTS) LOAD_DURATION=$(LOAD_DURATION) $(PYTHON) scripts/load_smoke.py

# Delta-aware counterpart of serve-smoke: mine a base matrix, append
# three in-range conditions, and require the revision job to reuse at
# least the planner's clean-shard fraction while staying bit-identical
# to a from-scratch mine — then a 2x2 sweep that must build exactly one
# cold kernel per gamma (docs/incremental.md).
incremental-smoke:
	PYTHONPATH=src $(PYTHON) scripts/incremental_smoke.py

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro tests benchmarks examples

# Whole-program phase on top of the file-local rules: cross-module
# concurrency/fork-safety/hygiene analysis over src/repro, gated
# against the committed reglint-baseline.json (fails only on NEW
# findings — see docs/static_analysis.md).  Kept separate from `lint`
# so the fast default loop is unchanged.
lint-full:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --whole-program src/repro

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy is not installed; skipping (pip install mypy)"; \
	fi

clean:
	rm -rf .pytest_cache .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
