# Developer convenience targets.

PYTHON ?= python

.PHONY: install test bench bench-quick examples serve-smoke lint typecheck clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_BENCH_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

serve-smoke:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro tests benchmarks examples

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy is not installed; skipping (pip install mypy)"; \
	fi

clean:
	rm -rf .pytest_cache .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
