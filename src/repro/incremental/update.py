"""Incremental maintenance of the RWave^gamma index and the kernel.

Both artifacts are per-gene structures over float comparisons, which
makes delta updates exact rather than approximate:

* **Kernel** (:class:`~repro.core.kernels.RegulationKernel`): the
  packed tensor holds one independent ``(C, ceil(C/8))`` plane per
  gene, so ``append_genes`` packs only the new planes and
  ``drop_genes`` slices planes out — reused bytes are the parent's
  bytes verbatim.  ``append_conditions`` keeps every old-pair bit of
  genes whose Eq. 4 threshold is unchanged (the appended values sit
  inside the gene's existing ``[min, max]``) and computes only the new
  border rows/columns; genes whose threshold moved are repacked cold.
  Every computed bit runs the same ``v[a] - v[b] > gamma_g`` float
  comparison on the same ``float64`` operands as a cold
  :meth:`~repro.core.kernels.RegulationKernel._pack`, so the updated
  tensor is *byte-identical* to a cold build — asserted by the
  equivalence suite in ``tests/incremental/test_update.py``.

* **Index** (:class:`~repro.core.rwave.RWaveIndex`): a gene's RWave
  model depends only on its own row and threshold, so ``append_genes``
  splices the parent's model objects next to freshly built ones and
  ``drop_genes`` keeps shallow copies of the survivors (re-numbered
  for diagnostics; the parent index, which may be shared through the
  artifact cache, is never mutated).  ``append_conditions`` changes
  every row, so all models are rebuilt — that is the cheap
  ``O(G C log C)`` part of index construction; the expensive
  ``O(G C^2)`` packing is what the kernel update above avoids.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.kernels import DEFAULT_SLICE_CACHE, RegulationKernel
from repro.core.regulation import gene_thresholds
from repro.core.rwave import RWaveIndex, RWaveModel
from repro.incremental.delta import (
    AppendConditions,
    AppendGenes,
    DropGenes,
    MatrixDelta,
)
from repro.matrix.expression import ExpressionMatrix

__all__ = ["IndexUpdate", "KernelUpdate", "update_index", "update_kernel"]

#: Gene-axis chunk bounding the dense intermediates of the
#: append-conditions repack (same role as the kernel's own pack chunk).
_UPDATE_CHUNK = 512


@dataclass(frozen=True)
class KernelUpdate:
    """A delta-updated kernel plus its reuse accounting."""

    kernel: RegulationKernel
    #: gene planes whose parent bytes (or old-pair bits) were reused
    reused_planes: int
    #: gene planes packed from scratch (new genes / changed thresholds)
    rebuilt_planes: int


@dataclass(frozen=True)
class IndexUpdate:
    """A delta-updated index plus its reuse accounting."""

    index: RWaveIndex
    #: per-gene RWave models carried over from the parent index
    reused_models: int
    #: per-gene RWave models built fresh
    rebuilt_models: int


def _kept_gene_indices(
    parent_matrix: ExpressionMatrix, delta: DropGenes
) -> NDArray[np.intp]:
    dropped = set(delta.genes)
    kept = [
        i
        for i, name in enumerate(parent_matrix.gene_names)
        if name not in dropped
    ]
    return np.asarray(kept, dtype=np.intp)


def _check_pair(
    parent_matrix: ExpressionMatrix,
    child_matrix: ExpressionMatrix,
    delta: MatrixDelta,
) -> None:
    """Sanity-check that the child plausibly is parent + delta."""
    if isinstance(delta, AppendConditions):
        expected = (
            parent_matrix.n_genes,
            parent_matrix.n_conditions + len(delta.names),
        )
    elif isinstance(delta, AppendGenes):
        expected = (
            parent_matrix.n_genes + len(delta.names),
            parent_matrix.n_conditions,
        )
    elif isinstance(delta, DropGenes):
        expected = (
            parent_matrix.n_genes - len(delta.genes),
            parent_matrix.n_conditions,
        )
    else:
        raise TypeError(f"unknown delta type {type(delta).__name__}")
    if child_matrix.shape != expected:
        raise ValueError(
            f"child matrix shape {child_matrix.shape} does not match "
            f"parent {parent_matrix.shape} + {delta.kind} delta "
            f"(expected {expected})"
        )


def _append_conditions_packed(
    parent_packed: NDArray[np.uint8],
    child_values: NDArray[np.float64],
    old_thresholds: NDArray[np.float64],
    new_thresholds: NDArray[np.float64],
    n_old: int,
) -> Tuple[NDArray[np.uint8], int, int]:
    """Repack for appended conditions, reusing unchanged-gene old bits."""
    n_genes, n_new = child_values.shape
    width = (n_new + 7) // 8
    packed = np.empty((n_genes, n_new, width), dtype=np.uint8)
    # Exact float equality on purpose: a reused bit must have been
    # computed against the *identical* threshold, or its gene is rebuilt.
    changed = old_thresholds != new_thresholds
    reused = int(n_genes - int(changed.sum()))
    # One-time repack, chunked to bound memory, not a search-time loop.
    for start in range(0, n_genes, _UPDATE_CHUNK):  # reglint: disable=RL106
        stop = min(start + _UPDATE_CHUNK, n_genes)
        block = np.ascontiguousarray(child_values[start:stop])
        thr = new_thresholds[start:stop]
        flip = changed[start:stop]
        up = np.empty((stop - start, n_new, n_new), dtype=bool)
        if bool(flip.any()):
            # Threshold moved: every pair of this gene needs the new
            # cutoff — full rebuild, same expression as the cold pack.
            hot = block[flip]
            diff = hot[:, :, None] - hot[:, None, :]
            up[flip] = diff > thr[flip][:, None, None]
        keep = ~flip
        if bool(keep.any()):
            cold = block[keep]
            limit = thr[keep][:, None, None]
            sub = np.empty((int(keep.sum()), n_new, n_new), dtype=bool)
            sub[:, :n_old, :n_old] = np.unpackbits(
                parent_packed[start:stop][keep], axis=2, count=n_old
            ).astype(bool)
            # Border pairs involving at least one appended condition:
            # same float operands and operand order as the cold pack's
            # full difference tensor, so the bits agree bit-for-bit.
            sub[:, :, n_old:] = (
                cold[:, :, None] - cold[:, None, n_old:]
            ) > limit
            sub[:, n_old:, :n_old] = (
                cold[:, n_old:, None] - cold[:, None, :n_old]
            ) > limit
            up[keep] = sub
        packed[start:stop] = np.packbits(up, axis=2)
    return packed, reused, n_genes - reused


def update_kernel(
    parent_kernel: RegulationKernel,
    parent_matrix: ExpressionMatrix,
    child_matrix: ExpressionMatrix,
    delta: MatrixDelta,
    *,
    gamma: float,
    slice_cache: int = DEFAULT_SLICE_CACHE,
) -> KernelUpdate:
    """Delta-update a parent kernel to its child matrix.

    ``parent_kernel`` must be the Eq. 3/4 kernel of ``parent_matrix``
    at ``gamma``; the returned kernel is byte-identical to
    ``RegulationKernel(child_matrix.values,
    gene_thresholds(child_matrix, gamma))`` built cold.
    """
    if parent_kernel.shape != parent_matrix.shape:
        raise ValueError(
            f"parent kernel shape {parent_kernel.shape} does not match "
            f"parent matrix shape {parent_matrix.shape}"
        )
    _check_pair(parent_matrix, child_matrix, delta)
    child_thresholds = gene_thresholds(child_matrix, gamma)
    if isinstance(delta, AppendGenes):
        n_old = parent_matrix.n_genes
        new_planes = RegulationKernel.pack_planes(
            child_matrix.values[n_old:], child_thresholds[n_old:]
        )
        packed = np.concatenate([parent_kernel.packed, new_planes], axis=0)
        kernel = RegulationKernel.from_packed(
            packed,
            n_conditions=child_matrix.n_conditions,
            slice_cache=slice_cache,
        )
        return KernelUpdate(
            kernel=kernel,
            reused_planes=n_old,
            rebuilt_planes=len(delta.names),
        )
    if isinstance(delta, DropGenes):
        kept = _kept_gene_indices(parent_matrix, delta)
        packed = np.ascontiguousarray(parent_kernel.packed[kept])
        kernel = RegulationKernel.from_packed(
            packed,
            n_conditions=child_matrix.n_conditions,
            slice_cache=slice_cache,
        )
        return KernelUpdate(
            kernel=kernel, reused_planes=int(kept.shape[0]), rebuilt_planes=0
        )
    # AppendConditions (``_check_pair`` already rejected unknown kinds).
    parent_thresholds = gene_thresholds(parent_matrix, gamma)
    packed, reused, rebuilt = _append_conditions_packed(
        parent_kernel.packed,
        child_matrix.values,
        parent_thresholds,
        child_thresholds,
        parent_matrix.n_conditions,
    )
    kernel = RegulationKernel.from_packed(
        packed,
        n_conditions=child_matrix.n_conditions,
        slice_cache=slice_cache,
    )
    return KernelUpdate(
        kernel=kernel, reused_planes=reused, rebuilt_planes=rebuilt
    )


def update_index(
    parent_index: RWaveIndex,
    child_matrix: ExpressionMatrix,
    delta: MatrixDelta,
) -> IndexUpdate:
    """Delta-update a parent index to its child matrix (same gamma).

    The returned index carries no kernel — pair it with
    :func:`update_kernel` (or a cold build) via ``attach_kernel``.
    """
    parent_matrix = parent_index.matrix
    _check_pair(parent_matrix, child_matrix, delta)
    gamma = parent_index.gamma
    if isinstance(delta, AppendConditions):
        # Every gene row gained values: all sort orders, pointers and
        # chain tables may change, so models are rebuilt cold.  This is
        # the O(G C log C) part of index construction; the O(G C^2)
        # kernel packing — the expensive part — is what update_kernel
        # avoids re-doing.
        index = RWaveIndex(child_matrix, gamma)
        return IndexUpdate(
            index=index,
            reused_models=0,
            rebuilt_models=child_matrix.n_genes,
        )
    child_thresholds = gene_thresholds(child_matrix, gamma)
    if isinstance(delta, AppendGenes):
        n_old = parent_matrix.n_genes
        if not np.array_equal(
            parent_index.thresholds, child_thresholds[:n_old]
        ):
            raise ValueError(
                "parent index thresholds disagree with the child matrix; "
                "the parent index does not belong to this lineage"
            )
        new_models = [
            RWaveModel(
                child_matrix.values[i], float(child_thresholds[i]), gene=i
            )
            # One-time build of the appended genes' models only.
            for i in range(n_old, child_matrix.n_genes)  # reglint: disable=RL106
        ]
        n_conditions = child_matrix.n_conditions
        new_up = np.empty((len(new_models), n_conditions), dtype=np.intp)
        new_down = np.empty((len(new_models), n_conditions), dtype=np.intp)
        for row, model in enumerate(new_models):  # reglint: disable=RL106
            new_up[row, model.order] = model.max_chain_up
            new_down[row, model.order] = model.max_chain_down
        index = RWaveIndex.from_parts(
            child_matrix,
            gamma,
            thresholds=child_thresholds,
            models=(*parent_index.models, *new_models),
            max_up=np.vstack([parent_index.max_up, new_up]),
            max_down=np.vstack([parent_index.max_down, new_down]),
        )
        return IndexUpdate(
            index=index,
            reused_models=n_old,
            rebuilt_models=len(new_models),
        )
    # DropGenes (``_check_pair`` already rejected unknown kinds).
    kept = _kept_gene_indices(parent_matrix, delta)
    if not np.array_equal(
        parent_index.thresholds[kept], child_thresholds
    ):
        raise ValueError(
            "parent index thresholds disagree with the child matrix; "
            "the parent index does not belong to this lineage"
        )
    survivors = []
    for new_id, old_id in enumerate(kept):  # reglint: disable=RL106
        # Shallow copy: the heavy arrays (order/position/chain tables)
        # are shared read-only with the parent's model; only the
        # diagnostic gene number is re-pointed.  The parent index — which
        # may be shared through the artifact cache — is never mutated.
        model = copy.copy(parent_index.models[int(old_id)])
        model.gene = new_id
        survivors.append(model)
    index = RWaveIndex.from_parts(
        child_matrix,
        gamma,
        thresholds=child_thresholds,
        models=survivors,
        max_up=np.ascontiguousarray(parent_index.max_up[kept]),
        max_down=np.ascontiguousarray(parent_index.max_down[kept]),
    )
    return IndexUpdate(
        index=index, reused_models=len(survivors), rebuilt_models=0
    )
