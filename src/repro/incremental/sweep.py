"""Batched gamma/epsilon parameter sweeps over one matrix.

A sweep submits the cross product of a gamma grid and an epsilon grid
as ordinary mining jobs sharing one matrix.  The batching win is the
kernel: the ``O(G C^2)`` packed relation depends on ``(matrix, gamma)``
only, so the grid is expanded *gamma-major* — all epsilon points of a
gamma run back to back, the first builds (and caches) the kernel and
the rest hit the artifact cache.  The service asserts exactly one
kernel build per distinct gamma via the ``repro_incremental_kernel_
builds_total`` metric family.

Points map to ordinary job ids (``compute_job_id`` over the derived
parameters), so sweep results deduplicate against — and are shared
with — individually submitted jobs for free.
"""

# The store's lock serializes sweep-file I/O against concurrent
# readers, same as the job store; RL303's blocking-I/O-under-lock
# warning is this class's design, not a defect (docs/robustness.md,
# "Concurrency model").
# reglint: disable-file=RL303

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "MAX_SWEEP_POINTS",
    "SWEEP_FORMAT",
    "SweepBatch",
    "SweepPoint",
    "SweepStore",
    "compute_sweep_id",
    "expand_grid",
]

SWEEP_FORMAT = "reg-cluster-sweep/v1"

#: Cap on grid points per batch.  A sweep fans out through the ordinary
#: fair job queue, so the cap bounds how much queue a single request can
#: occupy — mirroring the front door's per-tenant admission quotas.
MAX_SWEEP_POINTS = 64

_SWEEP_ID_PATTERN = re.compile(r"^sweep-[0-9a-f]{16}$")


def _checked_axis(values: Sequence[float], name: str) -> Tuple[float, ...]:
    axis = tuple(float(v) for v in values)
    if not axis:
        raise ValueError(f"a sweep needs at least one {name} value")
    if len(set(axis)) != len(axis):
        raise ValueError(f"sweep {name} values must be unique")
    return axis


def expand_grid(
    gammas: Sequence[float], epsilons: Sequence[float]
) -> List[Tuple[float, float]]:
    """The (gamma, epsilon) cross product, gamma-major.

    Gamma-major order is the batching contract: consecutive points
    share a gamma, so each ``(matrix, gamma)`` kernel is built exactly
    once and every later point of that gamma reuses it from the
    artifact cache.
    """
    gamma_axis = _checked_axis(gammas, "gamma")
    epsilon_axis = _checked_axis(epsilons, "epsilon")
    total = len(gamma_axis) * len(epsilon_axis)
    if total > MAX_SWEEP_POINTS:
        raise ValueError(
            f"sweep grid has {total} points, exceeding the cap of "
            f"{MAX_SWEEP_POINTS}"
        )
    return [
        (gamma, epsilon)
        for gamma in sorted(gamma_axis)
        for epsilon in sorted(epsilon_axis)
    ]


def compute_sweep_id(
    matrix_digest: str,
    base_parameters: Dict[str, Any],
    gammas: Sequence[float],
    epsilons: Sequence[float],
) -> str:
    """Deterministic sweep id over (matrix, base parameters, grid)."""
    payload = json.dumps(
        {
            "matrix": matrix_digest,
            "parameters": base_parameters,
            "gammas": sorted(float(g) for g in gammas),
            "epsilons": sorted(float(e) for e in epsilons),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(
        b"reg-cluster-sweep/v1\x00" + payload.encode("utf-8")
    ).hexdigest()
    return f"sweep-{digest[:16]}"


@dataclass(frozen=True)
class SweepPoint:
    """One grid point, bound to the ordinary job that computes it."""

    gamma: float
    epsilon: float
    job_id: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gamma": self.gamma,
            "epsilon": self.epsilon,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepPoint":
        return cls(
            gamma=float(payload["gamma"]),
            epsilon=float(payload["epsilon"]),
            job_id=str(payload["job_id"]),
        )


@dataclass(frozen=True)
class SweepBatch:
    """A submitted sweep: the grid, its jobs, and the base parameters."""

    sweep_id: str
    matrix_digest: str
    base_parameters: Dict[str, Any]
    points: Tuple[SweepPoint, ...]
    created_at: float

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a sweep batch needs at least one point")
        if len(self.points) > MAX_SWEEP_POINTS:
            raise ValueError(
                f"sweep batch has {len(self.points)} points, exceeding "
                f"the cap of {MAX_SWEEP_POINTS}"
            )

    @property
    def gammas(self) -> Tuple[float, ...]:
        """Distinct gammas, in grid order (first occurrence wins)."""
        seen: Dict[float, None] = {}
        for point in self.points:
            seen.setdefault(point.gamma, None)
        return tuple(seen)

    @property
    def job_ids(self) -> Tuple[str, ...]:
        return tuple(point.job_id for point in self.points)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SWEEP_FORMAT,
            "sweep_id": self.sweep_id,
            "matrix_digest": self.matrix_digest,
            "base_parameters": dict(self.base_parameters),
            "points": [point.to_dict() for point in self.points],
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepBatch":
        if payload.get("format") != SWEEP_FORMAT:
            raise ValueError(
                f"unsupported sweep format {payload.get('format')!r}; "
                f"expected {SWEEP_FORMAT!r}"
            )
        return cls(
            sweep_id=str(payload["sweep_id"]),
            matrix_digest=str(payload["matrix_digest"]),
            base_parameters=dict(payload["base_parameters"]),
            points=tuple(
                SweepPoint.from_dict(point) for point in payload["points"]
            ),
            created_at=float(payload["created_at"]),
        )


class SweepStore:
    """Crash-safe sweep storage: one JSON file per sweep id."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    def _path(self, sweep_id: str) -> Path:
        if not _SWEEP_ID_PATTERN.match(sweep_id):
            raise KeyError(f"malformed sweep id {sweep_id!r}")
        return self.root / f"{sweep_id}.json"

    def save(self, batch: SweepBatch) -> SweepBatch:
        """Persist one batch atomically (idempotent per sweep id)."""
        path = self._path(batch.sweep_id)
        with self._lock:
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(batch.to_dict(), sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return batch

    def get(self, sweep_id: str) -> Optional[SweepBatch]:
        """The stored batch, or ``None`` when unknown or unreadable."""
        try:
            path = self._path(sweep_id)
        except KeyError:
            return None
        with self._lock:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError, OSError):
                return None
        try:
            return SweepBatch.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def list_sweeps(self) -> List[SweepBatch]:
        """Every readable stored batch, oldest first."""
        with self._lock:
            paths = sorted(self.root.glob("sweep-*.json"))
            batches = []
            for path in paths:
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    batches.append(SweepBatch.from_dict(payload))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError, OSError):
                    continue
        batches.sort(key=lambda b: (b.created_at, b.sweep_id))
        return batches
