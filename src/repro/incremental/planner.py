"""Mapping a matrix delta to the mining shards it can influence.

Sharded mining (``repro.service.executor``) runs one shard per chain
*start* condition: shard ``s`` enumerates every cluster whose condition
chain begins at ``s``.  The planner's job is to prove, per shard, that a
delta cannot have changed that shard's output, so a revision job reuses
the parent job's result for it verbatim.

**Soundness argument.**  Let ``any_up[x, y] = exists g: v[g, x] -
v[g, y] > gamma_g`` over a gene set, and draw a successor edge
``a -> b`` whenever ``any_up[b, a]`` — this over-approximates every
chain extension the miner can ever take, for any parameters: a chain
pair must be regulated for *every* member gene, hence for *some* gene.
Let ``R(s)`` be the conditions reachable from ``s`` over the **union**
of the parent's and the child's edges (so it bounds both searches at
once).  Shard ``s`` is **clean** when:

1. ``R(s)`` contains no appended condition — no new condition can
   enter shard ``s``'s candidate frontier (an appended condition in the
   frontier *is* an edge into it, which would put it in ``R(s)``); and
2. no *dirty gene* — appended, dropped, or threshold-changed — has any
   regulation bit within ``R(s) x R(s)`` in either the parent or the
   child relation.

Under (1) every chain of shard ``s`` lies in the old conditions with
bit-identical pairs for threshold-unchanged genes, and under (2) the
dirty genes are invisible to every membership test the shard can make
(both positive and negative membership reduce to an up-bit between two
chain conditions, and ``min_conditions >= 2`` guarantees every member
is witnessed by at least one such pair).  The search trees — candidate
frontiers, member counts, prunes — therefore coincide node for node,
and the shard's clusters are identical.  Everything else is **dirty**
and is re-mined.  The equivalence suite
(``tests/incremental/test_planner.py`` and the service-level stitched
tests) asserts reused-plus-mined equals a from-scratch mine exactly.

The planner derives its relations directly from the two matrices'
values (chunked over genes) rather than from any cached kernel, so a
plan never depends on artifact-cache state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.regulation import gene_thresholds
from repro.incremental.delta import (
    AppendConditions,
    AppendGenes,
    DropGenes,
    MatrixDelta,
)
from repro.matrix.expression import ExpressionMatrix

__all__ = ["DirtyShardPlanner", "RevisionPlan"]

#: Reason codes attached to dirty shards (``RevisionPlan.reasons``).
REASON_APPENDED_START = "appended-condition-start"
REASON_REACHES_APPENDED = "reaches-appended-condition"
REASON_DIRTY_GENE = "dirty-gene-bits-in-reach"


@dataclass(frozen=True)
class RevisionPlan:
    """Which child shards a delta dirties, and why.

    ``clean_shards`` are child shard starts whose parent result can be
    stitched in verbatim; condition ids never shift across a delta, so
    a clean child shard ``s`` always reuses parent shard ``s``.
    """

    kind: str
    n_shards: int
    dirty_shards: Tuple[int, ...]
    clean_shards: Tuple[int, ...]
    #: child-matrix gene names considered dirty (appended or
    #: threshold-changed); dropped genes appear under their parent name
    dirty_genes: Tuple[str, ...]
    #: dirty shard start -> reason code
    reasons: Dict[int, str]

    def __post_init__(self) -> None:
        if set(self.dirty_shards) & set(self.clean_shards):
            raise ValueError("a shard cannot be both dirty and clean")
        if len(self.dirty_shards) + len(self.clean_shards) != self.n_shards:
            raise ValueError(
                "dirty + clean shards must cover the universe: "
                f"{len(self.dirty_shards)} + {len(self.clean_shards)} != "
                f"{self.n_shards}"
            )

    @property
    def is_full_reuse(self) -> bool:
        return not self.dirty_shards

    @property
    def is_full_rebuild(self) -> bool:
        return not self.clean_shards

    def reuse_fraction(self) -> float:
        """Fraction of shards stitched from the parent (0 when empty)."""
        if not self.n_shards:
            return 0.0
        return len(self.clean_shards) / self.n_shards

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "dirty_shards": list(self.dirty_shards),
            "clean_shards": list(self.clean_shards),
            "dirty_genes": list(self.dirty_genes),
            "reasons": {str(k): v for k, v in self.reasons.items()},
        }


def _any_up_into(
    out: NDArray[np.bool_],
    values: NDArray[np.float64],
    thresholds: NDArray[np.float64],
    chunk: int,
) -> None:
    """OR the gene set's pairwise relation into ``out[:C, :C]``."""
    n_genes, n_conditions = values.shape
    # One-time planning pass, chunked to bound memory.
    for start in range(0, n_genes, chunk):  # reglint: disable=RL106
        stop = min(start + chunk, n_genes)
        block = values[start:stop]
        diff = block[:, :, None] - block[:, None, :]
        hits = diff > thresholds[start:stop, None, None]
        out[:n_conditions, :n_conditions] |= hits.any(axis=0)


def _reachability(any_up: NDArray[np.bool_]) -> NDArray[np.bool_]:
    """``reach[s, c]``: ``c`` reachable from ``s`` in >= 0 successor hops.

    A successor edge ``a -> b`` exists iff ``any_up[b, a]``.  Closure by
    repeated boolean matrix squaring — ``O(C^3 log C)`` with tiny
    constants, and ``C`` is the condition count (tens, not thousands).
    """
    n = any_up.shape[0]
    reach = any_up.T | np.eye(n, dtype=bool)
    while True:
        step = reach.astype(np.uint8)
        grown = reach | ((step @ step) > 0)
        if np.array_equal(grown, reach):
            return reach
        reach = grown


class DirtyShardPlanner:
    """Plan which shards a revision job must re-mine.

    Parameters
    ----------
    gene_chunk:
        Gene-axis chunk bounding the dense ``(chunk, C, C)`` difference
        tensors built while deriving the condition graphs.
    """

    def __init__(self, *, gene_chunk: int = 256) -> None:
        if gene_chunk < 1:
            raise ValueError(f"gene_chunk must be >= 1, got {gene_chunk}")
        self.gene_chunk = int(gene_chunk)

    # ------------------------------------------------------------------
    # Per-kind dirty-gene discovery
    # ------------------------------------------------------------------

    def _dirty_rows(
        self,
        parent_matrix: ExpressionMatrix,
        child_matrix: ExpressionMatrix,
        delta: MatrixDelta,
        gamma: float,
    ) -> Tuple[
        Tuple[str, ...],
        Optional[NDArray[np.intp]],
        Optional[NDArray[np.intp]],
    ]:
        """Dirty gene names plus their row indices in parent and child.

        Either index array may be ``None`` when the dirty genes do not
        exist on that side (appended genes have no parent rows, dropped
        genes no child rows).
        """
        if isinstance(delta, AppendConditions):
            old = gene_thresholds(parent_matrix, gamma)
            new = gene_thresholds(child_matrix, gamma)
            # Exact float comparison on purpose: reuse demands the
            # *identical* threshold, not an approximately equal one.
            rows = np.flatnonzero(old != new).astype(np.intp)
            names = tuple(parent_matrix.gene_names[int(i)] for i in rows)
            return names, rows, rows
        if isinstance(delta, AppendGenes):
            n_old = parent_matrix.n_genes
            rows = np.arange(n_old, child_matrix.n_genes, dtype=np.intp)
            return tuple(delta.names), None, rows
        if isinstance(delta, DropGenes):
            dropped = set(delta.genes)
            rows = np.asarray(
                [
                    i
                    for i, name in enumerate(parent_matrix.gene_names)
                    if name in dropped
                ],
                dtype=np.intp,
            )
            return tuple(delta.genes), rows, None
        raise TypeError(f"unknown delta type {type(delta).__name__}")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(
        self,
        parent_matrix: ExpressionMatrix,
        child_matrix: ExpressionMatrix,
        delta: MatrixDelta,
        gamma: float,
    ) -> RevisionPlan:
        """Classify every child shard as clean (reusable) or dirty."""
        n_old = parent_matrix.n_conditions
        n_new = child_matrix.n_conditions
        parent_thr = gene_thresholds(parent_matrix, gamma)
        child_thr = gene_thresholds(child_matrix, gamma)

        # Union condition graph over all genes of both revisions,
        # expressed in child condition ids (parent ids are a prefix).
        union = np.zeros((n_new, n_new), dtype=bool)
        _any_up_into(union, parent_matrix.values, parent_thr, self.gene_chunk)
        _any_up_into(union, child_matrix.values, child_thr, self.gene_chunk)
        reach = _reachability(union)

        # Bits contributed by dirty genes, on either side of the delta.
        names, parent_rows, child_rows = self._dirty_rows(
            parent_matrix, child_matrix, delta, gamma
        )
        dirty_bits = np.zeros((n_new, n_new), dtype=bool)
        if parent_rows is not None and parent_rows.size:
            _any_up_into(
                dirty_bits,
                parent_matrix.values[parent_rows],
                parent_thr[parent_rows],
                self.gene_chunk,
            )
        if child_rows is not None and child_rows.size:
            _any_up_into(
                dirty_bits,
                child_matrix.values[child_rows],
                child_thr[child_rows],
                self.gene_chunk,
            )

        dirty: "list[int]" = []
        clean: "list[int]" = []
        reasons: Dict[int, str] = {}
        # One classification pass over the (small) condition universe.
        for shard in range(n_new):  # reglint: disable=RL106
            if shard >= n_old:
                dirty.append(shard)
                reasons[shard] = REASON_APPENDED_START
                continue
            scope = reach[shard]
            if n_new > n_old and bool(scope[n_old:].any()):
                dirty.append(shard)
                reasons[shard] = REASON_REACHES_APPENDED
                continue
            ids = np.flatnonzero(scope)
            if bool(dirty_bits[np.ix_(ids, ids)].any()):
                dirty.append(shard)
                reasons[shard] = REASON_DIRTY_GENE
                continue
            clean.append(shard)
        return RevisionPlan(
            kind=delta.kind,
            n_shards=n_new,
            dirty_shards=tuple(dirty),
            clean_shards=tuple(clean),
            dirty_genes=names,
            reasons=reasons,
        )
