"""Typed matrix deltas and the revision lineage model.

A *delta* is the difference between two matrix revisions, restricted to
the three shapes real compendia grow by:

``append_conditions``
    new arrays (columns) arrive; every existing gene gains one value
    per new condition.
``append_genes``
    new genes (rows) arrive with a full profile over the existing
    conditions.
``drop_genes``
    genes are retired (failed probes, withdrawn annotations); the
    remaining rows keep their relative order.

Conditions are never dropped or reordered and existing cells are never
edited — those would invalidate every per-gene structure at once, so
they are modeled as a fresh matrix, not a revision.  Within these
shapes the downstream machinery can reason precisely about what a
delta *cannot* have changed: appended values inside a gene's existing
``[min, max]`` leave its Eq. 4 threshold — and therefore every packed
regulation bit among old condition pairs — bit-identical
(:mod:`repro.incremental.update`), and condition-graph reachability
bounds which mining shards the delta can influence at all
(:mod:`repro.incremental.planner`).

A :class:`MatrixRevision` binds a delta to its parent and child matrix
content digests; the child digest is derived by *applying* the delta,
so lineage is content-addressed end to end and an empty or no-op delta
is rejected outright (it would alias its parent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "AppendConditions",
    "AppendGenes",
    "DropGenes",
    "MatrixDelta",
    "MatrixRevision",
    "REVISION_FORMAT",
    "apply_delta",
    "delta_from_dict",
    "delta_to_dict",
]

REVISION_FORMAT = "reg-cluster-revision/v1"


def _checked_names(names: Any, kind: str) -> Tuple[str, ...]:
    resolved = tuple(str(name) for name in names)
    if not resolved:
        raise ValueError(f"a delta must name at least one {kind}")
    if len(set(resolved)) != len(resolved):
        raise ValueError(f"delta {kind} names must be unique")
    return resolved


def _checked_values(values: Any, rows: int, kind: str) -> NDArray[np.float64]:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(
            f"delta values must be 2-D, got shape {array.shape}"
        )
    if array.shape[0] != rows:
        raise ValueError(
            f"delta values must have one row per {kind}: expected "
            f"{rows}, got {array.shape[0]}"
        )
    if array.size and not np.all(np.isfinite(array)):
        raise ValueError("delta values must be finite")
    array.setflags(write=False)
    return array


@dataclass(frozen=True, eq=False)
class AppendConditions:
    """New conditions (columns), one expression value per existing gene.

    ``values`` has shape ``(len(names), n_genes_of_parent)`` — one row
    per new condition, matching the wire/file form where each new array
    arrives as a vector over the current gene set.
    """

    names: Tuple[str, ...]
    values: NDArray[np.float64] = field(repr=False)
    kind = "append_conditions"

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", _checked_names(self.names, "condition"))
        object.__setattr__(
            self,
            "values",
            _checked_values(self.values, len(self.names), "condition"),
        )


@dataclass(frozen=True, eq=False)
class AppendGenes:
    """New genes (rows) with a full profile over the parent's conditions.

    ``values`` has shape ``(len(names), n_conditions_of_parent)``.
    """

    names: Tuple[str, ...]
    values: NDArray[np.float64] = field(repr=False)
    kind = "append_genes"

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", _checked_names(self.names, "gene"))
        object.__setattr__(
            self,
            "values",
            _checked_values(self.values, len(self.names), "gene"),
        )


@dataclass(frozen=True)
class DropGenes:
    """Retire genes by name; surviving rows keep their relative order."""

    genes: Tuple[str, ...]
    kind = "drop_genes"

    def __post_init__(self) -> None:
        object.__setattr__(self, "genes", _checked_names(self.genes, "gene"))


MatrixDelta = Union[AppendConditions, AppendGenes, DropGenes]


def delta_to_dict(delta: MatrixDelta) -> Dict[str, Any]:
    """A delta as a JSON-ready dict (inverse of :func:`delta_from_dict`)."""
    if isinstance(delta, AppendConditions):
        return {
            "kind": delta.kind,
            "names": list(delta.names),
            "values": [[float(v) for v in row] for row in delta.values],
        }
    if isinstance(delta, AppendGenes):
        return {
            "kind": delta.kind,
            "names": list(delta.names),
            "values": [[float(v) for v in row] for row in delta.values],
        }
    if isinstance(delta, DropGenes):
        return {"kind": delta.kind, "genes": list(delta.genes)}
    raise TypeError(f"unknown delta type {type(delta).__name__}")


def delta_from_dict(payload: Dict[str, Any]) -> MatrixDelta:
    """Build a typed delta from its JSON form (re-validated on build)."""
    if not isinstance(payload, dict):
        raise ValueError("delta must be a JSON object")
    kind = payload.get("kind")
    if kind == AppendConditions.kind:
        return AppendConditions(
            names=tuple(payload.get("names", ())),
            values=payload.get("values", []),
        )
    if kind == AppendGenes.kind:
        return AppendGenes(
            names=tuple(payload.get("names", ())),
            values=payload.get("values", []),
        )
    if kind == DropGenes.kind:
        return DropGenes(genes=tuple(payload.get("genes", ())))
    raise ValueError(
        f"unknown delta kind {kind!r}; expected one of "
        f"'append_conditions', 'append_genes', 'drop_genes'"
    )


def apply_delta(
    matrix: ExpressionMatrix, delta: MatrixDelta
) -> ExpressionMatrix:
    """The child matrix of applying one delta to a parent matrix.

    Raises :class:`ValueError` when the delta does not fit the parent
    (wrong width, clashing or unknown names, or dropping every gene).
    """
    if isinstance(delta, AppendConditions):
        if delta.values.shape[1] != matrix.n_genes:
            raise ValueError(
                f"append_conditions values must have {matrix.n_genes} "
                f"columns (one per parent gene), got {delta.values.shape[1]}"
            )
        clash = set(delta.names) & set(matrix.condition_names)
        if clash:
            raise ValueError(
                f"condition name(s) already present: {sorted(clash)}"
            )
        return ExpressionMatrix(
            np.hstack([matrix.values, delta.values.T]),
            matrix.gene_names,
            (*matrix.condition_names, *delta.names),
        )
    if isinstance(delta, AppendGenes):
        if delta.values.shape[1] != matrix.n_conditions:
            raise ValueError(
                f"append_genes values must have {matrix.n_conditions} "
                f"columns (one per parent condition), got "
                f"{delta.values.shape[1]}"
            )
        clash = set(delta.names) & set(matrix.gene_names)
        if clash:
            raise ValueError(
                f"gene name(s) already present: {sorted(clash)}"
            )
        return ExpressionMatrix(
            np.vstack([matrix.values, delta.values]),
            (*matrix.gene_names, *delta.names),
            matrix.condition_names,
        )
    if isinstance(delta, DropGenes):
        unknown = set(delta.genes) - set(matrix.gene_names)
        if unknown:
            raise ValueError(f"unknown gene name(s): {sorted(unknown)}")
        dropped = set(delta.genes)
        keep = [
            name for name in matrix.gene_names if name not in dropped
        ]
        if not keep:
            raise ValueError("a delta cannot drop every gene")
        return matrix.submatrix(genes=keep)
    raise TypeError(f"unknown delta type {type(delta).__name__}")


@dataclass(frozen=True)
class MatrixRevision:
    """One edge of the matrix lineage graph: parent --delta--> child.

    Both endpoints are content digests
    (:func:`repro.matrix.summary.matrix_digest`), so lineage is
    content-addressed: the child digest is *derived* by applying the
    delta, never supplied, and a no-op delta — which would make the
    child alias its parent — is structurally impossible (every delta
    kind changes the matrix shape or membership).
    """

    parent_digest: str
    child_digest: str
    delta: Dict[str, Any]
    created_at: float

    def __post_init__(self) -> None:
        if self.parent_digest == self.child_digest:
            raise ValueError(
                "a revision cannot alias its parent (no-op delta)"
            )
        delta_from_dict(self.delta)  # validate the stored form

    def typed_delta(self) -> MatrixDelta:
        """The revision's delta as its typed form."""
        return delta_from_dict(self.delta)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": REVISION_FORMAT,
            "parent_digest": self.parent_digest,
            "child_digest": self.child_digest,
            "delta": dict(self.delta),
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MatrixRevision":
        if payload.get("format") != REVISION_FORMAT:
            raise ValueError(
                f"unsupported revision format {payload.get('format')!r}; "
                f"expected {REVISION_FORMAT!r}"
            )
        return cls(
            parent_digest=str(payload["parent_digest"]),
            child_digest=str(payload["child_digest"]),
            delta=dict(payload["delta"]),
            created_at=float(payload["created_at"]),
        )
