"""Content-addressed persistence of matrix revisions.

One JSON file per revision, named by the *child* digest — a child has
exactly one recorded parent (its digest pins the full content, so two
different deltas reaching the same child are equivalent by
construction), while a parent may have many children.  Stored beside
the service's other content-addressed artifacts; a restarted daemon
sees every revision it ever accepted and can chain reuse across
generations (grandchild jobs reuse from child jobs, and so on).
"""

# The store's lock serializes revision-file I/O against concurrent
# readers, same as the job store; RL303's blocking-I/O-under-lock
# warning is this class's design, not a defect (docs/robustness.md,
# "Concurrency model").
# reglint: disable-file=RL303

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import List, Optional, Union

from repro.incremental.delta import MatrixRevision

__all__ = ["RevisionStore"]

_DIGEST_PATTERN = re.compile(r"^[0-9a-f]{64}$")


class RevisionStore:
    """Crash-safe revision storage: one JSON file per child digest."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    def _path(self, child_digest: str) -> Path:
        if not _DIGEST_PATTERN.match(child_digest):
            raise KeyError(f"malformed matrix digest {child_digest!r}")
        return self.root / f"{child_digest}.json"

    def save(self, revision: MatrixRevision) -> MatrixRevision:
        """Persist one revision atomically (idempotent per child)."""
        path = self._path(revision.child_digest)
        with self._lock:
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(revision.to_dict(), sort_keys=True, indent=2)
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return revision

    def get(self, child_digest: str) -> Optional[MatrixRevision]:
        """The revision that produced ``child_digest``, or ``None``.

        A malformed or unreadable file answers ``None`` — the child is
        then treated as a root matrix (mined from scratch), which is
        always safe.
        """
        try:
            path = self._path(child_digest)
        except KeyError:
            return None
        with self._lock:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError, OSError):
                return None
        try:
            return MatrixRevision.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def children_of(self, parent_digest: str) -> List[MatrixRevision]:
        """Every stored revision whose parent is ``parent_digest``."""
        return [
            revision
            for revision in self.list_revisions()
            if revision.parent_digest == parent_digest
        ]

    def list_revisions(self) -> List[MatrixRevision]:
        """Every readable stored revision, oldest first."""
        with self._lock:
            paths = sorted(self.root.glob("*.json"))
            revisions = []
            for path in paths:
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    revisions.append(MatrixRevision.from_dict(payload))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError, OSError):
                    continue
        revisions.sort(key=lambda r: (r.created_at, r.child_digest))
        return revisions
