"""repro.incremental — delta-aware mining over evolving matrices.

Expression compendia grow: new arrays (conditions) and genes arrive
over time, and analysts sweep gamma/epsilon grids over one matrix.
This package makes the (matrix, parameters) -> clusters computation a
reusable, delta-updatable artifact instead of a from-scratch job:

* typed matrix deltas and the :class:`MatrixRevision` lineage model
  (:mod:`repro.incremental.delta`), persisted content-addressed by the
  :class:`RevisionStore` (:mod:`repro.incremental.lineage`);
* incremental maintenance of the RWave^gamma index and the packed-bit
  regulation kernel — only new/changed planes are rebuilt, proven
  bit-identical to a cold build (:mod:`repro.incremental.update`);
* the :class:`DirtyShardPlanner`, which maps a delta to the shards
  whose mining inputs actually changed, so a revision job re-mines
  only dirty shards and stitches the rest from its parent
  (:mod:`repro.incremental.planner`);
* batched gamma/epsilon parameter sweeps that build each (matrix,
  gamma) kernel once (:mod:`repro.incremental.sweep`).

See ``docs/incremental.md`` for the lineage model, the shard-reuse
soundness argument, and the sweep API.
"""

from repro.incremental.delta import (
    AppendConditions,
    AppendGenes,
    DropGenes,
    MatrixDelta,
    MatrixRevision,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
)
from repro.incremental.lineage import RevisionStore
from repro.incremental.planner import DirtyShardPlanner, RevisionPlan
from repro.incremental.sweep import (
    MAX_SWEEP_POINTS,
    SweepBatch,
    SweepPoint,
    SweepStore,
    compute_sweep_id,
    expand_grid,
)
from repro.incremental.update import (
    IndexUpdate,
    KernelUpdate,
    update_index,
    update_kernel,
)

__all__ = [
    "AppendConditions",
    "AppendGenes",
    "DirtyShardPlanner",
    "DropGenes",
    "IndexUpdate",
    "KernelUpdate",
    "MatrixDelta",
    "MatrixRevision",
    "MAX_SWEEP_POINTS",
    "RevisionPlan",
    "RevisionStore",
    "SweepBatch",
    "SweepPoint",
    "SweepStore",
    "apply_delta",
    "compute_sweep_id",
    "delta_from_dict",
    "delta_to_dict",
    "expand_grid",
    "update_index",
    "update_kernel",
]
