"""Coverage analysis: how much of the matrix a result explains.

Section 2 of the paper motivates biclustering over projected clustering
with the observation that *a gene may participate in several biological
pathways* — i.e. overlapping clusters are a feature.  This module
quantifies that for a mining result: cell coverage of the whole matrix,
per-gene cluster membership counts, and the distribution of sharing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.cluster import RegCluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["CoverageReport", "coverage_report", "gene_membership_counts"]


def gene_membership_counts(
    clusters: Sequence[RegCluster],
) -> Dict[int, int]:
    """How many clusters each gene belongs to (genes in >= 1 cluster)."""
    counts: Counter = Counter()
    for cluster in clusters:
        for gene in cluster.genes:
            counts[gene] += 1
    return dict(counts)


@dataclass(frozen=True)
class CoverageReport:
    """Cell/gene/condition coverage of one result set."""

    n_clusters: int
    covered_cells: int
    total_cells: int
    covered_genes: int
    total_genes: int
    covered_conditions: int
    total_conditions: int
    #: membership-count histogram: {1: genes in exactly one cluster, ...}
    membership_histogram: Tuple[Tuple[int, int], ...]

    @property
    def cell_fraction(self) -> float:
        return self.covered_cells / self.total_cells if self.total_cells else 0.0

    @property
    def multi_cluster_genes(self) -> int:
        """Genes participating in more than one cluster (the paper's
        multiple-pathway motivation)."""
        return sum(  # reglint: disable=RL104  (integer count, not floats)
            count for size, count in self.membership_histogram if size > 1
        )

    def __str__(self) -> str:
        return (
            f"{self.n_clusters} clusters cover {self.covered_cells}/"
            f"{self.total_cells} cells ({self.cell_fraction:.1%}), "
            f"{self.covered_genes}/{self.total_genes} genes, "
            f"{self.covered_conditions}/{self.total_conditions} conditions; "
            f"{self.multi_cluster_genes} genes sit in multiple clusters"
        )


def coverage_report(
    clusters: Sequence[RegCluster], matrix: ExpressionMatrix
) -> CoverageReport:
    """Summarize what a cluster collection covers in a matrix."""
    cells = set()
    genes = set()
    conditions = set()
    for cluster in clusters:
        cells |= cluster.cells()
        genes |= set(cluster.genes)
        conditions |= set(cluster.chain)
    histogram = Counter(gene_membership_counts(clusters).values())
    return CoverageReport(
        n_clusters=len(clusters),
        covered_cells=len(cells),
        total_cells=matrix.n_genes * matrix.n_conditions,
        covered_genes=len(genes),
        total_genes=matrix.n_genes,
        covered_conditions=len(conditions),
        total_conditions=matrix.n_conditions,
        membership_histogram=tuple(sorted(histogram.items())),
    )
