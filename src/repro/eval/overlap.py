"""Overlap statistics between mined clusters (paper section 5.2).

The paper reports that "the percentage of overlapping cells of a
bi-reg-cluster with another one generally ranges from 0% to 85%" and shows
three *non-overlapping* clusters in detail.  This module computes exactly
those quantities: the pairwise overlap matrix, its range, and a greedy
selection of mutually non-overlapping clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.cluster import RegCluster

__all__ = [
    "pairwise_overlap_matrix",
    "OverlapSummary",
    "overlap_summary",
    "select_non_overlapping",
]


def pairwise_overlap_matrix(clusters: Sequence[RegCluster]) -> np.ndarray:
    """Matrix ``O[i, j]`` = fraction of cluster i's cells shared with j.

    Not symmetric (the denominators differ); the diagonal is 1.
    """
    n = len(clusters)
    cells = [c.cells() for c in clusters]
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        size = len(cells[i])
        for j in range(n):
            if i == j:
                out[i, j] = 1.0
            elif size:
                out[i, j] = len(cells[i] & cells[j]) / size
    return out


@dataclass(frozen=True)
class OverlapSummary:
    """Distribution of the best (max) overlap each cluster has with another."""

    n_clusters: int
    min_overlap: float
    max_overlap: float
    mean_overlap: float

    def __str__(self) -> str:
        return (
            f"{self.n_clusters} clusters; max pairwise overlap per cluster "
            f"ranges {self.min_overlap:.0%} - {self.max_overlap:.0%} "
            f"(mean {self.mean_overlap:.0%})"
        )


def overlap_summary(clusters: Sequence[RegCluster]) -> OverlapSummary:
    """The paper's §5.2 headline statistic.

    For each cluster, take the maximum fraction of its cells shared with
    any *other* cluster; summarize the distribution of these maxima.
    """
    n = len(clusters)
    if n == 0:
        return OverlapSummary(0, 0.0, 0.0, 0.0)
    if n == 1:
        return OverlapSummary(1, 0.0, 0.0, 0.0)
    matrix = pairwise_overlap_matrix(clusters)
    np.fill_diagonal(matrix, -1.0)
    best = matrix.max(axis=1)
    return OverlapSummary(
        n_clusters=n,
        min_overlap=float(best.min()),
        max_overlap=float(best.max()),
        mean_overlap=float(best.mean()),
    )


def select_non_overlapping(
    clusters: Sequence[RegCluster],
    *,
    limit: int = 3,
    max_overlap: float = 0.0,
) -> List[RegCluster]:
    """Greedy pick of up to ``limit`` mutually (near-)disjoint clusters.

    Clusters are considered largest-first (by cell count) and kept when
    their overlap with every already-kept cluster does not exceed
    ``max_overlap`` in either direction — mirroring the paper's selection
    of three non-overlapping bi-reg-clusters for Figure 8.
    """
    if limit < 1:
        return []
    ranked = sorted(
        clusters, key=lambda c: (-(c.n_genes * c.n_conditions), c.chain)
    )
    kept: List[RegCluster] = []
    kept_cells: List[Tuple[frozenset, int]] = []
    for cluster in ranked:
        cells = cluster.cells()
        size = max(len(cells), 1)
        acceptable = True
        for other_cells, other_size in kept_cells:
            shared = len(cells & other_cells)
            if shared / size > max_overlap or shared / other_size > max_overlap:
                acceptable = False
                break
        if acceptable:
            kept.append(cluster)
            kept_cells.append((cells, size))
            if len(kept) == limit:
                break
    return kept
