"""Evaluation substrate: cluster matching, overlap statistics, GO enrichment."""

from repro.eval.coverage import (
    CoverageReport,
    coverage_report,
    gene_membership_counts,
)
from repro.eval.match import (
    MatchReport,
    best_match,
    jaccard_cells,
    match_report,
    recovery_score,
    relevance_score,
)
from repro.eval.profiles import render_cluster_profiles
from repro.eval.significance import (
    SignificanceReport,
    empirical_p_value,
    null_cluster_sizes,
)
from repro.eval.overlap import (
    OverlapSummary,
    overlap_summary,
    pairwise_overlap_matrix,
    select_non_overlapping,
)

__all__ = [
    "jaccard_cells",
    "best_match",
    "recovery_score",
    "relevance_score",
    "MatchReport",
    "match_report",
    "pairwise_overlap_matrix",
    "OverlapSummary",
    "overlap_summary",
    "select_non_overlapping",
    "render_cluster_profiles",
    "SignificanceReport",
    "empirical_p_value",
    "null_cluster_sizes",
    "CoverageReport",
    "coverage_report",
    "gene_membership_counts",
]
