"""Empirical cluster significance via permutation testing.

The paper evaluates biological significance through GO enrichment; a
complementary, annotation-free question is *statistical* significance:
how unusual is a cluster of this shape under the null hypothesis of no
condition structure?  The standard answer is a permutation test — shuffle
every gene's values across conditions (destroying all alignment while
preserving each gene's value distribution and hence its regulation
threshold), re-mine, and compare what turns up.

Two statistics are offered:

* :func:`null_cluster_sizes` — the distribution of the largest cluster
  area found on permuted matrices;
* :func:`empirical_p_value` — the fraction of permutations producing any
  cluster at least as large (in covered cells) as the observed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.cluster import RegCluster
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.datasets.noise import permute_cells
from repro.matrix.expression import ExpressionMatrix

__all__ = ["SignificanceReport", "null_cluster_sizes", "empirical_p_value"]


def _largest_area(clusters: Sequence[RegCluster]) -> int:
    return max(
        (c.n_genes * c.n_conditions for c in clusters), default=0
    )


def null_cluster_sizes(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    n_permutations: int = 20,
    seed: int = 0,
    max_clusters_per_run: Optional[int] = 200,
) -> List[int]:
    """Largest cluster area per permuted replicate.

    ``max_clusters_per_run`` caps each null mining run; the largest-area
    statistic is insensitive to the cap as long as it is comfortably
    above the typical null cluster count.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    null_params = params.with_overrides(max_clusters=max_clusters_per_run)
    sizes: List[int] = []
    for replicate in range(n_permutations):
        shuffled = permute_cells(matrix, seed=seed + replicate)
        result = RegClusterMiner(shuffled, null_params).mine()
        sizes.append(_largest_area(result.clusters))
    return sizes


@dataclass(frozen=True)
class SignificanceReport:
    """Outcome of a permutation test for one cluster."""

    observed_area: int
    null_sizes: Sequence[int]
    p_value: float

    def __str__(self) -> str:
        top = max(self.null_sizes, default=0)
        return (
            f"observed area {self.observed_area} cells; largest null "
            f"cluster {top} cells over {len(self.null_sizes)} "
            f"permutations; empirical p = {self.p_value:.3g}"
        )


def empirical_p_value(
    cluster: RegCluster,
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    n_permutations: int = 20,
    seed: int = 0,
) -> SignificanceReport:
    """Permutation p-value for one observed cluster.

    The add-one estimator ``(1 + #{null >= observed}) / (1 + N)`` avoids
    reporting an exact zero, which a finite permutation test can never
    justify.
    """
    observed = cluster.n_genes * cluster.n_conditions
    sizes = null_cluster_sizes(
        matrix, params, n_permutations=n_permutations, seed=seed
    )
    exceed = sum(  # reglint: disable=RL104  (integer count, not floats)
        1 for size in sizes if size >= observed
    )
    p_value = (1 + exceed) / (1 + len(sizes))
    return SignificanceReport(
        observed_area=observed, null_sizes=tuple(sizes), p_value=p_value
    )
