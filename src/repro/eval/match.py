"""Matching mined clusters against embedded ground truth.

The synthetic experiments need a way to say "the miner recovered the
embedded clusters".  We use the standard bicluster match score (Prelic et
al. style): the Jaccard similarity of the two clusters' cell sets, plus
recovery / relevance aggregates over whole result collections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.cluster import RegCluster

__all__ = [
    "jaccard_cells",
    "best_match",
    "recovery_score",
    "relevance_score",
    "MatchReport",
    "match_report",
]


def jaccard_cells(found: RegCluster, truth: RegCluster) -> float:
    """Jaccard similarity of the two clusters' (gene, condition) cells."""
    a, b = found.cells(), truth.cells()
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def best_match(
    cluster: RegCluster, pool: Sequence[RegCluster]
) -> Tuple[Optional[RegCluster], float]:
    """The pool cluster with the highest cell-Jaccard to ``cluster``."""
    best: Optional[RegCluster] = None
    best_score = 0.0
    for other in pool:
        score = jaccard_cells(cluster, other)
        if score > best_score:
            best, best_score = other, score
    return best, best_score


def recovery_score(
    found: Sequence[RegCluster], embedded: Sequence[RegCluster]
) -> float:
    """How well the found clusters cover the embedded ones (in [0, 1]).

    Average, over the embedded clusters, of the best Jaccard achieved by
    any found cluster.  1.0 means every embedded cluster was recovered
    exactly.
    """
    if not embedded:
        return 1.0
    return math.fsum(best_match(t, found)[1] for t in embedded) / len(embedded)


def relevance_score(
    found: Sequence[RegCluster], embedded: Sequence[RegCluster]
) -> float:
    """How much of the found output corresponds to embedded structure.

    Average, over the found clusters, of the best Jaccard achieved by any
    embedded cluster.  Low relevance means the miner reports spurious
    clusters.
    """
    if not found:
        return 1.0 if not embedded else 0.0
    return math.fsum(best_match(f, embedded)[1] for f in found) / len(found)


@dataclass(frozen=True)
class MatchReport:
    """Summary of a recovery experiment."""

    recovery: float
    relevance: float
    n_found: int
    n_embedded: int
    #: number of embedded clusters matched with Jaccard >= the threshold
    n_recovered: int
    threshold: float

    def __str__(self) -> str:
        return (
            f"recovered {self.n_recovered}/{self.n_embedded} embedded "
            f"clusters (J >= {self.threshold}); recovery={self.recovery:.3f} "
            f"relevance={self.relevance:.3f} from {self.n_found} found"
        )


def match_report(
    found: Sequence[RegCluster],
    embedded: Sequence[RegCluster],
    *,
    threshold: float = 0.9,
) -> MatchReport:
    """Full recovery/relevance report for a mining run."""
    n_recovered = sum(  # reglint: disable=RL104  (integer count, not floats)
        1 for t in embedded if best_match(t, found)[1] >= threshold
    )
    return MatchReport(
        recovery=recovery_score(found, embedded),
        relevance=relevance_score(found, embedded),
        n_found=len(found),
        n_embedded=len(embedded),
        n_recovered=n_recovered,
        threshold=threshold,
    )
