"""On-disk formats for the GO substrate.

Real enrichment pipelines exchange annotations as GAF-style tables and
ontologies as OBO files.  This module implements compact dialects of
both, so the simulated corpus can be exported for external tools (or a
hand-edited corpus imported):

* **annotations**: tab-delimited ``gene<TAB>term_id`` rows (one direct
  annotation per line; ancestor closure is re-applied on load);
* **ontology**: an OBO-lite stanza format::

      [Term]
      id: GO:0000003
      name: DNA replication
      namespace: biological_process
      is_a: GO:0000002
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, List, Set, Union

from repro.eval.go.annotation import AnnotationCorpus
from repro.eval.go.ontology import GeneOntology, GOTerm

__all__ = [
    "save_ontology",
    "load_ontology",
    "save_annotations",
    "load_annotations",
]


def save_ontology(
    ontology: GeneOntology, path: Union[str, Path]
) -> None:
    """Write an ontology in the OBO-lite stanza format."""
    with open(path, "w", encoding="utf-8") as handle:
        for term in ontology.terms():
            handle.write("[Term]\n")
            handle.write(f"id: {term.term_id}\n")
            handle.write(f"name: {term.name}\n")
            handle.write(f"namespace: {term.namespace}\n")
            for parent in term.parents:
                handle.write(f"is_a: {parent}\n")
            handle.write("\n")


def load_ontology(path: Union[str, Path]) -> GeneOntology:
    """Read an OBO-lite file back into a :class:`GeneOntology`."""
    terms: List[GOTerm] = []
    current: Dict[str, List[str]] = {}

    def flush() -> None:
        if not current:
            return
        for required in ("id", "name", "namespace"):
            if required not in current:
                raise ValueError(
                    f"[Term] stanza missing '{required}' "
                    f"(near {current.get('id', ['?'])[0]})"
                )
        terms.append(
            GOTerm(
                term_id=current["id"][0],
                name=current["name"][0],
                namespace=current["namespace"][0],
                parents=tuple(current.get("is_a", [])),
            )
        )
        current.clear()

    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line == "[Term]":
                flush()
                continue
            if not line:
                continue
            if ":" not in line:
                raise ValueError(f"malformed OBO-lite line: {line!r}")
            key, __, value = line.partition(":")
            current.setdefault(key.strip(), []).append(value.strip())
    flush()
    if not terms:
        raise ValueError("OBO-lite file contains no [Term] stanzas")
    return GeneOntology(terms)


def save_annotations(
    corpus: AnnotationCorpus,
    path: Union[str, Path],
    *,
    direct_only: bool = False,
) -> None:
    """Write ``gene<TAB>term`` rows.

    With ``direct_only`` (recommended) each gene's annotation set is
    reduced to the terms that are not implied by another of its terms;
    the full upward closure is reconstructed on load.
    """
    ontology = corpus.ontology
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("gene\tterm\n")
        for gene in sorted(corpus.population):
            terms = corpus.annotations.get(gene, frozenset())
            if direct_only:
                implied: Set[str] = set()
                for term_id in terms:
                    implied |= ontology.ancestors(term_id)
                terms = frozenset(t for t in terms if t not in implied)
            for term_id in sorted(terms):
                handle.write(f"{gene}\t{term_id}\n")


def load_annotations(
    path: Union[str, Path], ontology: GeneOntology
) -> AnnotationCorpus:
    """Read ``gene<TAB>term`` rows, closing annotations upward.

    The population is the set of genes appearing in the file.
    """
    direct: Dict[int, Set[str]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline()
        if not header.startswith("gene"):
            raise ValueError("annotation file missing 'gene\\tterm' header")
        for lineno, raw in enumerate(handle, start=2):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: expected 2 fields")
            gene_text, term_id = parts
            if term_id not in ontology:
                raise ValueError(
                    f"line {lineno}: unknown GO term {term_id!r}"
                )
            direct.setdefault(int(gene_text), set()).add(term_id)

    annotations: Dict[int, FrozenSet[str]] = {
        gene: ontology.with_ancestors(terms)
        for gene, terms in direct.items()
    }
    return AnnotationCorpus(
        ontology=ontology,
        annotations=annotations,
        population=frozenset(annotations),
    )
