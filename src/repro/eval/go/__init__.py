"""Simulated Gene Ontology substrate (Table 2's term finder)."""

from repro.eval.go.annotation import AnnotationCorpus, annotate_surrogate
from repro.eval.go.enrichment import (
    TermEnrichment,
    enrich,
    go_table,
    top_terms_by_namespace,
)
from repro.eval.go.io import (
    load_annotations,
    load_ontology,
    save_annotations,
    save_ontology,
)
from repro.eval.go.ontology import (
    NAMESPACES,
    GeneOntology,
    GOTerm,
    build_default_ontology,
)

__all__ = [
    "GOTerm",
    "GeneOntology",
    "NAMESPACES",
    "build_default_ontology",
    "AnnotationCorpus",
    "annotate_surrogate",
    "TermEnrichment",
    "enrich",
    "top_terms_by_namespace",
    "go_table",
    "save_ontology",
    "load_ontology",
    "save_annotations",
    "load_annotations",
]
