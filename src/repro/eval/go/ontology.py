"""A miniature Gene Ontology.

A small, self-contained stand-in for the Gene Ontology used by the
yeastgenome.org GO Term Finder the paper applies in Table 2.  It keeps
the pieces the enrichment statistics need: terms in the three namespaces
(biological process, molecular function, cellular component), is-a
parent links forming a DAG, and ancestor closure (annotating a gene with
a term implicitly annotates it with every ancestor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "Namespace",
    "PROCESS",
    "FUNCTION",
    "COMPONENT",
    "NAMESPACES",
    "GOTerm",
    "GeneOntology",
    "build_default_ontology",
]

#: The three GO namespaces, in the order of the paper's Table 2 columns.
Namespace = str
PROCESS: Namespace = "biological_process"
FUNCTION: Namespace = "molecular_function"
COMPONENT: Namespace = "cellular_component"
NAMESPACES: Tuple[Namespace, ...] = (PROCESS, FUNCTION, COMPONENT)


@dataclass(frozen=True)
class GOTerm:
    """One ontology term."""

    term_id: str
    name: str
    namespace: Namespace
    parents: Tuple[str, ...] = ()


class GeneOntology:
    """Term registry with DAG utilities (ancestor closure, roots).

    Raises
    ------
    ValueError
        On duplicate term ids, unknown parents, unknown namespaces, or
        cycles.
    """

    def __init__(self, terms: Iterable[GOTerm]) -> None:
        self._terms: Dict[str, GOTerm] = {}
        for term in terms:
            if term.namespace not in NAMESPACES:
                raise ValueError(
                    f"unknown namespace {term.namespace!r} for {term.term_id}"
                )
            if term.term_id in self._terms:
                raise ValueError(f"duplicate term id {term.term_id}")
            self._terms[term.term_id] = term
        for term in self._terms.values():
            for parent in term.parents:
                if parent not in self._terms:
                    raise ValueError(
                        f"{term.term_id} references unknown parent {parent}"
                    )
                if self._terms[parent].namespace != term.namespace:
                    raise ValueError(
                        f"{term.term_id} crosses namespaces to {parent}"
                    )
        self._ancestors: Dict[str, FrozenSet[str]] = {}
        for term_id in self._terms:
            self._ancestors[term_id] = self._closure(term_id, frozenset())

    def _closure(self, term_id: str, seen: FrozenSet[str]) -> FrozenSet[str]:
        if term_id in seen:
            raise ValueError(f"ontology contains a cycle through {term_id}")
        cached = self._ancestors.get(term_id)
        if cached is not None:
            return cached
        result = set()
        for parent in self._terms[term_id].parents:
            result.add(parent)
            result |= self._closure(parent, seen | {term_id})
        closure = frozenset(result)
        self._ancestors[term_id] = closure
        return closure

    # ------------------------------------------------------------------

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def term(self, term_id: str) -> GOTerm:
        try:
            return self._terms[term_id]
        except KeyError:
            raise KeyError(f"unknown GO term {term_id!r}") from None

    def terms(self, namespace: Optional[Namespace] = None) -> List[GOTerm]:
        """All terms, optionally restricted to one namespace."""
        if namespace is None:
            return list(self._terms.values())
        return [t for t in self._terms.values() if t.namespace == namespace]

    def ancestors(self, term_id: str) -> FrozenSet[str]:
        """All (transitive) parents of a term, excluding itself."""
        if term_id not in self._terms:
            raise KeyError(f"unknown GO term {term_id!r}")
        return self._ancestors[term_id]

    def with_ancestors(self, term_ids: Iterable[str]) -> FrozenSet[str]:
        """Close a set of term ids upward over the DAG."""
        out = set()
        for term_id in term_ids:
            out.add(term_id)
            out |= self.ancestors(term_id)
        return frozenset(out)

    def find_by_name(self, name: str) -> GOTerm:
        """Look a term up by its human-readable name (exact match)."""
        for term in self._terms.values():
            if term.name == name:
                return term
        raise KeyError(f"no GO term named {name!r}")


def _mk(counter: List[int], name: str, namespace: Namespace,
        *parents: str) -> GOTerm:
    counter[0] += 1
    return GOTerm(
        term_id=f"GO:{counter[0]:07d}",
        name=name,
        namespace=namespace,
        parents=parents,
    )


def build_default_ontology() -> GeneOntology:
    """The ontology the yeast-surrogate annotations are written against.

    Contains the exact terms of the paper's Table 2 (e.g. "DNA
    replication", "structural constituent of ribosome", "replication
    fork"), the terms of the surrogate's extra modules, and generic
    filler terms under each namespace root so enrichment has a realistic
    background to compete against.
    """
    counter = [0]
    terms: List[GOTerm] = []

    def add(name: str, namespace: Namespace, *parents: str) -> GOTerm:
        term = _mk(counter, name, namespace, *parents)
        terms.append(term)
        return term

    # --- biological process ------------------------------------------
    bp_root = add("biological_process", PROCESS)
    metabolism = add("metabolic process", PROCESS, bp_root.term_id)
    add("DNA replication", PROCESS, metabolism.term_id)
    biosynthesis = add("biosynthetic process", PROCESS, metabolism.term_id)
    add("protein biosynthesis", PROCESS, biosynthesis.term_id)
    organization = add("cellular organization", PROCESS, bp_root.term_id)
    add("cytoplasm organization and biogenesis", PROCESS,
        organization.term_id)
    add("response to stress", PROCESS, bp_root.term_id)
    cycle = add("cell cycle", PROCESS, bp_root.term_id)
    add("mitotic cell cycle", PROCESS, cycle.term_id)
    add("amino acid metabolic process", PROCESS, metabolism.term_id)
    add("transport", PROCESS, bp_root.term_id)
    add("signal transduction", PROCESS, bp_root.term_id)
    add("transcription", PROCESS, metabolism.term_id)
    add("lipid metabolic process", PROCESS, metabolism.term_id)
    add("carbohydrate metabolic process", PROCESS, metabolism.term_id)

    # --- molecular function ------------------------------------------
    mf_root = add("molecular_function", FUNCTION)
    catalytic = add("catalytic activity", FUNCTION, mf_root.term_id)
    polymerase = add("polymerase activity", FUNCTION, catalytic.term_id)
    add("DNA-directed DNA polymerase activity", FUNCTION,
        polymerase.term_id)
    structural = add("structural molecule activity", FUNCTION,
                     mf_root.term_id)
    add("structural constituent of ribosome", FUNCTION, structural.term_id)
    add("helicase activity", FUNCTION, catalytic.term_id)
    add("chaperone activity", FUNCTION, mf_root.term_id)
    kinase = add("kinase activity", FUNCTION, catalytic.term_id)
    add("cyclin-dependent protein kinase activity", FUNCTION,
        kinase.term_id)
    add("transaminase activity", FUNCTION, catalytic.term_id)
    add("transporter activity", FUNCTION, mf_root.term_id)
    add("DNA binding", FUNCTION, mf_root.term_id)
    add("RNA binding", FUNCTION, mf_root.term_id)
    add("oxidoreductase activity", FUNCTION, catalytic.term_id)

    # --- cellular component ------------------------------------------
    cc_root = add("cellular_component", COMPONENT)
    nucleus = add("nucleus", COMPONENT, cc_root.term_id)
    add("replication fork", COMPONENT, nucleus.term_id)
    cytoplasm = add("cytoplasm", COMPONENT, cc_root.term_id)
    rnp = add("ribonucleoprotein complex", COMPONENT, cytoplasm.term_id)
    ribosome = add("ribosome", COMPONENT, rnp.term_id)
    add("cytosolic ribosome", COMPONENT, ribosome.term_id)
    add("mitochondrion", COMPONENT, cytoplasm.term_id)
    add("plasma membrane", COMPONENT, cc_root.term_id)
    add("vacuole", COMPONENT, cytoplasm.term_id)
    add("endoplasmic reticulum", COMPONENT, cytoplasm.term_id)
    add("cell wall", COMPONENT, cc_root.term_id)

    return GeneOntology(terms)

