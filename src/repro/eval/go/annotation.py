"""Gene-to-GO-term annotation corpus.

Builds the annotation table the term finder scores against.  For the
yeast surrogate, each embedded module's genes are annotated with that
module's characteristic process / function / component terms (with a
small false-negative rate, real annotation databases being incomplete),
and *every* gene — member or background — additionally receives a few
random annotations per namespace, so enrichment must beat a non-trivial
background.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set

import numpy as np

from repro.datasets.yeast import YeastSurrogate
from repro.eval.go.ontology import GeneOntology, build_default_ontology

__all__ = ["AnnotationCorpus", "annotate_surrogate"]


@dataclass(frozen=True)
class AnnotationCorpus:
    """Annotations of a gene population against an ontology.

    ``annotations[gene]`` is the upward-closed set of term ids the gene
    is annotated with.  ``population`` is the full gene universe the
    enrichment statistics condition on.
    """

    ontology: GeneOntology
    annotations: Mapping[int, FrozenSet[str]]
    population: FrozenSet[int]

    def genes_with_term(self, term_id: str) -> FrozenSet[int]:
        """All population genes annotated (directly or via closure) with a term."""
        if term_id not in self.ontology:
            raise KeyError(f"unknown GO term {term_id!r}")
        return frozenset(
            g for g in self.population
            if term_id in self.annotations.get(g, frozenset())
        )

    def term_counts(self) -> Dict[str, int]:
        """Number of annotated genes per term (enrichment denominators)."""
        counts: Dict[str, int] = {}
        for gene in self.population:
            for term_id in self.annotations.get(gene, frozenset()):
                counts[term_id] = counts.get(term_id, 0) + 1
        return counts


def annotate_surrogate(
    surrogate: YeastSurrogate,
    *,
    ontology: Optional[GeneOntology] = None,
    background_terms_per_namespace: int = 1,
    false_negative_rate: float = 0.1,
    seed: int = 7,
) -> AnnotationCorpus:
    """Annotate the yeast surrogate's genes.

    Module genes get their module's three characteristic terms (each
    dropped independently with ``false_negative_rate``); every gene gets
    ``background_terms_per_namespace`` random extra terms per namespace.
    All annotations are closed upward over the ontology DAG.
    """
    if ontology is None:
        ontology = build_default_ontology()
    if not 0.0 <= false_negative_rate < 1.0:
        raise ValueError("false_negative_rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n_genes = surrogate.matrix.n_genes

    module_terms: Dict[str, List[str]] = {}
    for module in surrogate.modules:
        module_terms[module.name] = [
            ontology.find_by_name(module.process).term_id,
            ontology.find_by_name(module.function).term_id,
            ontology.find_by_name(module.component).term_id,
        ]

    namespace_pools = {
        ns: [t.term_id for t in ontology.terms(ns)]
        for ns in ("biological_process", "molecular_function",
                   "cellular_component")
    }

    annotations: Dict[int, FrozenSet[str]] = {}
    for gene in range(n_genes):
        direct: Set[str] = set()
        module_name = surrogate.gene_modules.get(gene)
        if module_name is not None:
            for term_id in module_terms[module_name]:
                if rng.random() >= false_negative_rate:
                    direct.add(term_id)
        for pool in namespace_pools.values():
            picks = rng.choice(
                len(pool),
                size=min(background_terms_per_namespace, len(pool)),
                replace=False,
            )
            direct.update(pool[int(p)] for p in picks)
        annotations[gene] = ontology.with_ancestors(direct)

    return AnnotationCorpus(
        ontology=ontology,
        annotations=annotations,
        population=frozenset(range(n_genes)),
    )
