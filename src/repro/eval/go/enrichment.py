"""GO term enrichment — the Term Finder behind the paper's Table 2.

Given a gene cluster and an annotation corpus, scores each term with the
hypergeometric upper tail (the statistic the SGD GO Term Finder the paper
uses is built on): the probability of seeing at least ``k`` of the
cluster's ``n`` genes annotated with a term that annotates ``K`` of the
``N`` population genes.  Reports the best term per namespace, matching
the layout of the paper's Table 2 (process / function / component with
their p-values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from scipy.stats import hypergeom

from repro.core.cluster import RegCluster
from repro.eval.go.annotation import AnnotationCorpus
from repro.eval.go.ontology import NAMESPACES, Namespace

__all__ = [
    "TermEnrichment",
    "enrich",
    "top_terms_by_namespace",
    "go_table",
]


@dataclass(frozen=True)
class TermEnrichment:
    """Enrichment of one term in one gene set."""

    term_id: str
    name: str
    namespace: Namespace
    p_value: float
    cluster_hits: int
    cluster_size: int
    population_hits: int
    population_size: int

    def __str__(self) -> str:
        return (
            f"{self.name} (p={self.p_value:.3g}; "
            f"{self.cluster_hits}/{self.cluster_size} vs "
            f"{self.population_hits}/{self.population_size})"
        )


def _cluster_genes(cluster: "RegCluster | Iterable[int]") -> Tuple[int, ...]:
    if isinstance(cluster, RegCluster):
        return cluster.genes
    return tuple(int(g) for g in cluster)


def enrich(
    cluster: "RegCluster | Iterable[int]",
    corpus: AnnotationCorpus,
    *,
    min_hits: int = 2,
    max_p_value: float = 1.0,
) -> List[TermEnrichment]:
    """Score every ontology term against a gene set.

    Terms hit by fewer than ``min_hits`` cluster genes are skipped (a
    single gene is never evidence of co-regulation), as are the namespace
    roots (annotating everything, they are never informative).

    Results are sorted by ascending p-value, ties broken by term id for
    determinism.
    """
    genes = _cluster_genes(cluster)
    gene_set = frozenset(genes) & corpus.population
    n = len(gene_set)
    if n == 0:
        return []
    population = len(corpus.population)
    counts = corpus.term_counts()

    cluster_counts: Dict[str, int] = {}
    for gene in gene_set:
        for term_id in corpus.annotations.get(gene, frozenset()):
            cluster_counts[term_id] = cluster_counts.get(term_id, 0) + 1

    results: List[TermEnrichment] = []
    for term_id, hits in cluster_counts.items():
        if hits < min_hits:
            continue
        term = corpus.ontology.term(term_id)
        if not term.parents:  # namespace root
            continue
        total = counts[term_id]
        # P[X >= hits] with X ~ Hypergeom(N=population, K=total, n=n)
        p_value = float(hypergeom.sf(hits - 1, population, total, n))
        if p_value > max_p_value:
            continue
        results.append(
            TermEnrichment(
                term_id=term_id,
                name=term.name,
                namespace=term.namespace,
                p_value=p_value,
                cluster_hits=hits,
                cluster_size=n,
                population_hits=total,
                population_size=population,
            )
        )
    results.sort(key=lambda e: (e.p_value, e.term_id))
    return results


def top_terms_by_namespace(
    cluster: "RegCluster | Iterable[int]",
    corpus: AnnotationCorpus,
    *,
    min_hits: int = 2,
) -> Dict[Namespace, Optional[TermEnrichment]]:
    """The most enriched term in each namespace (one Table 2 row)."""
    best: Dict[Namespace, Optional[TermEnrichment]] = {
        ns: None for ns in NAMESPACES
    }
    for entry in enrich(cluster, corpus, min_hits=min_hits):
        if best[entry.namespace] is None:
            best[entry.namespace] = entry
    return best


def go_table(
    clusters: Sequence["RegCluster | Iterable[int]"],
    corpus: AnnotationCorpus,
    *,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Render the paper's Table 2 for a list of clusters.

    One row per cluster: the top process, function and component terms
    with their hypergeometric p-values.
    """
    if labels is None:
        labels = [f"cluster {i + 1}" for i in range(len(clusters))]
    if len(labels) != len(clusters):
        raise ValueError("labels must parallel clusters")

    headers = ("Cluster", "Process", "Function", "Cellular Component")
    rows: List[Tuple[str, str, str, str]] = []
    for label, cluster in zip(labels, clusters):
        best = top_terms_by_namespace(cluster, corpus)
        cells = []
        for namespace in NAMESPACES:
            entry = best[namespace]
            if entry is None:
                cells.append("-")
            else:
                cells.append(f"{entry.name} (p={entry.p_value:.3g})")
        rows.append((label, *cells))

    widths = [
        max(len(headers[k]), *(len(r[k]) for r in rows)) if rows else len(headers[k])
        for k in range(4)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    return "\n".join([line, rule, *body])
