"""ASCII rendering of cluster expression profiles (Figure 8 style).

The paper's Figure 8 plots each cluster's gene profiles over its
conditions — p-members as solid lines, n-members as dashed lines, with
the characteristic crossovers of shifting-and-scaling patterns.  Without
a plotting backend, this module renders the same content as a character
grid: one column block per condition, ``*`` tracing p-member profiles and
``o`` tracing n-member profiles.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.cluster import RegCluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["render_cluster_profiles"]


def render_cluster_profiles(
    cluster: RegCluster,
    matrix: ExpressionMatrix,
    *,
    height: int = 16,
    column_width: int = 8,
    normalize: bool = True,
) -> str:
    """Draw a cluster's member profiles as an ASCII chart.

    Parameters
    ----------
    cluster:
        The cluster to draw; conditions appear in chain order.
    matrix:
        The expression data.
    height:
        Number of character rows for the value axis.
    column_width:
        Horizontal spacing between conditions.
    normalize:
        Per-gene min-max normalization (default) makes the shared
        shifting-and-scaling *shape* visible regardless of each gene's
        scale; pass ``False`` to plot raw values.
    """
    if height < 2 or column_width < 3:
        raise ValueError("height >= 2 and column_width >= 3 required")
    sub = cluster.submatrix(matrix)
    values = np.array(sub.values, copy=True)
    # submatrix rows follow cluster.genes (sorted ids); mark p/n per row
    p_set = set(cluster.p_members)
    row_is_p = [gene in p_set for gene in cluster.genes]

    if normalize:
        lo = values.min(axis=1, keepdims=True)
        hi = values.max(axis=1, keepdims=True)
        span = np.where(hi - lo == 0, 1.0, hi - lo)
        values = (values - lo) / span
    overall_lo = float(values.min())
    overall_hi = float(values.max())
    span = overall_hi - overall_lo or 1.0

    n_genes, n_conditions = values.shape
    width = column_width * (n_conditions - 1) + 1 if n_conditions > 1 else 1
    grid: List[List[str]] = [[" "] * width for __ in range(height)]

    def to_row(value: float) -> int:
        frac = (value - overall_lo) / span
        return int(round((height - 1) * (1.0 - frac)))

    # order matters: draw p-members second so '*' wins contested cells
    gene_order = [r for r in range(n_genes) if not row_is_p[r]] + [
        r for r in range(n_genes) if row_is_p[r]
    ]
    for gene_row in gene_order:
        marker = "*" if row_is_p[gene_row] else "o"
        for k in range(n_conditions):
            x0 = k * column_width
            y0 = to_row(values[gene_row, k])
            grid[y0][x0] = marker
            if k + 1 < n_conditions:
                y1 = to_row(values[gene_row, k + 1])
                for step in range(1, column_width):
                    x = x0 + step
                    y = int(round(y0 + (y1 - y0) * step / column_width))
                    if grid[y][x] == " ":
                        grid[y][x] = "." if marker == "o" else "-"

    condition_labels = [sub.condition_names[k] for k in range(n_conditions)]
    label_row = [" "] * (width + column_width)
    for k, label in enumerate(condition_labels):
        x = k * column_width
        for offset, char in enumerate(label[: column_width - 1]):
            label_row[x + offset] = char

    legend = (
        f"p-members (*/-): {len(cluster.p_members)}   "
        f"n-members (o/.): {len(cluster.n_members)}"
    )
    lines = ["".join(row).rstrip() for row in grid]
    lines.append("".join(label_row).rstrip())
    lines.append(legend)
    return "\n".join(lines)
