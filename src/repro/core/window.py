"""Sliding-window partition of genes by coherence score (pruning 4).

When the miner extends a chain by one condition, every candidate gene gets
an H score for the new step (Eq. 7).  Genes sorted by that score are then
partitioned into *maximal* intervals whose score spread is at most
``epsilon`` — each interval of at least ``MinG`` genes becomes one child
branch of the search.  Intervals may overlap, which is why reg-clusters
themselves may overlap.

The window scan is the hottest phase of the search (it runs once per
examined candidate), so the partition is computed vectorized: one
:func:`numpy.searchsorted` proposes every window end at once, then a
fix-up pass re-checks the proposals against the *exact* predicate
``scores[end] - scores[start] <= epsilon`` — the cutoff ``scores[start] +
epsilon`` used by the binary search can disagree with the subtraction
form in the last ulp, and the window boundaries must match the scalar
definition bit for bit.  The original scalar two-pointer scan is kept as
:func:`_scan_maximal_windows`, both as the reference the property tests
compare against and as the fallback for non-finite scores.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = [
    "maximal_coherent_windows",
    "coherent_gene_windows",
    "segmented_maximal_windows",
]


def _scan_maximal_windows(
    scores: NDArray[np.float64], epsilon: float, min_length: int
) -> List[Tuple[int, int]]:
    """Reference scalar two-pointer scan (the window definition)."""
    n = scores.shape[0]
    windows: List[Tuple[int, int]] = []
    end = 0
    previous_end = -1
    for start in range(n):
        if end < start:
            end = start
        while end + 1 < n and scores[end + 1] - scores[start] <= epsilon:
            end += 1
        if end > previous_end:  # not contained in the previous window
            if end - start + 1 >= min_length:
                windows.append((start, end))
            previous_end = end
        if end == n - 1:
            break
    return windows


def _vector_maximal_windows(
    scores: NDArray[np.float64], epsilon: float, min_length: int
) -> List[Tuple[int, int]]:
    """Vectorized window scan, bit-identical to the scalar reference.

    For sorted finite scores the reachable end of every start is
    ``end[s] = max{e : scores[e] - scores[s] <= epsilon}``; IEEE
    subtraction is monotone, so ``end`` is non-decreasing and a window is
    maximal exactly where ``end`` strictly advances.  ``searchsorted``
    proposes the ends; the short correction loops below reconcile the
    additive cutoff with the exact subtractive predicate (they run zero
    iterations unless the two round differently).
    """
    n = scores.shape[0]
    starts = np.arange(n, dtype=np.intp)
    ends = np.searchsorted(scores, scores + epsilon, side="right") - 1
    np.maximum(ends, starts, out=ends)
    while True:
        probe = np.minimum(ends + 1, n - 1)
        grow = (ends + 1 < n) & (scores[probe] - scores[starts] <= epsilon)
        if not grow.any():
            break
        ends[grow] += 1
    while True:
        shrink = (ends > starts) & (scores[ends] - scores[starts] > epsilon)
        if not shrink.any():
            break
        ends[shrink] -= 1
    maximal = np.flatnonzero(np.diff(ends, prepend=-1) > 0)
    long_enough = ends[maximal] - maximal + 1 >= min_length
    return [
        (int(start), int(ends[start])) for start in maximal[long_enough]
    ]


def segmented_maximal_windows(
    scores: NDArray[np.float64],
    seg_ids: NDArray[np.intp],
    seg_ends: NDArray[np.intp],
    epsilon: float,
    min_length: int,
) -> Tuple[NDArray[np.intp], NDArray[np.intp]]:
    """Maximal windows over many concatenated sorted score runs at once.

    The miner scores every candidate extension of a search node in one
    flat array: ``scores`` holds the runs back to back (each run sorted
    non-descending, all values finite), ``seg_ids`` labels each element
    with its run (non-decreasing) and ``seg_ends`` gives each element the
    flat index of its run's last element.  The result is the union of
    :func:`maximal_coherent_windows` applied to every run separately —
    two parallel arrays of flat ``(start, end)`` indices, ascending —
    computed with a fixed number of whole-array operations instead of a
    Python-level pass per run.

    The binary-search proposal uses per-run offsets to keep the flat key
    monotone; exactness does not depend on it — the same grow/shrink
    fix-up loops as :func:`_vector_maximal_windows` re-check every
    boundary against the exact predicate on the original scores.
    """
    n = scores.shape[0]
    empty = np.empty(0, dtype=np.intp)
    if n == 0:
        return empty, empty
    starts = np.arange(n, dtype=np.intp)
    # Shift each run into its own disjoint key range so one global
    # searchsorted respects run boundaries.  Rounding here only degrades
    # the proposal; the fix-up loops below restore exactness.
    low = float(scores.min())
    span = float(scores.max()) - low + epsilon
    offset = 2.0 * span + 1.0
    shifted = (scores - low) + seg_ids * offset
    ends = np.searchsorted(shifted, shifted + epsilon, side="right") - 1
    np.minimum(ends, seg_ends, out=ends)
    np.maximum(ends, starts, out=ends)
    while True:
        probe = np.minimum(ends + 1, seg_ends)
        grow = (ends < seg_ends) & (scores[probe] - scores[starts] <= epsilon)
        if not grow.any():
            break
        ends[grow] += 1
    while True:
        shrink = (ends > starts) & (scores[ends] - scores[starts] > epsilon)
        if not shrink.any():
            break
        ends[shrink] -= 1
    # Within one run ends are non-decreasing, so a window is maximal
    # exactly where its end advances past the previous start's end; run
    # breaks reset the comparison like previous_end = -1 does in the
    # scalar scan.
    prev = np.empty_like(ends)
    prev[0] = -1
    prev[1:] = ends[:-1]
    if n > 1:
        prev[1:][seg_ids[1:] != seg_ids[:-1]] = -1
    keep = (ends > prev) & (ends - starts + 1 >= min_length)
    win_starts = np.flatnonzero(keep).astype(np.intp, copy=False)
    return win_starts, ends[win_starts]


def maximal_coherent_windows(
    sorted_scores: ArrayLike,
    epsilon: float,
    min_length: int,
    *,
    assume_sorted: bool = False,
) -> List[Tuple[int, int]]:
    """Maximal windows of width <= epsilon over ascending scores.

    Parameters
    ----------
    sorted_scores:
        H scores in non-descending order.
    epsilon:
        Maximum allowed spread ``max - min`` inside one window.
    min_length:
        Windows with fewer elements are dropped (pruning 4 / MinG).
    assume_sorted:
        Skip the sortedness re-validation (for callers that just sorted,
        like :func:`coherent_gene_windows`).

    Returns
    -------
    List of half-open-free ``(start, end)`` index pairs, *inclusive* on
    both sides, each maximal: extending the window in either direction
    would either exceed epsilon or leave the array.

    Notes
    -----
    The rightmost reachable end for each start is non-decreasing, and a
    window is maximal exactly when its end strictly advanced past the
    previous start's end.  Sorted finite scores take the vectorized scan;
    anything containing NaN/inf falls back to the scalar reference.
    """
    scores = np.asarray(sorted_scores, dtype=np.float64)
    n = scores.shape[0]
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if not assume_sorted and n and np.any(np.diff(scores) < 0):
        raise ValueError("scores must be sorted in non-descending order")
    if n == 0:
        return []
    if not np.isfinite(scores).all():
        return _scan_maximal_windows(scores, epsilon, min_length)
    return _vector_maximal_windows(scores, epsilon, min_length)


def coherent_gene_windows(
    genes: ArrayLike,
    scores: ArrayLike,
    epsilon: float,
    min_length: int,
) -> List[NDArray[np.intp]]:
    """Partition genes into maximal coherent subsets by H score.

    ``genes`` and ``scores`` are parallel arrays in any order; the result
    is a list of gene-index arrays, one per maximal window of at least
    ``min_length`` genes whose scores agree within ``epsilon``.  Genes
    with non-finite scores are discarded first (they arise only from
    degenerate baselines, which valid chain members never have).

    Sorting is stable on (score, gene id) so the output is deterministic.
    """
    ids = np.asarray(genes, dtype=np.intp)
    values = np.asarray(scores, dtype=np.float64)
    if ids.shape != values.shape:
        raise ValueError("genes and scores must be parallel arrays")
    finite = np.isfinite(values)
    if not finite.all():
        ids, values = ids[finite], values[finite]
    order = np.lexsort((ids, values))
    ids, values = ids[order], values[order]
    return [
        ids[start : end + 1]
        for start, end in maximal_coherent_windows(
            values, epsilon, min_length, assume_sorted=True
        )
    ]
