"""Sliding-window partition of genes by coherence score (pruning 4).

When the miner extends a chain by one condition, every candidate gene gets
an H score for the new step (Eq. 7).  Genes sorted by that score are then
partitioned into *maximal* intervals whose score spread is at most
``epsilon`` — each interval of at least ``MinG`` genes becomes one child
branch of the search.  Intervals may overlap, which is why reg-clusters
themselves may overlap.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = ["maximal_coherent_windows", "coherent_gene_windows"]


def maximal_coherent_windows(
    sorted_scores: ArrayLike, epsilon: float, min_length: int
) -> List[Tuple[int, int]]:
    """Maximal windows of width <= epsilon over ascending scores.

    Parameters
    ----------
    sorted_scores:
        H scores in non-descending order.
    epsilon:
        Maximum allowed spread ``max - min`` inside one window.
    min_length:
        Windows with fewer elements are dropped (pruning 4 / MinG).

    Returns
    -------
    List of half-open-free ``(start, end)`` index pairs, *inclusive* on
    both sides, each maximal: extending the window in either direction
    would either exceed epsilon or leave the array.

    Notes
    -----
    Runs in O(n) with two pointers: the rightmost reachable end for each
    start is non-decreasing, and a window is maximal exactly when its end
    strictly advanced past the previous start's end.
    """
    scores = np.asarray(sorted_scores, dtype=np.float64)
    n = scores.shape[0]
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if n and np.any(np.diff(scores) < 0):
        raise ValueError("scores must be sorted in non-descending order")

    windows: List[Tuple[int, int]] = []
    end = 0
    previous_end = -1
    for start in range(n):
        if end < start:
            end = start
        while end + 1 < n and scores[end + 1] - scores[start] <= epsilon:
            end += 1
        if end > previous_end:  # not contained in the previous window
            if end - start + 1 >= min_length:
                windows.append((start, end))
            previous_end = end
        if end == n - 1:
            break
    return windows


def coherent_gene_windows(
    genes: ArrayLike,
    scores: ArrayLike,
    epsilon: float,
    min_length: int,
) -> List[NDArray[np.intp]]:
    """Partition genes into maximal coherent subsets by H score.

    ``genes`` and ``scores`` are parallel arrays in any order; the result
    is a list of gene-index arrays, one per maximal window of at least
    ``min_length`` genes whose scores agree within ``epsilon``.  Genes
    with non-finite scores are discarded first (they arise only from
    degenerate baselines, which valid chain members never have).

    Sorting is stable on (score, gene id) so the output is deterministic.
    """
    ids = np.asarray(genes, dtype=np.intp)
    values = np.asarray(scores, dtype=np.float64)
    if ids.shape != values.shape:
        raise ValueError("genes and scores must be parallel arrays")
    finite = np.isfinite(values)
    ids, values = ids[finite], values[finite]
    order = np.lexsort((ids, values))
    ids, values = ids[order], values[order]
    return [
        ids[start : end + 1]
        for start, end in maximal_coherent_windows(values, epsilon, min_length)
    ]
