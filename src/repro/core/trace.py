"""Search tracing: reconstruct the paper's Figure 6 enumeration tree.

Figure 6 of the paper draws the depth-first enumeration of representative
regulation chains for the running example, labelling each pruned edge
with the pruning strategy that cut it.  :class:`SearchTrace` is an
optional observer the miner reports every search event to; its
:meth:`SearchTrace.render` produces the same tree as indented ASCII:

    (root)
      c2  [expanded]
        c2 c1  [pruned (1)]
        c2 c9  [pruned (1)]
        c2 c10  [expanded]
          c2 c10 c5  [pruned (4)]
          c2 c10 c8  [pruned (1)]
      c3  [pruned (3a)]
      c7  [expanded]
        ...

Tracing is off by default (zero overhead); pass a ``SearchTrace`` to
:class:`repro.core.miner.RegClusterMiner` to enable it.  Intended for
small matrices — the trace grows with the number of visited nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SearchTrace"]

Chain = Tuple[int, ...]

#: Human-readable labels per event kind, in display priority order.
_EVENT_LABELS = {
    "expanded": "expanded",
    "emitted": "VALIDATED reg-cluster",
    "pruned_min_genes": "pruned (1) MinG",
    "pruned_p_majority": "pruned (3a) p-members < MinG/2",
    "pruned_redundant": "pruned (3b) redundant",
    "pruned_reachability": "pruned (2) cannot reach MinC",
    "pruned_coherence": "pruned (4) no coherent window",
}


class SearchTrace:
    """Records miner search events, keyed by the enumerated chain."""

    def __init__(self) -> None:
        self._events: Dict[Chain, List[str]] = {}
        self._order: List[Chain] = []

    # ------------------------------------------------------------------
    # Recording (called by the miner)
    # ------------------------------------------------------------------

    def record(self, chain: Sequence[int], event: str) -> None:
        """Attach one event to a chain node."""
        if event not in _EVENT_LABELS:
            raise ValueError(f"unknown trace event {event!r}")
        key = tuple(int(c) for c in chain)
        if key not in self._events:
            self._events[key] = []
            self._order.append(key)
        if event not in self._events[key]:
            self._events[key].append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events(self, chain: Sequence[int]) -> Tuple[str, ...]:
        """Events recorded for one chain (empty if never visited)."""
        return tuple(self._events.get(tuple(int(c) for c in chain), ()))

    def chains(self) -> List[Chain]:
        """Every traced chain, in first-visit (depth-first) order."""
        return list(self._order)

    def n_nodes(self) -> int:
        return len(self._order)

    def pruned_chains(self, strategy: Optional[str] = None) -> List[Chain]:
        """Chains cut by a pruning (optionally one specific strategy)."""
        wanted = (
            [f"pruned_{strategy}"] if strategy is not None
            else [e for e in _EVENT_LABELS if e.startswith("pruned")]
        )
        return [
            chain
            for chain in self._order
            if any(e in self._events[chain] for e in wanted)
        ]

    def validated_chains(self) -> List[Chain]:
        """Chains emitted as reg-clusters."""
        return [
            chain for chain in self._order
            if "emitted" in self._events[chain]
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(
        self, condition_names: Optional[Sequence[str]] = None
    ) -> str:
        """The Figure 6 tree as indented ASCII.

        Nodes appear in depth-first visit order; each line shows the
        chain (condition names if provided) and its event labels.
        """
        def name(condition: int) -> str:
            if condition_names is not None:
                return condition_names[condition]
            return f"c{condition + 1}"

        lines = ["(root)"]
        for chain in self._order:
            labels = ", ".join(
                _EVENT_LABELS[e] for e in self._events[chain]
            )
            indent = "  " * len(chain)
            text = " ".join(name(c) for c in chain)
            lines.append(f"{indent}{text}  [{labels}]")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SearchTrace(nodes={self.n_nodes()}, "
            f"validated={len(self.validated_chains())})"
        )
