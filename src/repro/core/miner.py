"""The reg-cluster mining algorithm (paper Figure 5).

The miner performs a bi-directional depth-first enumeration of
*representative regulation chains* over the per-gene RWave^gamma models.
A search node carries the chain enumerated so far (``C.Y``), the genes
complying with it (p-members, ``C.pX``) and the genes complying with its
inversion (n-members, ``C.nX``).  Extending a node appends one candidate
condition, re-splits the members, scores every surviving gene with the
step's H value (Eq. 7) and branches on each maximal coherent gene window.

Pruning strategies (numbers follow the paper):

1. **MinG** — members only shrink along a branch, so a node with fewer
   than ``MinG`` members is abandoned.
2. **MinC reachability** — a gene whose longest remaining chain (from the
   RWave max-chain tables) cannot reach ``MinC`` is dropped.
3. **Redundancy** — (a) a node whose p-members fall below ``MinG / 2``
   can never yield a representative chain (the inverted orientation will);
   (b) a node that re-derives an already-emitted cluster roots a
   redundant subtree.
4. **Coherence** — a step with no coherent gene window of ``MinG`` genes
   ends the branch.

Prunings 1-3 are lossless (toggling them changes runtime, never output —
the ablation benchmark verifies this); pruning 4 *is* the coherence
constraint of the model and cannot be disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
from numpy.typing import NDArray

from repro.core.chain import is_representative
from repro.core.cluster import RegCluster
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.core.trace import SearchTrace
from repro.core.window import coherent_gene_windows
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "PruningConfig",
    "SearchStatistics",
    "MiningResult",
    "MiningCancelled",
    "ProgressCallback",
    "RegClusterMiner",
    "mine_reg_clusters",
]

#: Observer invoked as ``callback(event, nodes_expanded)``; ``event`` uses
#: the :class:`repro.core.trace.SearchTrace` taxonomy ("expanded",
#: "emitted", ...).
ProgressCallback = Callable[[str, int], None]


class MiningCancelled(RuntimeError):
    """Raised by :meth:`RegClusterMiner.mine` when ``should_stop`` fires.

    Cooperative cancellation: the check runs once per expanded search
    node, so a long-running search stops within one node expansion of the
    stop signal.  The partial clusters found so far are attached as
    :attr:`partial_clusters` for diagnostics.
    """

    def __init__(
        self, message: str, partial_clusters: Optional[List[RegCluster]] = None
    ) -> None:
        super().__init__(message)
        self.partial_clusters: List[RegCluster] = (
            partial_clusters if partial_clusters is not None else []
        )


@dataclass(frozen=True)
class PruningConfig:
    """Which lossless prunings the search applies (ablation knobs).

    All default to on.  Pruning 4 (coherence windows) is part of the
    cluster definition and therefore has no switch.
    """

    min_genes: bool = True  #: pruning (1)
    reachability: bool = True  #: pruning (2)
    p_majority: bool = True  #: pruning (3a)
    redundancy: bool = True  #: pruning (3b)

    @classmethod
    def none(cls) -> "PruningConfig":
        """All lossless prunings off (slowest, same output)."""
        return cls(False, False, False, False)


@dataclass
class SearchStatistics:
    """Counters describing one mining run (the ablation benches' payload)."""

    nodes_expanded: int = 0
    candidates_examined: int = 0
    pruned_min_genes: int = 0
    pruned_p_majority: int = 0
    pruned_redundant: int = 0
    genes_pruned_reachability: int = 0
    coherence_rejections: int = 0
    clusters_emitted: int = 0
    max_depth: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes_expanded": self.nodes_expanded,
            "candidates_examined": self.candidates_examined,
            "pruned_min_genes": self.pruned_min_genes,
            "pruned_p_majority": self.pruned_p_majority,
            "pruned_redundant": self.pruned_redundant,
            "genes_pruned_reachability": self.genes_pruned_reachability,
            "coherence_rejections": self.coherence_rejections,
            "clusters_emitted": self.clusters_emitted,
            "max_depth": self.max_depth,
        }


@dataclass
class MiningResult:
    """Clusters plus the statistics of the search that produced them."""

    clusters: List[RegCluster]
    statistics: SearchStatistics
    parameters: MiningParameters

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[RegCluster]:
        return iter(self.clusters)

    def __getitem__(self, index: int) -> RegCluster:
        return self.clusters[index]


class _SearchLimitReached(Exception):
    """Internal signal: max_clusters emitted, unwind the recursion."""


class RegClusterMiner:
    """Mines every validated reg-cluster of a matrix (Definition 3.2).

    Parameters
    ----------
    matrix:
        The expression data.
    params:
        MinG / MinC / gamma / epsilon bundle.
    prunings:
        Lossless-pruning switches, defaults to all on.

    Examples
    --------
    >>> from repro.datasets import load_running_example
    >>> from repro.core import MiningParameters
    >>> miner = RegClusterMiner(
    ...     load_running_example(),
    ...     MiningParameters(min_genes=3, min_conditions=5,
    ...                      gamma=0.15, epsilon=0.1),
    ... )
    >>> result = miner.mine()
    >>> [c + 1 for c in result.clusters[0].chain]
    [7, 9, 5, 1, 3]
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        params: MiningParameters,
        *,
        prunings: Optional[PruningConfig] = None,
        thresholds: Optional[NDArray[np.float64]] = None,
        tracer: Optional[SearchTrace] = None,
        index: Optional[RWaveIndex] = None,
        progress_callback: Optional[ProgressCallback] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.matrix = matrix
        self.params = params
        self.prunings = prunings if prunings is not None else PruningConfig()
        #: optional search observer reconstructing the Figure 6 tree
        self.tracer = tracer
        #: optional per-node observer ``(event, nodes_expanded)``; ``None``
        #: (the default) adds zero overhead to the search.
        self.progress_callback = progress_callback
        #: optional cooperative cancellation probe, polled once per
        #: expanded node; ``None`` (the default) adds zero overhead.
        self.should_stop = should_stop
        if params.min_conditions > matrix.n_conditions:
            raise ValueError(
                f"min_conditions={params.min_conditions} exceeds the "
                f"matrix's {matrix.n_conditions} conditions"
            )
        if index is not None:
            # A prebuilt index (e.g. from repro.service.cache) skips the
            # most expensive part of construction; it must describe the
            # same data at the same gamma.
            if index.gamma != params.gamma:
                raise ValueError(
                    f"prebuilt index was built at gamma={index.gamma}, "
                    f"parameters ask for gamma={params.gamma}"
                )
            if index.matrix is not matrix and index.matrix != matrix:
                raise ValueError(
                    "prebuilt index describes a different expression matrix"
                )
            if thresholds is not None and not np.array_equal(
                np.asarray(thresholds, dtype=np.float64), index.thresholds
            ):
                raise ValueError(
                    "prebuilt index thresholds disagree with the "
                    "explicitly supplied thresholds"
                )
            self.index = index
        else:
            # `thresholds` overrides the Eq. 4 default, supporting the
            # alternative strategies of repro.core.thresholds.
            self.index = RWaveIndex(matrix, params.gamma, thresholds=thresholds)
        self._values = matrix.values
        self._thresholds = self.index.thresholds

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def mine(
        self, *, start_conditions: Optional[Sequence[int]] = None
    ) -> MiningResult:
        """Run the depth-first search and return every reg-cluster.

        Parameters
        ----------
        start_conditions:
            Restrict the top-level enumeration to these first conditions
            (the chain prefixes of Fig. 5).  ``None`` enumerates every
            condition — the full single-process search.  This is the
            sharding seam used by :mod:`repro.service.executor`: chains
            starting from different conditions are disjoint, so mining
            each start separately and concatenating in start order
            reproduces the full search exactly.

        Raises
        ------
        MiningCancelled
            If the ``should_stop`` probe returns true mid-search.
        """
        self._stats = SearchStatistics()
        self._emitted: Set[Tuple[Tuple[int, ...], FrozenSet[int]]] = set()
        self._clusters: List[RegCluster] = []

        if start_conditions is None:
            starts: Sequence[int] = range(self.matrix.n_conditions)
        else:
            starts = [int(s) for s in start_conditions]
            for start in starts:
                if not 0 <= start < self.matrix.n_conditions:
                    raise ValueError(
                        f"start condition {start} out of range for a matrix "
                        f"with {self.matrix.n_conditions} conditions"
                    )

        all_genes = np.arange(self.matrix.n_genes, dtype=np.intp)
        min_c = self.params.min_conditions
        try:
            for start in starts:
                if self.prunings.reachability:
                    p_mask = self.index.max_up[:, start] >= min_c
                    n_mask = self.index.max_down[:, start] >= min_c
                    self._stats.genes_pruned_reachability += int(
                        (~p_mask).sum() + (~n_mask).sum()
                    )
                    p_members = all_genes[p_mask]
                    n_members = all_genes[n_mask]
                else:
                    p_members = all_genes
                    n_members = all_genes
                self._expand((start,), p_members, n_members)
        except _SearchLimitReached:
            pass
        return MiningResult(
            clusters=list(self._clusters),
            statistics=self._stats,
            parameters=self.params,
        )

    # ------------------------------------------------------------------
    # Depth-first search (subroutine MineC^2 of Figure 5)
    # ------------------------------------------------------------------

    def _expand(
        self,
        chain: Tuple[int, ...],
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> None:
        stats = self._stats
        params = self.params
        depth = len(chain)
        stats.nodes_expanded += 1
        stats.max_depth = max(stats.max_depth, depth)
        if self.should_stop is not None and self.should_stop():
            raise MiningCancelled(
                f"search cancelled after {stats.nodes_expanded} nodes",
                partial_clusters=list(self._clusters),
            )
        if self.progress_callback is not None:
            self.progress_callback("expanded", stats.nodes_expanded)

        if depth >= 2:
            total = p_members.shape[0] + n_members.shape[0]
        else:
            # Orientation is undetermined for a single condition; the
            # member sets may overlap, count distinct genes.
            total = int(np.union1d(p_members, n_members).shape[0])

        # Pruning (1): members only shrink along a branch.
        if total < params.min_genes:
            if self.prunings.min_genes:
                stats.pruned_min_genes += 1
                if self.tracer is not None and depth:
                    self.tracer.record(chain, "pruned_min_genes")
                return
        # Pruning (3a): p-members below MinG/2 can never be a majority in
        # any valid descendant.
        if self.prunings.p_majority and 2 * p_members.shape[0] < params.min_genes:
            stats.pruned_p_majority += 1
            if self.tracer is not None and depth:
                self.tracer.record(chain, "pruned_p_majority")
            return
        if self.tracer is not None and depth:
            self.tracer.record(chain, "expanded")

        # Emit (step 3 of Figure 5).
        if (
            depth >= params.min_conditions
            and total >= params.min_genes
            and is_representative(chain, p_members.shape[0], n_members.shape[0])
        ):
            key = (chain, frozenset(map(int, np.concatenate((p_members, n_members)))))
            if key in self._emitted:
                if self.prunings.redundancy:
                    stats.pruned_redundant += 1
                    if self.tracer is not None:
                        self.tracer.record(chain, "pruned_redundant")
                    return
            else:
                self._emitted.add(key)
                if self.tracer is not None:
                    self.tracer.record(chain, "emitted")
                self._clusters.append(
                    RegCluster(
                        chain=chain,
                        p_members=tuple(map(int, p_members)),
                        n_members=tuple(map(int, n_members)),
                    )
                )
                stats.clusters_emitted += 1
                if self.progress_callback is not None:
                    self.progress_callback("emitted", stats.nodes_expanded)
                if (
                    params.max_clusters is not None
                    and stats.clusters_emitted >= params.max_clusters
                ):
                    raise _SearchLimitReached

        if depth >= self.matrix.n_conditions:
            return

        for candidate, child_p, child_n in self._candidates(
            chain, p_members, n_members
        ):
            stats.candidates_examined += 1
            extended = chain + (candidate,)
            if len(extended) == 2:
                # The new pair *is* the baseline: every member scores
                # H = 1, so there is exactly one (trivially coherent)
                # window.
                if child_p.shape[0] + child_n.shape[0] > 0:
                    self._expand(extended, child_p, child_n)
                continue

            genes = np.concatenate((child_p, child_n))
            if genes.shape[0] == 0:
                continue
            scores = self._step_scores(genes, chain, candidate)
            windows = coherent_gene_windows(
                genes, scores, params.epsilon, params.min_genes
            )
            if not windows:
                stats.coherence_rejections += 1
                if self.tracer is not None:
                    self.tracer.record(extended, "pruned_coherence")
                continue
            for window in windows:
                in_p = np.isin(window, child_p, assume_unique=True)
                self._expand(extended, window[in_p], window[~in_p])

    # ------------------------------------------------------------------
    # Candidate generation (step 4-5 of Figure 5)
    # ------------------------------------------------------------------

    def _candidates(
        self,
        chain: Tuple[int, ...],
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> Iterator[Tuple[int, NDArray[np.intp], NDArray[np.intp]]]:
        """Yield ``(condition, child_p, child_n)`` extensions of a chain.

        Candidates are gathered by scanning the RWave models of the
        p-members (prunings 2 and 3a make scanning n-members
        unnecessary); each candidate condition must be a regulation
        successor of the chain's last condition for the p-members and a
        regulation predecessor for the n-members.
        """
        params = self.params
        values = self._values
        thresholds = self._thresholds
        last = chain[-1]
        depth = len(chain)
        need = params.min_conditions - depth  # chain still to grow, incl. cand

        p_idx = p_members
        n_idx = n_members
        up_ok = (
            values[p_idx] - values[p_idx, last][:, None]
            > thresholds[p_idx][:, None]
        )
        down_ok = (
            values[n_idx, last][:, None] - values[n_idx]
            > thresholds[n_idx][:, None]
        )
        if self.prunings.reachability and need > 1:
            up_ok &= self.index.max_up[p_idx] >= need
            down_ok &= self.index.max_down[n_idx] >= need

        in_chain = np.zeros(self.matrix.n_conditions, dtype=bool)
        in_chain[list(chain)] = True
        support = up_ok.sum(axis=0)
        support[in_chain] = 0

        min_support = params.min_p_members if self.prunings.p_majority else 1
        if self.tracer is not None:
            # Surface the silently-filtered candidate edges so the
            # rendered tree matches Figure 6's annotated prunings.
            for condition in np.flatnonzero(
                (support < min_support) & ~in_chain
            ):
                event = (
                    "pruned_reachability"
                    if support[condition] == 0
                    else "pruned_p_majority"
                )
                self.tracer.record(chain + (int(condition),), event)
        for condition in np.flatnonzero(support >= min_support):
            condition = int(condition)
            yield (
                condition,
                p_idx[up_ok[:, condition]],
                n_idx[down_ok[:, condition]],
            )

    # ------------------------------------------------------------------
    # Coherence scores for one extension step
    # ------------------------------------------------------------------

    def _step_scores(
        self,
        genes: NDArray[np.intp],
        chain: Tuple[int, ...],
        candidate: int,
    ) -> NDArray[np.float64]:
        """H(j, c_k1, c_k2, c_km, candidate) for every gene (Eq. 7)."""
        values = self._values
        c1, c2, last = chain[0], chain[1], chain[-1]
        baseline = values[genes, c2] - values[genes, c1]
        step = values[genes, candidate] - values[genes, last]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.asarray(step / baseline, dtype=np.float64)


def mine_reg_clusters(
    matrix: ExpressionMatrix,
    *,
    min_genes: int,
    min_conditions: int,
    gamma: float,
    epsilon: float,
    max_clusters: Optional[int] = None,
    prunings: Optional[PruningConfig] = None,
    thresholds: Optional[NDArray[np.float64]] = None,
) -> MiningResult:
    """One-call convenience wrapper around :class:`RegClusterMiner`.

    >>> from repro.datasets import load_running_example
    >>> result = mine_reg_clusters(load_running_example(), min_genes=3,
    ...                            min_conditions=5, gamma=0.15, epsilon=0.1)
    >>> len(result)
    1
    """
    params = MiningParameters(
        min_genes=min_genes,
        min_conditions=min_conditions,
        gamma=gamma,
        epsilon=epsilon,
        max_clusters=max_clusters,
    )
    miner = RegClusterMiner(
        matrix, params, prunings=prunings, thresholds=thresholds
    )
    return miner.mine()

