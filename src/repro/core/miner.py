"""The reg-cluster mining algorithm (paper Figure 5).

The miner performs a bi-directional depth-first enumeration of
*representative regulation chains* over the per-gene RWave^gamma models.
A search node carries the chain enumerated so far (``C.Y``), the genes
complying with it (p-members, ``C.pX``) and the genes complying with its
inversion (n-members, ``C.nX``).  Extending a node appends one candidate
condition, re-splits the members, scores every surviving gene with the
step's H value (Eq. 7) and branches on each maximal coherent gene window.

Pruning strategies (numbers follow the paper):

1. **MinG** — members only shrink along a branch, so a node with fewer
   than ``MinG`` members is abandoned.
2. **MinC reachability** — a gene whose longest remaining chain (from the
   RWave max-chain tables) cannot reach ``MinC`` is dropped.
3. **Redundancy** — (a) a node whose p-members fall below ``MinG / 2``
   can never yield a representative chain (the inverted orientation will);
   (b) a node that re-derives an already-emitted cluster roots a
   redundant subtree.
4. **Coherence** — a step with no coherent gene window of ``MinG`` genes
   ends the branch.

Prunings 1-3 are lossless (toggling them changes runtime, never output —
the ablation benchmark verifies this); pruning 4 *is* the coherence
constraint of the model and cannot be disabled.

Hot-path layout
---------------
The per-node work is backed by the precomputed regulation-pair kernel
(:mod:`repro.core.kernels`): candidate generation is a masked lookup into
a dense kernel slice instead of an O(|members| x C) float
subtract/compare, gene-membership splits go through one reusable boolean
scratch mask over the full gene axis (no per-node ``np.isin`` /
``np.union1d`` allocations), and the Eq. 7 baseline ``d_c2 - d_c1`` is
computed once per depth-2 branch root instead of at every extension.
``use_kernel=False`` selects the legacy direct-evaluation path — kept
both as the equivalence oracle for the kernel (the two are proven
bit-identical in ``tests/core/test_miner_kernel_equivalence.py``) and as
the measured baseline of ``BENCH_baseline.json``.  Each search phase
(candidate generation / window partition / emit) is timed into
:class:`PhaseTimers`, surfaced by ``reg-cluster mine --stats``, the
service job records and the benchmark-regression suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
from numpy.typing import NDArray

from repro.core.chain import is_representative
from repro.core.cluster import RegCluster
from repro.core.kernels import RegulationKernel
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.core.trace import SearchTrace
from repro.core.window import coherent_gene_windows, segmented_maximal_windows
from repro.matrix.expression import ExpressionMatrix
from repro.obs.trace import Tracer

__all__ = [
    "PruningConfig",
    "PhaseTimers",
    "SearchStatistics",
    "MiningResult",
    "MiningCancelled",
    "MiningTimeout",
    "ProgressCallback",
    "RegClusterMiner",
    "mine_reg_clusters",
]

#: Observer invoked as ``callback(event, nodes_expanded)``; ``event`` uses
#: the :class:`repro.core.trace.SearchTrace` taxonomy ("expanded",
#: "emitted", ...).
ProgressCallback = Callable[[str, int], None]


class MiningCancelled(RuntimeError):
    """Raised by :meth:`RegClusterMiner.mine` when ``should_stop`` fires.

    Cooperative cancellation: the check runs once per expanded search
    node, so a long-running search stops within one node expansion of the
    stop signal.  The partial clusters found so far are attached as
    :attr:`partial_clusters` for diagnostics.
    """

    def __init__(
        self, message: str, partial_clusters: Optional[List[RegCluster]] = None
    ) -> None:
        super().__init__(message)
        self.partial_clusters: List[RegCluster] = (
            partial_clusters if partial_clusters is not None else []
        )


class MiningTimeout(MiningCancelled):
    """A cancellation triggered by a wall-clock deadline, not a caller.

    Raised by deadline-aware drivers (``repro.service.executor``) when a
    per-job timeout fires the cooperative ``should_stop`` probe.  A
    subclass of :class:`MiningCancelled` so cancellation plumbing (and
    the attached :attr:`~MiningCancelled.partial_clusters`) is shared,
    while callers that must treat timeouts differently — the service
    marks them ``failed``, not ``cancelled`` — can catch it first.
    """


@dataclass(frozen=True)
class PruningConfig:
    """Which lossless prunings the search applies (ablation knobs).

    All default to on.  Pruning 4 (coherence windows) is part of the
    cluster definition and therefore has no switch.
    """

    min_genes: bool = True  #: pruning (1)
    reachability: bool = True  #: pruning (2)
    p_majority: bool = True  #: pruning (3a)
    redundancy: bool = True  #: pruning (3b)

    @classmethod
    def none(cls) -> "PruningConfig":
        """All lossless prunings off (slowest, same output)."""
        return cls(False, False, False, False)


@dataclass
class PhaseTimers:
    """Wall-clock seconds spent in each search phase.

    Kept separate from the integer counters of
    :class:`SearchStatistics` so result payloads (which must be
    bit-identical across equivalent runs) can carry the counters without
    the non-deterministic timings.
    """

    candidates: float = 0.0  #: candidate generation (step 4-5 of Fig. 5)
    windows: float = 0.0  #: Eq. 7 scoring + coherent window partition
    emit: float = 0.0  #: representativeness / redundancy check + emit

    def as_dict(self) -> Dict[str, float]:
        return {
            "candidates": self.candidates,
            "windows": self.windows,
            "emit": self.emit,
        }

    def prefixed(self) -> Dict[str, float]:
        """The timers under ``time_``-prefixed keys (shard transport)."""
        return {f"time_{key}": value for key, value in self.as_dict().items()}

    def add(self, other: "PhaseTimers") -> None:
        """Accumulate another run's timers into this one."""
        self.candidates += other.candidates
        self.windows += other.windows
        self.emit += other.emit


@dataclass
class SearchStatistics:
    """Counters describing one mining run (the ablation benches' payload)."""

    nodes_expanded: int = 0
    candidates_examined: int = 0
    pruned_min_genes: int = 0
    pruned_p_majority: int = 0
    pruned_redundant: int = 0
    genes_pruned_reachability: int = 0
    coherence_rejections: int = 0
    clusters_emitted: int = 0
    max_depth: int = 0
    #: genes whose Eq. 7 score came out non-finite (degenerate baseline
    #: ``d_c2 - d_c1``) and were dropped before the window partition.
    degenerate_genes_dropped: int = 0
    #: per-phase wall-clock timings (not part of :meth:`as_dict`).
    timers: PhaseTimers = field(default_factory=PhaseTimers)

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes_expanded": self.nodes_expanded,
            "candidates_examined": self.candidates_examined,
            "pruned_min_genes": self.pruned_min_genes,
            "pruned_p_majority": self.pruned_p_majority,
            "pruned_redundant": self.pruned_redundant,
            "genes_pruned_reachability": self.genes_pruned_reachability,
            "coherence_rejections": self.coherence_rejections,
            "clusters_emitted": self.clusters_emitted,
            "max_depth": self.max_depth,
            "degenerate_genes_dropped": self.degenerate_genes_dropped,
        }


@dataclass
class MiningResult:
    """Clusters plus the statistics of the search that produced them."""

    clusters: List[RegCluster]
    statistics: SearchStatistics
    parameters: MiningParameters

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[RegCluster]:
        return iter(self.clusters)

    def __getitem__(self, index: int) -> RegCluster:
        return self.clusters[index]


class _SearchLimitReached(Exception):
    """Internal signal: max_clusters emitted, unwind the recursion."""


#: Histogram resolution of the coherence prefilter in
#: :meth:`RegClusterMiner._extend_batched`.  Scores beyond
#: ``min + _BUCKET_CAP * epsilon`` share the top bucket — merging buckets
#: only relaxes the bound, so clipping never drops a viable candidate.
#: Kept small: the histograms are rebuilt at every search node, and a
#: coarse top bucket merely lets a few extra candidates through to the
#: exact scan.
_BUCKET_CAP = 255


class RegClusterMiner:
    """Mines every validated reg-cluster of a matrix (Definition 3.2).

    Parameters
    ----------
    matrix:
        The expression data.
    params:
        MinG / MinC / gamma / epsilon bundle.
    prunings:
        Lossless-pruning switches, defaults to all on.
    use_kernel:
        Back candidate generation by the precomputed regulation-pair
        kernel (default).  ``False`` re-derives Eq. 3 from raw values at
        every node — the legacy hot path, kept as the measured baseline
        and equivalence oracle; both paths emit bit-identical results.

    Examples
    --------
    >>> from repro.datasets import load_running_example
    >>> from repro.core import MiningParameters
    >>> miner = RegClusterMiner(
    ...     load_running_example(),
    ...     MiningParameters(min_genes=3, min_conditions=5,
    ...                      gamma=0.15, epsilon=0.1),
    ... )
    >>> result = miner.mine()
    >>> [c + 1 for c in result.clusters[0].chain]
    [7, 9, 5, 1, 3]
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        params: MiningParameters,
        *,
        prunings: Optional[PruningConfig] = None,
        thresholds: Optional[NDArray[np.float64]] = None,
        tracer: Optional[SearchTrace] = None,
        index: Optional[RWaveIndex] = None,
        progress_callback: Optional[ProgressCallback] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        use_kernel: bool = True,
        span_tracer: Optional[Tracer] = None,
    ) -> None:
        self.matrix = matrix
        self.params = params
        self.prunings = prunings if prunings is not None else PruningConfig()
        #: optional search observer reconstructing the Figure 6 tree
        self.tracer = tracer
        #: optional :mod:`repro.obs` tracer wrapping each :meth:`mine`
        #: call in one span (never per-node; ``None`` adds a single
        #: ``is None`` check per call).  Distinct from ``tracer``, the
        #: Figure 6 search-tree observer.
        self.span_tracer = span_tracer
        #: optional per-node observer ``(event, nodes_expanded)``; ``None``
        #: (the default) adds zero overhead to the search.
        self.progress_callback = progress_callback
        #: optional cooperative cancellation probe, polled once per
        #: expanded node; ``None`` (the default) adds zero overhead.
        self.should_stop = should_stop
        if params.min_conditions > matrix.n_conditions:
            raise ValueError(
                f"min_conditions={params.min_conditions} exceeds the "
                f"matrix's {matrix.n_conditions} conditions"
            )
        if index is not None:
            # A prebuilt index (e.g. from repro.service.cache) skips the
            # most expensive part of construction; it must describe the
            # same data at the same gamma.
            if index.gamma != params.gamma:
                raise ValueError(
                    f"prebuilt index was built at gamma={index.gamma}, "
                    f"parameters ask for gamma={params.gamma}"
                )
            if index.matrix is not matrix and index.matrix != matrix:
                raise ValueError(
                    "prebuilt index describes a different expression matrix"
                )
            if thresholds is not None and not np.array_equal(
                np.asarray(thresholds, dtype=np.float64), index.thresholds
            ):
                raise ValueError(
                    "prebuilt index thresholds disagree with the "
                    "explicitly supplied thresholds"
                )
            self.index = index
        else:
            # `thresholds` overrides the Eq. 4 default, supporting the
            # alternative strategies of repro.core.thresholds.
            self.index = RWaveIndex(matrix, params.gamma, thresholds=thresholds)
        self._values = matrix.values
        self._thresholds = self.index.thresholds
        #: the packed Eq. 3 relation (built lazily on the index, shared
        #: by every miner reusing it), or ``None`` on the legacy path.
        self._kernel: Optional[RegulationKernel] = (
            self.index.kernel if use_kernel else None
        )
        #: reusable boolean scratch over the full gene axis — membership
        #: splits and distinct-gene counts without per-node allocation.
        self._scratch: NDArray[np.bool_] = np.zeros(
            matrix.n_genes, dtype=np.bool_
        )
        #: Eq. 7 denominator d_c2 - d_c1 for every gene, refreshed at
        #: each depth-2 branch root (valid for the whole subtree).
        self._baseline: NDArray[np.float64] = np.zeros(
            matrix.n_genes, dtype=np.float64
        )
        #: pruning (2) masks ``max_up/max_down >= need`` keyed by the
        #: remaining chain length, built once per distinct ``need``.
        self._reach_cache: Dict[
            int, Tuple[NDArray[np.bool_], NDArray[np.bool_]]
        ] = {}

    @property
    def uses_kernel(self) -> bool:
        """Whether candidate generation runs on the packed kernel."""
        return self._kernel is not None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def mine(
        self, *, start_conditions: Optional[Sequence[int]] = None
    ) -> MiningResult:
        """Run the depth-first search and return every reg-cluster.

        Parameters
        ----------
        start_conditions:
            Restrict the top-level enumeration to these first conditions
            (the chain prefixes of Fig. 5).  ``None`` enumerates every
            condition — the full single-process search.  This is the
            sharding seam used by :mod:`repro.service.executor`: chains
            starting from different conditions are disjoint, so mining
            each start separately and concatenating in start order
            reproduces the full search exactly.

        Raises
        ------
        MiningCancelled
            If the ``should_stop`` probe returns true mid-search.
        """
        if self.span_tracer is None:
            return self._run_search(start_conditions)
        with self.span_tracer.span(
            "miner.mine",
            attributes={
                "n_genes": self.matrix.n_genes,
                "n_conditions": self.matrix.n_conditions,
                "n_starts": (
                    self.matrix.n_conditions
                    if start_conditions is None else len(start_conditions)
                ),
            },
        ) as span:
            result = self._run_search(start_conditions)
            span.set_attributes(
                {
                    "nodes_expanded": result.statistics.nodes_expanded,
                    "clusters_emitted": result.statistics.clusters_emitted,
                }
            )
            span.set_attributes(result.statistics.timers.prefixed())
            return result

    def _run_search(
        self, start_conditions: Optional[Sequence[int]]
    ) -> MiningResult:
        self._stats = SearchStatistics()
        self._emitted: Set[Tuple[Tuple[int, ...], FrozenSet[int]]] = set()
        self._clusters: List[RegCluster] = []

        if start_conditions is None:
            starts: Sequence[int] = range(self.matrix.n_conditions)
        else:
            starts = [int(s) for s in start_conditions]
            for start in starts:
                if not 0 <= start < self.matrix.n_conditions:
                    raise ValueError(
                        f"start condition {start} out of range for a matrix "
                        f"with {self.matrix.n_conditions} conditions"
                    )

        all_genes = np.arange(self.matrix.n_genes, dtype=np.intp)
        min_c = self.params.min_conditions
        try:
            # Degenerate Eq. 7 baselines divide to inf/NaN (a subnormal
            # baseline can also overflow the quotient); those scores are
            # dropped (and counted) explicitly, so the warnings are
            # silenced once here instead of per extension step.
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                for start in starts:
                    if self.prunings.reachability:
                        p_mask = self.index.max_up[:, start] >= min_c
                        n_mask = self.index.max_down[:, start] >= min_c
                        self._stats.genes_pruned_reachability += int(
                            (~p_mask).sum() + (~n_mask).sum()
                        )
                        p_members = all_genes[p_mask]
                        n_members = all_genes[n_mask]
                    else:
                        p_members = all_genes
                        n_members = all_genes
                    self._expand((start,), p_members, n_members)
        except _SearchLimitReached:
            pass
        return MiningResult(
            clusters=list(self._clusters),
            statistics=self._stats,
            parameters=self.params,
        )

    # ------------------------------------------------------------------
    # Depth-first search (subroutine MineC^2 of Figure 5)
    # ------------------------------------------------------------------

    def _distinct_members(
        self,
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> int:
        """Distinct genes across both orientations (depth-1 totals).

        A mask-OR popcount over the reusable gene scratch — replaces the
        ``np.union1d`` (sort + allocate) the root nodes used to pay.
        """
        scratch = self._scratch
        scratch[p_members] = True
        scratch[n_members] = True
        total = int(np.count_nonzero(scratch))
        scratch[p_members] = False
        scratch[n_members] = False
        return total

    def _expand(
        self,
        chain: Tuple[int, ...],
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> None:
        stats = self._stats
        timers = stats.timers
        params = self.params
        depth = len(chain)
        stats.nodes_expanded += 1
        stats.max_depth = max(stats.max_depth, depth)
        if self.should_stop is not None and self.should_stop():
            raise MiningCancelled(
                f"search cancelled after {stats.nodes_expanded} nodes",
                partial_clusters=list(self._clusters),
            )
        if self.progress_callback is not None:
            self.progress_callback("expanded", stats.nodes_expanded)

        if depth >= 2:
            total = p_members.shape[0] + n_members.shape[0]
        else:
            # Orientation is undetermined for a single condition; the
            # member sets may overlap, count distinct genes.
            total = self._distinct_members(p_members, n_members)

        # Pruning (1): members only shrink along a branch.
        if total < params.min_genes:
            if self.prunings.min_genes:
                stats.pruned_min_genes += 1
                if self.tracer is not None and depth:
                    self.tracer.record(chain, "pruned_min_genes")
                return
        # Pruning (3a): p-members below MinG/2 can never be a majority in
        # any valid descendant.
        if self.prunings.p_majority and 2 * p_members.shape[0] < params.min_genes:
            stats.pruned_p_majority += 1
            if self.tracer is not None and depth:
                self.tracer.record(chain, "pruned_p_majority")
            return
        if self.tracer is not None and depth:
            self.tracer.record(chain, "expanded")

        # Emit (step 3 of Figure 5).
        if (
            depth >= params.min_conditions
            and total >= params.min_genes
            and is_representative(chain, p_members.shape[0], n_members.shape[0])
        ):
            emit_started = perf_counter()
            key = (chain, frozenset(map(int, np.concatenate((p_members, n_members)))))
            if key in self._emitted:
                if self.prunings.redundancy:
                    stats.pruned_redundant += 1
                    if self.tracer is not None:
                        self.tracer.record(chain, "pruned_redundant")
                    timers.emit += perf_counter() - emit_started
                    return
                timers.emit += perf_counter() - emit_started
            else:
                self._emitted.add(key)
                if self.tracer is not None:
                    self.tracer.record(chain, "emitted")
                self._clusters.append(
                    RegCluster(
                        chain=chain,
                        p_members=tuple(map(int, p_members)),
                        n_members=tuple(map(int, n_members)),
                    )
                )
                stats.clusters_emitted += 1
                timers.emit += perf_counter() - emit_started
                if self.progress_callback is not None:
                    self.progress_callback("emitted", stats.nodes_expanded)
                if (
                    params.max_clusters is not None
                    and stats.clusters_emitted >= params.max_clusters
                ):
                    raise _SearchLimitReached

        if depth >= self.matrix.n_conditions:
            return

        if depth == 2:
            # Eq. 7 baseline d_c2 - d_c1 for the whole branch: every
            # descendant of this node shares (c1, c2), so the per-gene
            # denominators are computed once here and gathered per step.
            np.subtract(
                self._values[:, chain[1]],
                self._values[:, chain[0]],
                out=self._baseline,
            )

        if self._kernel is not None and depth >= 2:
            # Kernel hot path: score every candidate extension of this
            # node in one flat vectorized pass instead of per candidate.
            self._extend_batched(chain, p_members, n_members)
            return

        phase_started = perf_counter()
        candidates = list(self._candidates(chain, p_members, n_members))
        timers.candidates += perf_counter() - phase_started

        for candidate, child_p, child_n in candidates:
            stats.candidates_examined += 1
            extended = chain + (candidate,)
            if len(extended) == 2:
                # The new pair *is* the baseline: every member scores
                # H = 1, so there is exactly one (trivially coherent)
                # window.
                if child_p.shape[0] + child_n.shape[0] > 0:
                    self._expand(extended, child_p, child_n)
                continue

            phase_started = perf_counter()
            genes = np.concatenate((child_p, child_n))
            if genes.shape[0] == 0:
                timers.windows += perf_counter() - phase_started
                continue
            scores = self._step_scores(genes, chain, candidate)
            finite = np.isfinite(scores)
            if not finite.all():
                # Degenerate baseline (possible only for genes that never
                # complied with the chain's first step — defensive: valid
                # members always have |d_c2 - d_c1| > gamma_g >= 0).
                stats.degenerate_genes_dropped += int(
                    genes.shape[0] - np.count_nonzero(finite)
                )
                genes = genes[finite]
                scores = scores[finite]
            windows = coherent_gene_windows(
                genes, scores, params.epsilon, params.min_genes
            )
            if not windows:
                stats.coherence_rejections += 1
                timers.windows += perf_counter() - phase_started
                if self.tracer is not None:
                    self.tracer.record(extended, "pruned_coherence")
                continue
            # Orientation split: one pass over the reusable scratch mask
            # instead of an O(|window| log |child_p|) np.isin per window.
            scratch = self._scratch
            scratch[child_p] = True
            picks = [scratch[window] for window in windows]
            scratch[child_p] = False
            timers.windows += perf_counter() - phase_started
            for window, in_p in zip(windows, picks):
                self._expand(extended, window[in_p], window[~in_p])

    # ------------------------------------------------------------------
    # Candidate generation (step 4-5 of Figure 5)
    # ------------------------------------------------------------------

    def _candidate_matrix(
        self,
        chain: Tuple[int, ...],
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> Tuple[
        NDArray[np.intp], NDArray[np.bool_], NDArray[np.bool_]
    ]:
        """Viable extensions of a chain as ``(cands, up_ok, down_ok)``.

        ``cands`` lists the candidate conditions in ascending order;
        ``up_ok[i, j]`` marks the i-th p-member complying with the j-th
        candidate, ``down_ok`` likewise for n-members.  Candidates are
        gathered by scanning the regulation successors of the chain's
        last condition for the p-members and its predecessors for the
        n-members (prunings 2 and 3a make scanning n-members for support
        unnecessary).  On the kernel path the Eq. 3 tests are masked
        lookups into the precomputed dense slices; the legacy path
        derives them from raw values (bit-identical, measured slower).
        """
        params = self.params
        last = chain[-1]
        depth = len(chain)
        need = params.min_conditions - depth  # chain still to grow, incl. cand

        p_idx = p_members
        n_idx = n_members
        kernel = self._kernel
        if kernel is not None:
            up_ok = kernel.up_slice(last)[p_idx]
            down_ok = kernel.down_slice(last)[n_idx]
        else:
            values = self._values
            thresholds = self._thresholds
            up_ok = (
                values[p_idx] - values[p_idx, last][:, None]
                > thresholds[p_idx][:, None]
            )
            down_ok = (
                values[n_idx, last][:, None] - values[n_idx]
                > thresholds[n_idx][:, None]
            )
        if self.prunings.reachability and need > 1:
            reach = self._reach_cache.get(need)
            if reach is None:
                reach = (
                    self.index.max_up >= need,
                    self.index.max_down >= need,
                )
                self._reach_cache[need] = reach
            up_ok &= reach[0][p_idx]
            down_ok &= reach[1][n_idx]

        in_chain = np.zeros(self.matrix.n_conditions, dtype=bool)
        in_chain[list(chain)] = True
        support = up_ok.sum(axis=0)
        support[in_chain] = 0

        min_support = params.min_p_members if self.prunings.p_majority else 1
        if self.tracer is not None:
            # Surface the silently-filtered candidate edges so the
            # rendered tree matches Figure 6's annotated prunings.
            for condition in np.flatnonzero(
                (support < min_support) & ~in_chain
            ):
                event = (
                    "pruned_reachability"
                    if support[condition] == 0
                    else "pruned_p_majority"
                )
                self.tracer.record(chain + (int(condition),), event)
        cands = np.flatnonzero(support >= min_support).astype(
            np.intp, copy=False
        )
        return cands, up_ok[:, cands], down_ok[:, cands]

    def _candidates(
        self,
        chain: Tuple[int, ...],
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> Iterator[Tuple[int, NDArray[np.intp], NDArray[np.intp]]]:
        """Yield ``(condition, child_p, child_n)`` extensions of a chain."""
        cands, up_sel, down_sel = self._candidate_matrix(
            chain, p_members, n_members
        )
        for position, condition in enumerate(cands):
            yield (
                int(condition),
                p_members[up_sel[:, position]],
                n_members[down_sel[:, position]],
            )

    def _extend_batched(
        self,
        chain: Tuple[int, ...],
        p_members: NDArray[np.intp],
        n_members: NDArray[np.intp],
    ) -> None:
        """Score and branch every candidate extension in one flat pass.

        The per-candidate legacy loop pays numpy call overhead on tiny
        arrays tens of thousands of times; this path concatenates every
        candidate's compliant genes into flat arrays, computes all Eq. 7
        scores with one vectorized expression, canonicalizes the order
        with a single (candidate, score, gene) lexsort and partitions all
        candidates' windows with one segmented scan.  The per-candidate
        bookkeeping loop then only touches precomputed arrays, so
        statistics, tracer events and recursion order — and therefore the
        emitted clusters — are bit-identical to the legacy path.
        """
        stats = self._stats
        timers = stats.timers
        params = self.params
        last = chain[-1]

        phase_started = perf_counter()
        cands, up_sel, down_sel = self._candidate_matrix(
            chain, p_members, n_members
        )
        timers.candidates += perf_counter() - phase_started
        n_cands = cands.shape[0]
        if n_cands == 0:
            return

        phase_started = perf_counter()
        n_p = p_members.shape[0]
        members_all = np.concatenate((p_members, n_members))
        ok_t = np.ascontiguousarray(
            np.concatenate((up_sel, down_sel), axis=0).T
        )
        # nonzero on the (candidate, member) orientation walks candidates
        # in ascending order, members within each — the flat layout every
        # later step relies on.
        cand_pos, mem_pos = np.nonzero(ok_t)
        raw_counts = np.bincount(cand_pos, minlength=n_cands)
        genes_flat = members_all[mem_pos]
        values = self._values
        scores_flat = (
            values[genes_flat, cands[cand_pos]] - values[genes_flat, last]
        ) / self._baseline[genes_flat]
        finite = np.isfinite(scores_flat)
        if finite.all():
            degenerate = None
        else:
            # Degenerate baselines (defensive — valid members always have
            # |d_c2 - d_c1| > gamma_g >= 0); drop and count per candidate.
            degenerate = np.bincount(cand_pos[~finite], minlength=n_cands)
            keep = finite
            cand_pos = cand_pos[keep]
            mem_pos = mem_pos[keep]
            genes_flat = genes_flat[keep]
            scores_flat = scores_flat[keep]
        epsilon = params.epsilon
        if epsilon > 0.0 and scores_flat.shape[0]:
            # Coherence prefilter: a window of spread <= epsilon occupies
            # at most two adjacent epsilon-wide histogram buckets (four
            # with the slack of the float bucketing itself), so a
            # candidate whose best 4-adjacent-bucket count stays below
            # MinG provably has no valid window — cheaper than sorting
            # its scores.  The bound is conservative: survivors still go
            # through the exact segmented scan below.
            low = scores_flat.min()
            clipped = np.clip(
                (scores_flat - low) / epsilon, 0.0, float(_BUCKET_CAP)
            )
            key = cand_pos * np.int64(_BUCKET_CAP + 1) + clipped.astype(
                np.int64
            )
            hist = np.bincount(
                key, minlength=n_cands * (_BUCKET_CAP + 1)
            ).reshape(n_cands, _BUCKET_CAP + 1)
            quads = hist[:, :-3] + hist[:, 1:-2] + hist[:, 2:-1] + hist[:, 3:]
            viable = quads.max(axis=1) >= params.min_genes
            if not viable.all():
                flat_keep = viable[cand_pos]
                cand_pos = cand_pos[flat_keep]
                mem_pos = mem_pos[flat_keep]
                genes_flat = genes_flat[flat_keep]
                scores_flat = scores_flat[flat_keep]
        counts = np.bincount(cand_pos, minlength=n_cands)
        # Primary key candidate, then score, then gene id — within each
        # candidate segment this is exactly the lexsort((ids, values))
        # order of coherent_gene_windows.
        order = np.lexsort((genes_flat, scores_flat, cand_pos))
        genes_sorted = genes_flat[order]
        scores_sorted = scores_flat[order]
        in_p_sorted = mem_pos[order] < n_p
        seg_sorted = cand_pos[order]
        seg_ends = np.repeat(np.cumsum(counts) - 1, counts)
        win_starts, win_ends = segmented_maximal_windows(
            scores_sorted, seg_sorted, seg_ends,
            params.epsilon, params.min_genes,
        )
        win_seg = seg_sorted[win_starts]
        timers.windows += perf_counter() - phase_started

        n_windows = win_starts.shape[0]
        cursor = 0
        for position in range(n_cands):
            stats.candidates_examined += 1
            if degenerate is not None and degenerate[position]:
                stats.degenerate_genes_dropped += int(degenerate[position])
            if raw_counts[position] == 0:
                continue
            first = cursor
            while cursor < n_windows and win_seg[cursor] == position:
                cursor += 1
            if cursor == first:
                stats.coherence_rejections += 1
                if self.tracer is not None:
                    self.tracer.record(
                        chain + (int(cands[position]),), "pruned_coherence"
                    )
                continue
            extended = chain + (int(cands[position]),)
            for index in range(first, cursor):
                start = win_starts[index]
                end = win_ends[index]
                window = genes_sorted[start : end + 1]
                in_p = in_p_sorted[start : end + 1]
                self._expand(extended, window[in_p], window[~in_p])

    # ------------------------------------------------------------------
    # Coherence scores for one extension step
    # ------------------------------------------------------------------

    def _step_scores(
        self,
        genes: NDArray[np.intp],
        chain: Tuple[int, ...],
        candidate: int,
    ) -> NDArray[np.float64]:
        """H(j, c_k1, c_k2, c_km, candidate) for every gene (Eq. 7).

        The denominator is gathered from the branch-root baseline cache
        (refreshed on every depth-2 node, see :meth:`_expand`) — the same
        float subtraction as the direct form, performed once per branch
        instead of once per extension.
        """
        values = self._values
        last = chain[-1]
        baseline = self._baseline[genes]
        step = values[genes, candidate] - values[genes, last]
        return np.asarray(step / baseline, dtype=np.float64)


def mine_reg_clusters(
    matrix: ExpressionMatrix,
    *,
    min_genes: int,
    min_conditions: int,
    gamma: float,
    epsilon: float,
    max_clusters: Optional[int] = None,
    prunings: Optional[PruningConfig] = None,
    thresholds: Optional[NDArray[np.float64]] = None,
    use_kernel: bool = True,
) -> MiningResult:
    """One-call convenience wrapper around :class:`RegClusterMiner`.

    >>> from repro.datasets import load_running_example
    >>> result = mine_reg_clusters(load_running_example(), min_genes=3,
    ...                            min_conditions=5, gamma=0.15, epsilon=0.1)
    >>> len(result)
    1
    """
    params = MiningParameters(
        min_genes=min_genes,
        min_conditions=min_conditions,
        gamma=gamma,
        epsilon=epsilon,
        max_clusters=max_clusters,
    )
    miner = RegClusterMiner(
        matrix, params, prunings=prunings, thresholds=thresholds,
        use_kernel=use_kernel,
    )
    return miner.mine()
