"""The RWave^gamma model (paper Definition 3.1 and Lemma 3.1).

For one gene, the model is the list of conditions sorted in non-descending
order of expression value, decorated with *regulation pointers*.  A pointer
from tail position ``a`` to head position ``b`` (``a < b``) records a
*bordering* regulated condition-pair: every condition at position ``<= a``
differs from every condition at position ``>= b`` by more than the gene's
regulation threshold, and no other pointer is embedded inside it.  Instead
of the O(n^2) pairwise regulation table, the model stores O(n) pointers
from which Lemma 3.1 recovers every regulation predecessor / successor
with a single binary search.

Construction scans the sorted conditions once: each condition's *closest*
regulation predecessor spawns a candidate pointer, inserted only when no
existing pointer is embedded in it.  Because closest-predecessor positions
are non-decreasing along the scan, the embedding test reduces to comparing
against the last inserted tail.

The model additionally precomputes, for every position, the length of the
longest regulation chain that can *start* there (climbing up) or *end*
there (equivalently: the longest descending chain starting there).  These
tables implement the paper's MinC pruning (strategy 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.analysis.contracts import maybe_check_rwave_index
from repro.core.kernels import RegulationKernel
from repro.core.regulation import gene_thresholds
from repro.matrix.expression import ExpressionMatrix

__all__ = ["RegulationPointer", "RWaveModel", "RWaveIndex", "build_rwave"]


@dataclass(frozen=True)
class RegulationPointer:
    """A bordering regulation pointer between two *positions* in the order.

    ``tail`` and ``head`` are positions (not condition ids); every
    condition at position ``<= tail`` is a regulation predecessor of every
    condition at position ``>= head``.
    """

    tail: int
    head: int

    def __post_init__(self) -> None:
        if self.tail >= self.head:
            raise ValueError(
                f"pointer tail {self.tail} must precede head {self.head}"
            )


class RWaveModel:
    """RWave^gamma model of a single gene.

    Parameters
    ----------
    row:
        The gene's expression profile (one value per condition).
    threshold:
        The gene's regulation threshold ``gamma_i`` (Eq. 4).
    gene:
        Optional gene index carried along for diagnostics.
    """

    def __init__(
        self,
        row: ArrayLike,
        threshold: float,
        *,
        gene: Optional[int] = None,
    ) -> None:
        profile = np.asarray(row, dtype=np.float64)
        if profile.ndim != 1:
            raise ValueError("an RWave model is built from a single profile")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.gene = gene
        self.threshold = float(threshold)
        n = profile.shape[0]
        #: condition ids sorted in non-descending order of expression value
        self.order: NDArray[np.intp] = np.argsort(profile, kind="stable")
        #: expression values in sorted order
        self.sorted_values: NDArray[np.float64] = profile[self.order]
        #: position of each condition id in :attr:`order`
        self.position: NDArray[np.intp] = np.empty(n, dtype=np.intp)
        self.position[self.order] = np.arange(n, dtype=np.intp)
        self.pointers: Tuple[RegulationPointer, ...] = tuple(
            self._build_pointers()
        )
        self._tails = np.asarray([p.tail for p in self.pointers], dtype=np.intp)
        self._heads = np.asarray([p.head for p in self.pointers], dtype=np.intp)
        self.max_chain_up, self.max_chain_down = self._chain_tables()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_pointers(self) -> List[RegulationPointer]:
        values = self.sorted_values
        n = values.shape[0]
        pointers: List[RegulationPointer] = []
        last_tail = -1
        for pos in range(n):
            # Closest regulation predecessor: the largest position q with
            # values[pos] - values[q] > threshold (strict, Eq. 3).  The
            # binary search uses the algebraically equivalent cutoff
            # values[q] < values[pos] - threshold, whose float rounding
            # can disagree with Eq. 3 in the last ulp — so the candidate
            # is re-checked with the exact predicate and walked left
            # until it satisfies it.
            cutoff = values[pos] - self.threshold
            q = int(np.searchsorted(values, cutoff, side="left")) - 1
            while (
                q + 1 < pos
                and values[pos] - values[q + 1] > self.threshold
            ):
                q += 1
            while q >= 0 and not values[pos] - values[q] > self.threshold:
                q -= 1
            if q < 0:
                continue
            if q == last_tail:
                # An existing pointer with the same tail and an earlier
                # head is embedded in (q, pos): skip (Definition 3.1 (2)).
                continue
            pointers.append(RegulationPointer(tail=q, head=pos))
            last_tail = q
        return pointers

    def _chain_tables(self) -> Tuple[NDArray[np.intp], NDArray[np.intp]]:
        """Longest up-chain / down-chain length from every position.

        ``max_chain_up[p]`` is the maximum number of conditions in a
        regulation chain starting at position ``p`` and climbing towards
        higher expression values (including ``p`` itself);
        ``max_chain_down[p]`` is the same for descending chains.  Both are
        computed greedily — always hop to the nearest reachable position —
        which is optimal because the tables are monotone in position.
        """
        n = self.order.shape[0]
        up = np.ones(n, dtype=np.intp)
        down = np.ones(n, dtype=np.intp)
        tails, heads = self._tails, self._heads
        if len(tails):
            # Up: nearest pointer whose tail is at-or-after p; hop to head.
            for pos in range(n - 1, -1, -1):
                k = int(np.searchsorted(tails, pos, side="left"))
                if k < len(tails):
                    up[pos] = 1 + up[heads[k]]
            # Down: nearest pointer whose head is at-or-before p; hop to tail.
            for pos in range(n):
                k = int(np.searchsorted(heads, pos, side="right")) - 1
                if k >= 0:
                    down[pos] = 1 + down[tails[k]]
        return up, down

    # ------------------------------------------------------------------
    # Lemma 3.1 queries
    # ------------------------------------------------------------------

    @property
    def n_conditions(self) -> int:
        return self.order.shape[0]

    def predecessor_bound(self, condition: int) -> int:
        """Largest position whose conditions all precede ``condition``.

        Returns ``-1`` when the condition has no regulation predecessor.
        Lemma 3.1: follow the nearest pointer *before* the condition; every
        position up to that pointer's tail is a predecessor.
        """
        pos = int(self.position[condition])
        k = int(np.searchsorted(self._heads, pos, side="right")) - 1
        return int(self._tails[k]) if k >= 0 else -1

    def successor_bound(self, condition: int) -> int:
        """Smallest position whose conditions all succeed ``condition``.

        Returns ``n_conditions`` when the condition has no regulation
        successor.
        """
        pos = int(self.position[condition])
        k = int(np.searchsorted(self._tails, pos, side="left"))
        return int(self._heads[k]) if k < len(self._tails) else self.n_conditions

    def regulation_predecessors(self, condition: int) -> NDArray[np.intp]:
        """All regulation predecessors of ``condition`` (condition ids).

        The ids are returned in model order (non-descending expression).
        """
        bound = self.predecessor_bound(condition)
        return self.order[: bound + 1].copy()

    def regulation_successors(self, condition: int) -> NDArray[np.intp]:
        """All regulation successors of ``condition`` (condition ids)."""
        bound = self.successor_bound(condition)
        return self.order[bound:].copy()

    def is_up_regulated(self, cond_hi: int, cond_lo: int) -> bool:
        """``Reg(i, cond_hi, cond_lo) == Up`` — direct Eq. 3 check."""
        pos_hi = int(self.position[cond_hi])
        pos_lo = int(self.position[cond_lo])
        diff = float(self.sorted_values[pos_hi] - self.sorted_values[pos_lo])
        return diff > self.threshold

    def max_up_from(self, condition: int) -> int:
        """Longest regulation chain starting at ``condition`` going up."""
        return int(self.max_chain_up[self.position[condition]])

    def max_down_from(self, condition: int) -> int:
        """Longest regulation chain starting at ``condition`` going down."""
        return int(self.max_chain_down[self.position[condition]])

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def render(self, condition_names: Optional[Sequence[str]] = None) -> str:
        """ASCII rendering in the style of the paper's Figure 3.

        Conditions appear left-to-right in non-descending value order and
        each pointer is drawn underneath as ``tail --> head``.
        """
        if condition_names is None:
            names = [f"c{j + 1}" for j in range(self.n_conditions)]
        else:
            names = list(condition_names)
        cells = [names[j] for j in self.order]
        widths = [max(len(c), 5) for c in cells]
        header = "  ".join(c.center(w) for c, w in zip(cells, widths))
        values = "  ".join(
            f"{v:.4g}".center(w) for v, w in zip(self.sorted_values, widths)
        )
        lines = [header, values]
        starts = np.concatenate(([0], np.cumsum(np.asarray(widths) + 2)))
        for pointer in self.pointers:
            left = int(starts[pointer.tail] + widths[pointer.tail] // 2)
            right = int(starts[pointer.head] + widths[pointer.head] // 2)
            arrow = [" "] * (starts[-1])
            arrow[left] = "^"
            for k in range(left + 1, right):
                arrow[k] = "-"
            arrow[right - 1] = ">" if right - 1 > left else arrow[right - 1]
            lines.append("".join(arrow).rstrip())
        return "\n".join(lines)

    def __repr__(self) -> str:
        label = f"g{self.gene + 1}" if self.gene is not None else "?"
        return (
            f"RWaveModel(gene={label}, threshold={self.threshold:.4g}, "
            f"pointers={len(self.pointers)})"
        )


def build_rwave(
    matrix: ExpressionMatrix, gene: "int | str", gamma: float
) -> RWaveModel:
    """Build one gene's RWave^gamma model from a matrix (Eq. 4 threshold)."""
    i = matrix.gene_index(gene)
    threshold = float(gene_thresholds(matrix, gamma)[i])
    return RWaveModel(matrix.values[i], threshold, gene=i)


class RWaveIndex:
    """RWave^gamma models of every gene, plus miner-facing lookup arrays.

    The miner needs three bulk views, all shaped ``(n_genes,
    n_conditions)`` and indexed by condition *id*:

    ``max_up[g, c]``
        longest regulation chain starting at condition ``c`` climbing up;
    ``max_down[g, c]``
        same, descending;
    and the per-gene thresholds.  They are materialized once here so chain
    extension reduces to vectorized numpy arithmetic.
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        gamma: float,
        *,
        thresholds: Optional[ArrayLike] = None,
    ) -> None:
        self.matrix = matrix
        self.gamma = float(gamma)
        if thresholds is None:
            per_gene = gene_thresholds(matrix, gamma)
        else:
            per_gene = np.asarray(thresholds, dtype=np.float64)
            if per_gene.shape != (matrix.n_genes,):
                raise ValueError(
                    f"thresholds must have shape ({matrix.n_genes},), got "
                    f"{per_gene.shape}"
                )
            if np.any(per_gene < 0):
                raise ValueError("thresholds must be non-negative")
        self.thresholds: NDArray[np.float64] = per_gene
        self.models: Tuple[RWaveModel, ...] = tuple(
            RWaveModel(matrix.values[i], float(self.thresholds[i]), gene=i)
            # One-time index build, not a search-time loop.
            for i in range(matrix.n_genes)  # reglint: disable=RL106
        )
        n_genes, n_conditions = matrix.shape
        self.max_up: NDArray[np.intp] = np.empty(
            (n_genes, n_conditions), dtype=np.intp
        )
        self.max_down: NDArray[np.intp] = np.empty(
            (n_genes, n_conditions), dtype=np.intp
        )
        for i, model in enumerate(self.models):
            self.max_up[i, model.order] = model.max_chain_up
            self.max_down[i, model.order] = model.max_chain_down
        self._kernel: Optional[RegulationKernel] = None
        # Debug-mode Lemma 3.1 invariant checks (repro.analysis.contracts):
        # a no-op unless contracts are enabled for the process.
        maybe_check_rwave_index(self)

    @classmethod
    def from_parts(
        cls,
        matrix: ExpressionMatrix,
        gamma: float,
        *,
        thresholds: ArrayLike,
        models: Sequence[RWaveModel],
        max_up: ArrayLike,
        max_down: ArrayLike,
    ) -> "RWaveIndex":
        """Assemble an index from prebuilt per-gene models.

        The delta-update seam (:mod:`repro.incremental.update`): a
        revision that appends or drops genes leaves the surviving
        genes' rows — and therefore their models and max-chain tables —
        untouched, so an updated index splices them in verbatim instead
        of re-sorting every gene.  The caller guarantees the parts
        belong to ``(matrix, gamma)``; the same debug-mode Lemma 3.1
        contract hook as the cold constructor re-checks them when
        contracts are enabled.
        """
        index = cls.__new__(cls)
        index.matrix = matrix
        index.gamma = float(gamma)
        per_gene = np.asarray(thresholds, dtype=np.float64)
        if per_gene.shape != (matrix.n_genes,):
            raise ValueError(
                f"thresholds must have shape ({matrix.n_genes},), got "
                f"{per_gene.shape}"
            )
        if np.any(per_gene < 0):
            raise ValueError("thresholds must be non-negative")
        index.thresholds = per_gene
        index.models = tuple(models)
        if len(index.models) != matrix.n_genes:
            raise ValueError(
                f"expected {matrix.n_genes} models, got {len(index.models)}"
            )
        shape = (matrix.n_genes, matrix.n_conditions)
        index.max_up = np.asarray(max_up, dtype=np.intp)
        index.max_down = np.asarray(max_down, dtype=np.intp)
        if index.max_up.shape != shape or index.max_down.shape != shape:
            raise ValueError(
                f"max-chain tables must have shape {shape}, got "
                f"{index.max_up.shape} / {index.max_down.shape}"
            )
        index._kernel = None
        maybe_check_rwave_index(index)
        return index

    def model(self, gene: "int | str") -> RWaveModel:
        """The RWave model of one gene."""
        return self.models[self.matrix.gene_index(gene)]

    @property
    def kernel(self) -> RegulationKernel:
        """The packed regulation-pair kernel of this index, built lazily.

        The kernel is derived from the same values and thresholds as the
        models, so its bits agree with :meth:`RWaveModel.is_up_regulated`
        everywhere.  Built on first access and shared by every miner that
        reuses this index; :meth:`attach_kernel` installs a prebuilt one
        (e.g. from the service artifact cache).
        """
        if self._kernel is None:
            self._kernel = RegulationKernel(
                self.matrix.values, self.thresholds
            )
        return self._kernel

    @property
    def has_kernel(self) -> bool:
        """Whether the kernel has already been built (or attached)."""
        return self._kernel is not None

    def attach_kernel(self, kernel: RegulationKernel) -> None:
        """Install a prebuilt kernel (must match this index's shape)."""
        if kernel.shape != self.matrix.shape:
            raise ValueError(
                f"kernel shape {kernel.shape} does not match matrix "
                f"shape {self.matrix.shape}"
            )
        self._kernel = kernel

    def __len__(self) -> int:
        return len(self.models)

    def __getstate__(self) -> "dict[str, object]":
        """Pickle without the kernel: it is cached as its own artifact
        (see :mod:`repro.service.cache`) and rebuilt lazily elsewhere."""
        state = dict(self.__dict__)
        state["_kernel"] = None
        return state

    def __setstate__(self, state: "dict[str, object]") -> None:
        self.__dict__.update(state)
        # Indexes pickled before the kernel attribute existed.
        self.__dict__.setdefault("_kernel", None)
