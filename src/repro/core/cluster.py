"""The reg-cluster result object (paper Definition 3.2).

A :class:`RegCluster` couples a representative regulation chain (ordered
condition ids) with the genes complying with it directly (p-members) and
with its inversion (n-members).  It is a value object: hashable,
comparable, and able to materialize its submatrix, per-gene H profiles and
fitted scaling/shifting factors for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.chain import invert_chain
from repro.core.coherence import AffineFit, chain_h_profile, fit_affine
from repro.matrix.expression import ExpressionMatrix

__all__ = ["RegCluster", "cell_set"]


@dataclass(frozen=True)
class RegCluster:
    """One mined reg-cluster ``C = X x Y``.

    Attributes
    ----------
    chain:
        Representative regulation chain ``C.Y`` — condition ids in chain
        order (p-member expression ascends along it).
    p_members:
        Gene ids complying with :attr:`chain` (``C.pX``), sorted.
    n_members:
        Gene ids complying with the inverted chain (``C.nX``), sorted.
    """

    chain: Tuple[int, ...]
    p_members: Tuple[int, ...]
    n_members: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "chain", tuple(int(c) for c in self.chain))
        object.__setattr__(
            self, "p_members", tuple(sorted(int(g) for g in self.p_members))
        )
        object.__setattr__(
            self, "n_members", tuple(sorted(int(g) for g in self.n_members))
        )
        if len(set(self.chain)) != len(self.chain):
            raise ValueError("chain contains duplicate conditions")
        if set(self.p_members) & set(self.n_members):
            raise ValueError("a gene cannot be both p-member and n-member")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def genes(self) -> Tuple[int, ...]:
        """All member genes ``C.X`` (p-members then n-members, each sorted)."""
        return tuple(sorted((*self.p_members, *self.n_members)))

    @property
    def conditions(self) -> Tuple[int, ...]:
        """Condition ids of the cluster, in chain order (alias of chain)."""
        return self.chain

    @property
    def n_genes(self) -> int:
        return len(self.p_members) + len(self.n_members)

    @property
    def n_conditions(self) -> int:
        return len(self.chain)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_genes, self.n_conditions)

    @property
    def inverted_chain(self) -> Tuple[int, ...]:
        """``invert(C.Y)`` — the chain the n-members comply with."""
        return invert_chain(self.chain)

    def orientation(self, gene: int) -> int:
        """``+1`` for a p-member, ``-1`` for an n-member.

        Raises :class:`KeyError` for non-members.
        """
        if gene in self.p_members:
            return 1
        if gene in self.n_members:
            return -1
        raise KeyError(f"gene {gene} is not a member of this cluster")

    # ------------------------------------------------------------------
    # Set views
    # ------------------------------------------------------------------

    def cells(self) -> FrozenSet[Tuple[int, int]]:
        """The set of (gene, condition) cells the cluster covers."""
        return frozenset(
            (g, c) for g in self.genes for c in self.chain
        )

    def overlap_fraction(self, other: "RegCluster") -> float:
        """Fraction of this cluster's cells shared with ``other`` (§5.2)."""
        mine = self.cells()
        if not mine:
            return 0.0
        return len(mine & other.cells()) / len(mine)

    # ------------------------------------------------------------------
    # Materialization against a matrix
    # ------------------------------------------------------------------

    def submatrix(self, matrix: ExpressionMatrix) -> ExpressionMatrix:
        """The cluster's expression submatrix, columns in chain order."""
        return matrix.submatrix(self.genes, self.chain)

    def h_profiles(
        self, matrix: ExpressionMatrix
    ) -> Dict[int, NDArray[np.float64]]:
        """Per-gene H-score profiles along the representative chain.

        Every member — p or n — is scored on the same chain order: for an
        n-member both the baseline difference and every step difference
        flip sign, so the ratios are directly comparable (the paper's
        worked example scores g2 on the same H values as g1/g3).
        """
        return {
            gene: chain_h_profile(matrix, gene, self.chain)
            for gene in self.genes
        }

    def affine_fits(
        self, matrix: ExpressionMatrix, reference: Optional[int] = None
    ) -> Dict[int, AffineFit]:
        """Fit ``d_g = s1 * d_ref + s2`` on the cluster's conditions.

        ``reference`` defaults to the first p-member.  P-members come out
        with positive scaling, n-members with negative scaling — the
        signature property of the reg-cluster model.
        """
        if reference is None:
            if not self.p_members:
                raise ValueError("cluster has no p-members to anchor the fit")
            reference = self.p_members[0]
        cond = list(self.chain)
        ref_profile = matrix.submatrix([reference], cond).values[0]
        fits: Dict[int, AffineFit] = {}
        for gene in self.genes:
            profile = matrix.submatrix([gene], cond).values[0]
            fits[gene] = fit_affine(profile, ref_profile)
        return fits

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def describe(self, matrix: Optional[ExpressionMatrix] = None) -> str:
        """Human-readable one-cluster report."""
        if matrix is not None:
            chain_names = " <- ".join(
                matrix.condition_names[c] for c in self.chain
            )
            p_names = ", ".join(matrix.gene_names[g] for g in self.p_members)
            n_names = ", ".join(matrix.gene_names[g] for g in self.n_members)
        else:
            chain_names = " <- ".join(f"c{c + 1}" for c in self.chain)
            p_names = ", ".join(f"g{g + 1}" for g in self.p_members)
            n_names = ", ".join(f"g{g + 1}" for g in self.n_members)
        lines = [
            f"reg-cluster {self.n_genes} genes x {self.n_conditions} conditions",
            f"  chain     : {chain_names}",
            f"  p-members : {p_names or '(none)'}",
            f"  n-members : {n_names or '(none)'}",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def cell_set(clusters: Sequence[RegCluster]) -> FrozenSet[Tuple[int, int]]:
    """Union of covered cells over several clusters."""
    covered: FrozenSet[Tuple[int, int]] = frozenset()
    for cluster in clusters:
        covered = covered | cluster.cells()
    return covered

