"""Mining parameters for the reg-cluster algorithm.

The four user-facing knobs come straight from Figure 5 of the paper:

``min_genes`` (MinG)
    minimum number of genes (p-members plus n-members) in a reported
    cluster;
``min_conditions`` (MinC)
    minimum length of a representative regulation chain;
``gamma``
    regulation threshold, a fraction of each gene's expression range
    (Eq. 4);
``epsilon``
    coherence threshold bounding the spread of per-step H scores (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MiningParameters"]


@dataclass(frozen=True)
class MiningParameters:
    """Validated parameter bundle for :class:`repro.core.miner.RegClusterMiner`.

    Examples
    --------
    >>> p = MiningParameters(min_genes=3, min_conditions=5,
    ...                      gamma=0.15, epsilon=0.1)
    >>> p.gamma
    0.15
    """

    min_genes: int
    min_conditions: int
    gamma: float
    epsilon: float
    #: Cap on reported clusters; ``None`` means unbounded.  A safety valve
    #: for permissive parameter settings on large matrices.
    max_clusters: "int | None" = None

    def __post_init__(self) -> None:
        if self.min_genes < 1:
            raise ValueError(f"min_genes must be >= 1, got {self.min_genes}")
        if self.min_conditions < 2:
            raise ValueError(
                "min_conditions must be >= 2 (a chain needs a baseline "
                f"condition-pair), got {self.min_conditions}"
            )
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(
                f"gamma is a fraction of the expression range in [0, 1], "
                f"got {self.gamma}"
            )
        if self.epsilon < 0.0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.max_clusters is not None and self.max_clusters < 1:
            raise ValueError(
                f"max_clusters must be >= 1 or None, got {self.max_clusters}"
            )

    def with_overrides(self, **kwargs: object) -> "MiningParameters":
        """Return a copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)

    @property
    def min_p_members(self) -> int:
        """Smallest p-member count surviving pruning (3a): ``MinG / 2``.

        Evaluated without rounding, i.e. a node is pruned when
        ``2 * |pX| < MinG``.
        """
        return (self.min_genes + 1) // 2
