"""Regulation chains (paper section 4).

A regulation chain ``c_k1 <- c_k2 <- ... <- c_km`` is an ordered sequence
of conditions in which each successive condition is a regulation successor
of the previous one.  A gene is a *p-member* of the chain when its
expression values climb along the chain with every adjacent step
regulated, and an *n-member* when they descend likewise (i.e. the gene
complies with the inverted chain).

Of the two orientations of the same cluster exactly one is the
*representative* chain: the one whose compliant p-members form the
majority; ties are broken towards the orientation starting with the
larger condition id (the paper's prose rule).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = [
    "invert_chain",
    "is_representative",
    "canonical_orientation",
    "gene_matches_chain",
    "match_chain_members",
]


def invert_chain(chain: Sequence[int]) -> Tuple[int, ...]:
    """``invert(C.Y)``: the same conditions walked in reverse."""
    return tuple(reversed(tuple(chain)))


def is_representative(
    chain: Sequence[int], n_p_members: int, n_n_members: int
) -> bool:
    """Is this orientation the representative one for its cluster?

    Representative means the majority of member genes comply with the
    chain directly (p-members).  On an exact tie, the orientation whose
    first condition has the larger id wins — so exactly one of the two
    orientations of any cluster is representative.
    """
    if n_p_members != n_n_members:
        return n_p_members > n_n_members
    walk = tuple(chain)
    if len(walk) < 2 or walk[0] == walk[-1]:
        return True
    return walk[0] > walk[-1]


def canonical_orientation(
    chain: Sequence[int], n_p_members: int, n_n_members: int
) -> Tuple[Tuple[int, ...], int, int]:
    """Return ``(chain, p, n)`` flipped, if needed, to the representative.

    Convenience for presenting externally-supplied clusters the same way
    the miner reports them.
    """
    walk = tuple(chain)
    if is_representative(walk, n_p_members, n_n_members):
        return walk, n_p_members, n_n_members
    return invert_chain(walk), n_n_members, n_p_members


def gene_matches_chain(
    row: ArrayLike, threshold: float, chain: Sequence[int]
) -> bool:
    """Does one gene comply with a chain as a p-member?

    Every adjacent step must be up-regulated: ``d[next] - d[prev] >
    threshold`` (Eq. 3).  Because values then increase monotonically with
    gaps all exceeding the threshold, *every* pair of chain conditions is
    regulated — the model's "any two conditions" requirement.
    """
    walk = np.asarray(tuple(chain), dtype=np.intp)
    if walk.shape[0] < 2:
        return True
    steps = np.diff(np.asarray(row, dtype=np.float64)[walk])
    return bool(np.all(steps > threshold))


def match_chain_members(
    values: NDArray[np.float64],
    thresholds: NDArray[np.float64],
    chain: Sequence[int],
    candidates: ArrayLike,
) -> Tuple[NDArray[np.intp], NDArray[np.intp]]:
    """Split candidate genes into p-members and n-members of a chain.

    Parameters
    ----------
    values:
        Full data array, genes x conditions.
    thresholds:
        Per-gene regulation thresholds (Eq. 4).
    chain:
        Condition ids in chain order.
    candidates:
        Gene indices to classify.

    Returns
    -------
    (p_members, n_members):
        Gene index arrays; genes complying with neither orientation are
        dropped.  For a single-condition chain every candidate is a
        p-member (orientation is undetermined until a second condition).
    """
    pool = np.asarray(candidates, dtype=np.intp)
    walk = np.asarray(tuple(chain), dtype=np.intp)
    if walk.shape[0] < 2:
        return pool.copy(), np.empty(0, dtype=np.intp)
    sub = values[np.ix_(pool, walk)]
    steps = np.diff(sub, axis=1)
    limit = thresholds[pool][:, None]
    p_mask = np.all(steps > limit, axis=1)
    n_mask = np.all(steps < -limit, axis=1)
    return pool[p_mask], pool[n_mask]
