"""Brute-force reference miner — the test oracle.

A deliberately naive re-implementation of the reg-cluster semantics:
no RWave index, no pruning, no vectorization.  It enumerates every ordered
condition chain by recursive extension, re-derives member genes from the
raw definition at every step, and computes coherence windows with nested
loops.  Exponential in the number of conditions — usable only on toy
matrices — but sharing *no* code with :mod:`repro.core.miner`, which makes
agreement between the two a strong correctness signal (the property tests
rely on it).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.chain import is_representative
from repro.core.cluster import RegCluster
from repro.core.params import MiningParameters
from repro.matrix.expression import ExpressionMatrix

__all__ = ["reference_mine", "reference_mine_list"]


def _naive_windows(
    scored: List[Tuple[float, int, int]], epsilon: float, min_length: int
) -> List[List[Tuple[float, int, int]]]:
    """All maximal score-windows, quadratic-time on purpose.

    ``scored`` holds ``(score, gene, sign)`` triples.  A window is a
    contiguous run of the score-sorted list whose spread is at most
    epsilon and which no other such run contains.
    """
    scored = sorted(scored, key=lambda t: (t[0], t[1]))
    n = len(scored)
    runs: List[Tuple[int, int]] = []
    for start in range(n):
        end = start
        for j in range(start, n):
            if scored[j][0] - scored[start][0] <= epsilon:
                end = j
            else:
                break
        runs.append((start, end))
    maximal = [
        (s, e)
        for s, e in runs
        if not any(
            (s2 <= s and e <= e2) and (s2, e2) != (s, e) for s2, e2 in runs
        )
    ]
    return [
        scored[s : e + 1] for s, e in maximal if e - s + 1 >= min_length
    ]


def reference_mine(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    thresholds: "Sequence[float] | None" = None,
) -> Set[RegCluster]:
    """Every validated reg-cluster, found the slow and obvious way.

    Returns a set, because the oracle has no redundancy pruning and may
    re-derive the same cluster along several branches.  ``thresholds``
    overrides the Eq. 4 per-gene defaults (mirroring the miner's custom
    threshold-strategy support).
    """
    values = matrix.values
    n_genes, n_conditions = matrix.shape
    if thresholds is None:
        limits = [
            params.gamma * (float(values[g].max()) - float(values[g].min()))
            for g in range(n_genes)
        ]
    else:
        limits = [float(t) for t in thresholds]
        if len(limits) != n_genes:
            raise ValueError("thresholds must have one entry per gene")
    found: Set[RegCluster] = set()

    def step_ok(gene: int, sign: int, prev: int, new: int) -> bool:
        diff = float(values[gene, new] - values[gene, prev])
        if sign > 0:
            return diff > limits[gene]
        return diff < -limits[gene]

    def maybe_emit(chain: Tuple[int, ...], members: List[Tuple[int, int]]) -> None:
        if len(chain) < params.min_conditions:
            return
        if len(members) < params.min_genes:
            return
        p = sorted(g for g, sign in members if sign > 0)
        n = sorted(g for g, sign in members if sign < 0)
        if not is_representative(chain, len(p), len(n)):
            return
        found.add(RegCluster(chain=chain, p_members=tuple(p), n_members=tuple(n)))

    def extend(chain: Tuple[int, ...], members: List[Tuple[int, int]]) -> None:
        maybe_emit(chain, members)
        if len(chain) == n_conditions:
            return
        for cand in range(n_conditions):
            if cand in chain:
                continue
            survivors = [
                (g, sign)
                for g, sign in members
                if step_ok(g, sign, chain[-1], cand)
            ]
            if not survivors:
                continue
            if len(chain) == 1:
                extend(chain + (cand,), survivors)
                continue
            c1, c2, last = chain[0], chain[1], chain[-1]
            scored = [
                (
                    (values[g, cand] - values[g, last])
                    / (values[g, c2] - values[g, c1]),
                    g,
                    sign,
                )
                for g, sign in survivors
            ]
            for window in _naive_windows(
                scored, params.epsilon, params.min_genes
            ):
                extend(chain + (cand,), [(g, sign) for _, g, sign in window])

    for start in range(n_conditions):
        members = [(g, sign) for g in range(n_genes) for sign in (1, -1)]
        extend((start,), members)
    return found


def reference_mine_list(
    matrix: ExpressionMatrix, params: MiningParameters
) -> Sequence[RegCluster]:
    """Deterministically ordered variant of :func:`reference_mine`."""
    return sorted(
        reference_mine(matrix, params),
        key=lambda c: (c.chain, c.p_members, c.n_members),
    )
