"""The reg-cluster model and mining algorithm (the paper's contribution)."""

from repro.core.chain import (
    canonical_orientation,
    gene_matches_chain,
    invert_chain,
    is_representative,
    match_chain_members,
)
from repro.core.cluster import RegCluster, cell_set
from repro.core.coherence import (
    AffineFit,
    chain_h_profile,
    coherence_score,
    fit_affine,
    is_shifting_and_scaling,
)
from repro.core.kernels import DEFAULT_SLICE_CACHE, RegulationKernel
from repro.core.miner import (
    MiningCancelled,
    MiningResult,
    PhaseTimers,
    ProgressCallback,
    PruningConfig,
    RegClusterMiner,
    SearchStatistics,
    mine_reg_clusters,
)
from repro.core.numeric import ZERO_TOL, near_equal, near_zero
from repro.core.params import MiningParameters
from repro.core.postprocess import drop_contained, merge_overlapping, top_k
from repro.core.reference import reference_mine, reference_mine_list
from repro.core.serialize import (
    cluster_from_dict,
    cluster_to_dict,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.core.trace import SearchTrace
from repro.core.thresholds import (
    closest_pair_average,
    constant,
    mean_fraction,
    normalized_std,
    range_fraction,
    resolve_strategy,
)
from repro.core.regulation import (
    Regulation,
    gene_thresholds,
    regulation,
    regulation_matrix,
)
from repro.core.rwave import RegulationPointer, RWaveIndex, RWaveModel, build_rwave
from repro.core.validate import check_chain, is_valid_reg_cluster, validation_errors
from repro.core.window import coherent_gene_windows, maximal_coherent_windows

__all__ = [
    # model
    "MiningParameters",
    "Regulation",
    "gene_thresholds",
    "regulation",
    "regulation_matrix",
    "RegulationPointer",
    "RWaveModel",
    "RWaveIndex",
    "build_rwave",
    "coherence_score",
    "chain_h_profile",
    "is_shifting_and_scaling",
    "AffineFit",
    "fit_affine",
    # numeric tolerance helpers
    "ZERO_TOL",
    "near_zero",
    "near_equal",
    # chains and clusters
    "invert_chain",
    "is_representative",
    "canonical_orientation",
    "gene_matches_chain",
    "match_chain_members",
    "RegCluster",
    "cell_set",
    # mining
    "RegClusterMiner",
    "MiningCancelled",
    "ProgressCallback",
    "MiningResult",
    "PruningConfig",
    "SearchStatistics",
    "PhaseTimers",
    "RegulationKernel",
    "DEFAULT_SLICE_CACHE",
    "mine_reg_clusters",
    "maximal_coherent_windows",
    "coherent_gene_windows",
    # verification
    "validation_errors",
    "is_valid_reg_cluster",
    "check_chain",
    "reference_mine",
    "reference_mine_list",
    # post-processing
    "drop_contained",
    "merge_overlapping",
    "top_k",
    # serialization
    "cluster_to_dict",
    "cluster_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    # threshold strategies
    "range_fraction",
    "closest_pair_average",
    "normalized_std",
    "mean_fraction",
    "constant",
    "resolve_strategy",
    "SearchTrace",
]
