"""Shared numeric tolerance helpers — the float-comparison boundary.

Every degenerate-value guard in the reg-cluster code (zero baselines in
the H score of Eq. 7, zero variance in the affine fit of Eq. 5) must go
through this module instead of comparing floats with ``==``.  Exact
float equality misses values within rounding noise of the sentinel,
which is precisely the tolerance-handling failure mode
shifting-and-scaling extractors are most sensitive to.

This is the one module allowed to compare floats exactly; the reglint
rule RL101 enforces the boundary everywhere else.
"""

# reglint: disable-file=RL101

from __future__ import annotations

import math

__all__ = ["ZERO_TOL", "near_zero", "near_equal"]

#: Default absolute tolerance for treating a value as zero.  Chosen well
#: below any meaningful expression-level difference (microarray data
#: carries 3-4 significant digits) yet far above float64 rounding noise.
ZERO_TOL: float = 1e-12

def near_zero(x: float, tol: float = ZERO_TOL) -> bool:
    """Is ``x`` within ``tol`` of zero?

    Used to detect degenerate baselines/variances before dividing.
    ``tol=0.0`` recovers the exact ``x == 0.0`` test.

    >>> near_zero(0.0)
    True
    >>> near_zero(5e-13)
    True
    >>> near_zero(1e-6)
    False
    """
    return abs(x) <= tol


def near_equal(a: float, b: float, *, rel: float = 1e-9, tol: float = ZERO_TOL) -> bool:
    """Are two floats equal within relative *and* absolute slack?

    A thin wrapper over :func:`math.isclose` with this package's default
    absolute floor, so near-zero pairs compare sanely.

    >>> near_equal(1.0, 1.0 + 1e-12)
    True
    >>> near_equal(1.0, 1.1)
    False
    """
    return math.isclose(a, b, rel_tol=rel, abs_tol=tol)
