"""Precomputed regulation-pair kernels (the Eq. 3 relation, materialized).

The miner's innermost operation asks, for a member gene ``g`` and the
chain's last condition ``b``: *which conditions ``a`` satisfy
``Reg(g, a, b) == Up``?* (Eq. 3: ``values[g, a] - values[g, b] >
gamma_g``).  The original hot path re-derived this from raw expression
values at every search node — an O(|members| x C) float subtract/compare
per node.  A :class:`RegulationKernel` instead materializes the whole
ternary relation once per ``(matrix, thresholds)`` pair as the boolean
tensor::

    up[g, a, b]  =  values[g, a] - values[g, b] > gamma_g

bit-packed along the ``b`` axis with :func:`numpy.packbits`, so the full
relation costs ~``G * C^2 / 8`` bytes (a 5000 x 40 matrix packs into one
megabyte).  The two views the search needs are cheap projections:

``up_slice(last)``
    dense ``(G, C)`` boolean ``up[:, :, last]`` — regulation *successor*
    test against a fixed last condition.  Extracting one bit position
    from the packed axis touches ``G * C`` bytes, no full unpack.
``down_slice(last)``
    dense ``(G, C)`` boolean ``up[:, last, :]`` — regulation
    *predecessor* test — one :func:`numpy.unpackbits` over ``G * C / 8``
    packed bytes.

Because the depth-first search revisits the same last condition across
all siblings of a subtree, both projections sit behind a small
per-last-condition LRU cache of dense slices (the time/memory trade-off
is documented in ``docs/performance.md``).

The comparisons here are executed on exactly the same float operands as
the direct Eq. 3 evaluation, so a kernel-backed miner is *bit-identical*
to the unkernelized one — the equivalence suite in
``tests/core/test_kernels.py`` and ``tests/core/test_miner_kernel_equivalence.py``
asserts this on every pinned dataset.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = ["RegulationKernel", "DEFAULT_SLICE_CACHE"]

#: Dense slices kept unpacked per direction.  The depth-first search
#: cycles through every condition as "last" across sibling subtrees, so
#: the default covers all slices of typical expression matrices
#: (C <= 64) outright — each cached slice costs G x C bytes; matrices
#: with more conditions fall back to LRU reuse along the search path.
DEFAULT_SLICE_CACHE = 64

#: Gene-axis chunk used while packing, bounding the peak size of the
#: temporary dense ``(chunk, C, C)`` difference tensor.
_PACK_CHUNK = 512


class RegulationKernel:
    """Bit-packed pairwise regulation relation of every gene.

    Parameters
    ----------
    values:
        Expression matrix, shape ``(n_genes, n_conditions)``.
    thresholds:
        Per-gene regulation thresholds ``gamma_g`` (Eq. 4), shape
        ``(n_genes,)``, all non-negative.
    slice_cache:
        How many dense ``(G, C)`` slices to keep unpacked per direction
        (LRU).  ``0`` disables caching (every query re-projects).
    """

    def __init__(
        self,
        values: ArrayLike,
        thresholds: ArrayLike,
        *,
        slice_cache: int = DEFAULT_SLICE_CACHE,
    ) -> None:
        data = np.ascontiguousarray(values, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(
                f"values must be a 2-D matrix, got shape {data.shape}"
            )
        per_gene = np.asarray(thresholds, dtype=np.float64)
        if per_gene.shape != (data.shape[0],):
            raise ValueError(
                f"thresholds must have shape ({data.shape[0]},), got "
                f"{per_gene.shape}"
            )
        if np.any(per_gene < 0):
            raise ValueError("thresholds must be non-negative")
        if slice_cache < 0:
            raise ValueError(f"slice_cache must be >= 0, got {slice_cache}")
        self.n_genes, self.n_conditions = data.shape
        self.slice_cache = int(slice_cache)
        self._packed = self._pack(data, per_gene)
        self._up_cache: "OrderedDict[int, NDArray[np.bool_]]" = OrderedDict()
        self._down_cache: "OrderedDict[int, NDArray[np.bool_]]" = OrderedDict()

    @classmethod
    def from_packed(
        cls,
        packed: NDArray[np.uint8],
        *,
        n_conditions: int,
        slice_cache: int = DEFAULT_SLICE_CACHE,
    ) -> "RegulationKernel":
        """Wrap an already-packed relation tensor into a kernel.

        The delta-update seam (:mod:`repro.incremental.update`): a
        revision job reuses the unchanged planes of its parent's kernel
        and packs only the new/changed ones, then assembles the result
        here without re-deriving any bit.  The caller guarantees the
        bits correspond to Eq. 3 over some ``(values, thresholds)``
        pair — the incremental equivalence suite proves the assembled
        tensor byte-identical to a cold :meth:`_pack` build.
        """
        if n_conditions < 0:
            raise ValueError(
                f"n_conditions must be >= 0, got {n_conditions}"
            )
        if slice_cache < 0:
            raise ValueError(f"slice_cache must be >= 0, got {slice_cache}")
        tensor = np.ascontiguousarray(packed, dtype=np.uint8)
        expected_width = (n_conditions + 7) // 8
        if (
            tensor.ndim != 3
            or tensor.shape[1] != n_conditions
            or tensor.shape[2] != expected_width
        ):
            raise ValueError(
                f"packed tensor must have shape (G, {n_conditions}, "
                f"{expected_width}), got {tensor.shape}"
            )
        kernel = cls.__new__(cls)
        kernel.n_genes = int(tensor.shape[0])
        kernel.n_conditions = int(n_conditions)
        kernel.slice_cache = int(slice_cache)
        kernel._packed = tensor
        kernel._up_cache = OrderedDict()
        kernel._down_cache = OrderedDict()
        return kernel

    @classmethod
    def pack_planes(
        cls, values: ArrayLike, thresholds: ArrayLike
    ) -> NDArray[np.uint8]:
        """Pack the Eq. 3 relation of the given gene rows (no kernel).

        Public wrapper over :meth:`_pack` for incremental updates that
        build the planes of *new* genes only and splice them next to
        reused parent planes (:func:`repro.incremental.update
        .update_kernel`).
        """
        data = np.ascontiguousarray(values, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(
                f"values must be a 2-D matrix, got shape {data.shape}"
            )
        per_gene = np.asarray(thresholds, dtype=np.float64)
        if per_gene.shape != (data.shape[0],):
            raise ValueError(
                f"thresholds must have shape ({data.shape[0]},), got "
                f"{per_gene.shape}"
            )
        if np.any(per_gene < 0):
            raise ValueError("thresholds must be non-negative")
        return cls._pack(data, per_gene)

    @property
    def packed(self) -> NDArray[np.uint8]:
        """The packed relation tensor ``(G, C, ceil(C/8))`` (read-only).

        Shared with the kernel — callers must not mutate it.  Exposed
        for delta-updates that reuse unchanged planes verbatim.
        """
        return self._packed

    @staticmethod
    def _pack(
        values: NDArray[np.float64], thresholds: NDArray[np.float64]
    ) -> NDArray[np.uint8]:
        """Build ``packbits(up, axis=2)`` in gene chunks.

        Chunking bounds the dense intermediate at
        ``_PACK_CHUNK * C * C`` floats regardless of gene count.
        """
        n_genes, n_conditions = values.shape
        packed_width = (n_conditions + 7) // 8
        packed = np.empty(
            (n_genes, n_conditions, packed_width), dtype=np.uint8
        )
        # One-time pack, chunked to bound memory, not a search-time loop.
        for start in range(0, n_genes, _PACK_CHUNK):  # reglint: disable=RL106
            stop = min(start + _PACK_CHUNK, n_genes)
            block = values[start:stop]
            # Same operands, same order, as the direct Eq. 3 check — the
            # packed bits are bitwise-identical to the float comparison.
            diff = block[:, :, None] - block[:, None, :]
            up = diff > thresholds[start:stop, None, None]
            packed[start:stop] = np.packbits(up, axis=2)
        return packed

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------

    def _check_condition(self, condition: int) -> int:
        if not 0 <= condition < self.n_conditions:
            raise IndexError(
                f"condition {condition} out of range for a kernel over "
                f"{self.n_conditions} conditions"
            )
        return int(condition)

    def _cached(
        self,
        cache: "OrderedDict[int, NDArray[np.bool_]]",
        condition: int,
    ) -> Optional[NDArray[np.bool_]]:
        hit = cache.get(condition)
        if hit is not None:
            cache.move_to_end(condition)
        return hit

    def _remember(
        self,
        cache: "OrderedDict[int, NDArray[np.bool_]]",
        condition: int,
        dense: NDArray[np.bool_],
    ) -> NDArray[np.bool_]:
        if self.slice_cache:
            cache[condition] = dense
            while len(cache) > self.slice_cache:
                cache.popitem(last=False)
        return dense

    def up_slice(self, last: int) -> NDArray[np.bool_]:
        """``(G, C)`` boolean: ``[g, a]`` iff ``Reg(g, a, last) == Up``.

        Row ``g``, column ``a`` is true when condition ``a`` up-regulates
        gene ``g`` relative to ``last`` (Eq. 3).  The returned array is
        shared with the cache — treat it as read-only.
        """
        last = self._check_condition(last)
        hit = self._cached(self._up_cache, last)
        if hit is not None:
            return hit
        byte = self._packed[:, :, last >> 3]
        bit = (byte >> (7 - (last & 7))) & 1
        return self._remember(self._up_cache, last, bit.astype(np.bool_))

    def down_slice(self, last: int) -> NDArray[np.bool_]:
        """``(G, C)`` boolean: ``[g, b]`` iff ``Reg(g, last, b) == Up``.

        Row ``g``, column ``b`` is true when ``last`` up-regulates gene
        ``g`` relative to condition ``b`` — i.e. ``b`` is a regulation
        predecessor of ``last``.  Shared with the cache; read-only.
        """
        last = self._check_condition(last)
        hit = self._cached(self._down_cache, last)
        if hit is not None:
            return hit
        bits = np.unpackbits(
            self._packed[:, last, :], axis=1, count=self.n_conditions
        )
        return self._remember(
            self._down_cache, last, bits.astype(np.bool_)
        )

    def is_up_regulated(self, gene: int, cond_hi: int, cond_lo: int) -> bool:
        """Point query ``Reg(gene, cond_hi, cond_lo) == Up`` (Eq. 3)."""
        cond_hi = self._check_condition(cond_hi)
        cond_lo = self._check_condition(cond_lo)
        byte = int(self._packed[gene, cond_hi, cond_lo >> 3])
        return bool((byte >> (7 - (cond_lo & 7))) & 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return self.n_genes, self.n_conditions

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed tensor (excludes the slice cache)."""
        return int(self._packed.nbytes)

    def cache_info(self) -> Tuple[int, int]:
        """Currently-cached dense slice counts ``(up, down)``."""
        return len(self._up_cache), len(self._down_cache)

    def clear_cache(self) -> None:
        """Drop every cached dense slice (the packed tensor remains)."""
        self._up_cache.clear()
        self._down_cache.clear()

    def __repr__(self) -> str:
        return (
            f"RegulationKernel(shape={self.n_genes}x{self.n_conditions}, "
            f"packed={self.nbytes} bytes, slice_cache={self.slice_cache})"
        )

    # ------------------------------------------------------------------
    # Pickling (artifact cache / spawned workers)
    # ------------------------------------------------------------------

    def __getstate__(self) -> "dict[str, object]":
        """Persist only the packed tensor — dense slices are derived."""
        state = dict(self.__dict__)
        state["_up_cache"] = OrderedDict()
        state["_down_cache"] = OrderedDict()
        return state

    def __setstate__(self, state: "dict[str, object]") -> None:
        self.__dict__.update(state)
