"""Pluggable regulation-threshold strategies (paper section 3.1).

Equation 4 defines the default per-gene threshold as a fraction of the
gene's expression range, but the paper explicitly notes that *"other
regulation thresholds, such as the average difference between every pair
of conditions whose values are closest [18], normalized threshold [17],
average expression value [5], etc., can be used where appropriate."*

This module provides those alternatives as first-class strategies.  Every
strategy maps an expression matrix to a per-gene threshold array that can
be handed to :class:`repro.core.miner.RegClusterMiner` (or
:class:`repro.core.rwave.RWaveIndex`) in place of the Eq. 4 default.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np
from numpy.typing import NDArray

from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "ThresholdStrategy",
    "range_fraction",
    "closest_pair_average",
    "normalized_std",
    "mean_fraction",
    "constant",
    "resolve_strategy",
]

#: A strategy maps (matrix, scale) -> per-gene threshold array.
ThresholdStrategy = Callable[[ExpressionMatrix, float], NDArray[np.float64]]


def _validate_scale(scale: float, *, upper: float = np.inf) -> None:
    if not 0.0 <= scale <= upper:
        raise ValueError(
            f"threshold scale must be in [0, {upper}], got {scale}"
        )


def range_fraction(
    matrix: ExpressionMatrix, scale: float
) -> NDArray[np.float64]:
    """Eq. 4 (the paper's default): ``scale * (max - min)`` per gene."""
    _validate_scale(scale, upper=1.0)
    return np.asarray(scale * matrix.gene_ranges(), dtype=np.float64)


def closest_pair_average(
    matrix: ExpressionMatrix, scale: float
) -> NDArray[np.float64]:
    """OP-cluster-style threshold (the paper's reference [18]).

    ``scale`` times the average *adjacent* gap of each gene's sorted
    expression values — i.e. the mean difference between every pair of
    conditions whose values are closest.
    """
    _validate_scale(scale)
    values = np.sort(matrix.values, axis=1)
    if matrix.n_conditions < 2:
        return np.zeros(matrix.n_genes, dtype=np.float64)
    gaps = np.diff(values, axis=1)
    return np.asarray(scale * gaps.mean(axis=1), dtype=np.float64)


def normalized_std(
    matrix: ExpressionMatrix, scale: float
) -> NDArray[np.float64]:
    """Normalized threshold (the paper's reference [17]).

    ``scale`` standard deviations of each gene's profile; a gene must
    swing by a multiple of its own variability to count as regulated.
    """
    _validate_scale(scale)
    return np.asarray(scale * matrix.values.std(axis=1), dtype=np.float64)


def mean_fraction(
    matrix: ExpressionMatrix, scale: float
) -> NDArray[np.float64]:
    """Average-expression threshold (the paper's reference [5]).

    ``scale`` times the absolute mean expression level of each gene —
    appropriate for raw (non-log) intensity data where biological fold
    changes scale with the baseline.
    """
    _validate_scale(scale)
    return np.asarray(
        scale * np.abs(matrix.values.mean(axis=1)), dtype=np.float64
    )


def constant(matrix: ExpressionMatrix, scale: float) -> NDArray[np.float64]:
    """A single global threshold for every gene.

    The degenerate strategy the paper argues *against* (genes differ in
    sensitivity by orders of magnitude); provided for comparison
    experiments.
    """
    _validate_scale(scale)
    return np.full(matrix.n_genes, float(scale), dtype=np.float64)


_REGISTRY: Dict[str, ThresholdStrategy] = {
    "range_fraction": range_fraction,
    "closest_pair_average": closest_pair_average,
    "normalized_std": normalized_std,
    "mean_fraction": mean_fraction,
    "constant": constant,
}


def resolve_strategy(name: str) -> ThresholdStrategy:
    """Look a strategy up by name.

    >>> resolve_strategy("range_fraction") is range_fraction
    True
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown threshold strategy {name!r}; known: {known}"
        ) from None
