"""Optional cluster post-processing (merging and filtering).

Section 5.2 of the paper notes its 21 yeast clusters overlap by up to 85%
and that *"we did not perform any splitting and merging of clusters"*.
Downstream users usually do want a tidier result list, so this module
provides the standard post-processing passes as explicit, opt-in
functions:

* :func:`drop_contained` removes clusters whose cells are a subset of
  another cluster's;
* :func:`merge_overlapping` greedily merges cluster pairs whose cell
  overlap exceeds a threshold — but only when the merged candidate still
  validates as a reg-cluster (the merge never sacrifices the model
  guarantees);
* :func:`top_k` ranks by cell count and keeps the largest k.

All functions are pure: they return new lists and never mutate inputs.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chain import match_chain_members
from repro.core.cluster import RegCluster
from repro.core.params import MiningParameters
from repro.core.regulation import gene_thresholds
from repro.core.validate import is_valid_reg_cluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["drop_contained", "merge_overlapping", "top_k"]


def drop_contained(clusters: Sequence[RegCluster]) -> List[RegCluster]:
    """Remove clusters entirely covered by another cluster's cells."""
    ranked = sorted(
        clusters,
        key=lambda c: (-(c.n_genes * c.n_conditions), c.chain, c.genes),
    )
    kept: List[RegCluster] = []
    kept_cells: List[FrozenSet[Tuple[int, int]]] = []
    for cluster in ranked:
        cells = cluster.cells()
        if not any(cells <= other for other in kept_cells):
            kept.append(cluster)
            kept_cells.append(cells)
    return kept


def _try_merge(
    a: RegCluster,
    b: RegCluster,
    matrix: ExpressionMatrix,
    params: MiningParameters,
) -> Optional[RegCluster]:
    """Merge two clusters if a valid reg-cluster covers both.

    The merged chain must be a superset chain containing both chains in
    compatible order; the simple (and safe) case handled here is one
    chain being a contiguous or non-contiguous *subsequence* of the
    other.  The gene set is re-derived from the union against the longer
    chain, then validated.
    """
    longer, shorter = (a, b) if a.n_conditions >= b.n_conditions else (b, a)
    chain = longer.chain
    position = {c: i for i, c in enumerate(chain)}
    last = -1
    for c in shorter.chain:
        index = position.get(c)
        if index is None or index < last:
            return None  # not an order-compatible subsequence
        last = index

    candidates = np.asarray(
        sorted(set(longer.genes) | set(shorter.genes)), dtype=np.intp
    )
    thresholds = gene_thresholds(matrix, params.gamma)
    p_members, n_members = match_chain_members(
        matrix.values, thresholds, chain, candidates
    )
    if len(p_members) + len(n_members) < len(candidates):
        return None  # some gene does not comply with the longer chain
    merged = RegCluster(
        chain=chain,
        p_members=tuple(int(g) for g in p_members),
        n_members=tuple(int(g) for g in n_members),
    )
    if not is_valid_reg_cluster(matrix, merged, params):
        return None
    return merged


def merge_overlapping(
    clusters: Sequence[RegCluster],
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    min_overlap: float = 0.5,
    max_passes: int = 10,
) -> List[RegCluster]:
    """Greedily merge validating cluster pairs with high cell overlap.

    Pairs are merged only when the union still satisfies Definition 3.2
    at the given parameters, so the output is a smaller list of equally
    valid clusters.  Runs to a fixed point (bounded by ``max_passes``).
    """
    if not 0.0 < min_overlap <= 1.0:
        raise ValueError("min_overlap must be in (0, 1]")
    current = list(clusters)
    for __ in range(max_passes):
        merged_any = False
        result: List[RegCluster] = []
        used = [False] * len(current)
        for i, a in enumerate(current):
            if used[i]:
                continue
            merged_cluster = None
            for j in range(i + 1, len(current)):
                if used[j]:
                    continue
                b = current[j]
                overlap = max(a.overlap_fraction(b), b.overlap_fraction(a))
                if overlap < min_overlap:
                    continue
                merged_cluster = _try_merge(a, b, matrix, params)
                if merged_cluster is not None:
                    used[i] = used[j] = True
                    result.append(merged_cluster)
                    merged_any = True
                    break
            if not used[i]:
                used[i] = True
                result.append(a)
        current = result
        if not merged_any:
            break
    return drop_contained(current)


def top_k(clusters: Sequence[RegCluster], k: int) -> List[RegCluster]:
    """The k largest clusters by covered cells (deterministic ties)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    ranked = sorted(
        clusters,
        key=lambda c: (-(c.n_genes * c.n_conditions), c.chain, c.genes),
    )
    return ranked[:k]
