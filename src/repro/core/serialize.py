"""JSON serialization of mining results.

Downstream pipelines (enrichment services, notebooks, dashboards) want
mined clusters as plain data.  This module converts clusters and whole
mining results to/from a stable JSON schema.  Names are used when a
matrix is supplied — making the files self-describing — and integer ids
otherwise.

Schema (version 1)::

    {
      "format": "reg-cluster/v1",
      "parameters": {"min_genes": ..., "min_conditions": ...,
                     "gamma": ..., "epsilon": ...},
      "clusters": [
        {"chain": [...], "p_members": [...], "n_members": [...]},
        ...
      ],
      "statistics": {...}          # optional
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.cluster import RegCluster
from repro.core.miner import MiningResult, SearchStatistics
from repro.core.params import MiningParameters
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "cluster_to_dict",
    "cluster_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

FORMAT_TAG = "reg-cluster/v1"


def cluster_to_dict(
    cluster: RegCluster, matrix: Optional[ExpressionMatrix] = None
) -> Dict[str, Any]:
    """One cluster as a JSON-ready dict (names if a matrix is given)."""
    if matrix is None:
        return {
            "chain": list(cluster.chain),
            "p_members": list(cluster.p_members),
            "n_members": list(cluster.n_members),
        }
    return {
        "chain": [matrix.condition_names[c] for c in cluster.chain],
        "p_members": [matrix.gene_names[g] for g in cluster.p_members],
        "n_members": [matrix.gene_names[g] for g in cluster.n_members],
    }


def cluster_from_dict(
    payload: Dict[str, Any], matrix: Optional[ExpressionMatrix] = None
) -> RegCluster:
    """Inverse of :func:`cluster_to_dict`.

    Accepts either integer ids or names (the latter require a matrix).
    """
    def resolve(keys: Sequence[Any], axis: str) -> List[int]:
        out: List[int] = []
        for key in keys:
            if isinstance(key, int):
                out.append(key)
            elif matrix is None:
                raise ValueError(
                    f"cluster payload uses names ({key!r}) but no matrix "
                    f"was supplied to resolve them"
                )
            elif axis == "gene":
                out.append(matrix.gene_index(key))
            else:
                out.append(matrix.condition_index(key))
        return out

    try:
        chain = resolve(payload["chain"], "condition")
        p_members = resolve(payload["p_members"], "gene")
        n_members = resolve(payload.get("n_members", []), "gene")
    except KeyError as missing:
        raise ValueError(f"cluster payload missing key {missing}") from None
    return RegCluster(
        chain=tuple(chain),
        p_members=tuple(p_members),
        n_members=tuple(n_members),
    )


def result_to_dict(
    result: MiningResult, matrix: Optional[ExpressionMatrix] = None
) -> Dict[str, Any]:
    """A whole mining result (parameters, clusters, statistics)."""
    return {
        "format": FORMAT_TAG,
        "parameters": {
            "min_genes": result.parameters.min_genes,
            "min_conditions": result.parameters.min_conditions,
            "gamma": result.parameters.gamma,
            "epsilon": result.parameters.epsilon,
            "max_clusters": result.parameters.max_clusters,
        },
        "clusters": [
            cluster_to_dict(cluster, matrix) for cluster in result.clusters
        ],
        "statistics": result.statistics.as_dict(),
    }


def result_from_dict(
    payload: Dict[str, Any], matrix: Optional[ExpressionMatrix] = None
) -> MiningResult:
    """Inverse of :func:`result_to_dict`."""
    if payload.get("format") != FORMAT_TAG:
        raise ValueError(
            f"unsupported format {payload.get('format')!r}; "
            f"expected {FORMAT_TAG!r}"
        )
    params = MiningParameters(**payload["parameters"])
    clusters = [
        cluster_from_dict(entry, matrix) for entry in payload["clusters"]
    ]
    statistics = SearchStatistics()
    for key, value in payload.get("statistics", {}).items():
        if hasattr(statistics, key):
            setattr(statistics, key, int(value))
    return MiningResult(
        clusters=clusters, statistics=statistics, parameters=params
    )


def save_result(
    result: MiningResult,
    path: Union[str, Path],
    *,
    matrix: Optional[ExpressionMatrix] = None,
    indent: int = 2,
) -> None:
    """Write a mining result to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result, matrix), handle, indent=indent)
        handle.write("\n")


def load_result(
    path: Union[str, Path], *, matrix: Optional[ExpressionMatrix] = None
) -> MiningResult:
    """Read a mining result from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_dict(json.load(handle), matrix)
