"""Coherence measurement (paper section 3.2, Eq. 5-7 and Lemma 3.2).

Two profiles are *shifting-and-scaling* related on a condition subset when
``d_i = s1 * d_j + s2`` for some scaling ``s1`` (of either sign) and
shifting ``s2``.  Lemma 3.2 reduces verification from all condition pairs
to the adjacent pairs of the value-sorted condition sequence, normalized
by a fixed baseline pair:

    H(i, c1, c2, ck, ck+1) = (d_i,ck+1 - d_i,ck) / (d_i,c2 - d_i,c1)

Profiles whose H scores agree step-by-step (within epsilon) form a
coherent cluster; epsilon = 0 recovers the exact affine relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.numeric import near_zero
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "coherence_score",
    "coherence_scores",
    "chain_h_profile",
    "is_shifting_and_scaling",
    "AffineFit",
    "fit_affine",
]


def coherence_score(
    matrix: ExpressionMatrix,
    gene: "int | str",
    baseline: Tuple["int | str", "int | str"],
    step: Tuple["int | str", "int | str"],
) -> float:
    """The H score of Eq. 7 for one gene.

    ``baseline`` is the chain's first condition-pair ``(c1, c2)`` and
    ``step`` an adjacent pair ``(ck, ck+1)``; both given in chain order.

    Raises
    ------
    ZeroDivisionError
        If the baseline pair has equal expression values for the gene.
        (Inside a valid chain this cannot happen: the pair is regulated,
        so its difference strictly exceeds the non-negative threshold.)
    """
    i = matrix.gene_index(gene)
    c1, c2 = (matrix.condition_index(c) for c in baseline)
    ck, ck1 = (matrix.condition_index(c) for c in step)
    row = matrix.values[i]
    denominator = float(row[c2] - row[c1])
    if near_zero(denominator):
        raise ZeroDivisionError(
            f"baseline pair ({baseline[0]}, {baseline[1]}) has zero "
            f"expression difference for gene index {i}"
        )
    return float((row[ck1] - row[ck]) / denominator)


def coherence_scores(
    values: NDArray[np.float64],
    gene_rows: NDArray[np.intp],
    c1: int,
    c2: int,
    ck: int,
    ck1: int,
) -> NDArray[np.float64]:
    """Vectorized H scores for many genes at one chain step.

    ``values`` is the full data array; ``gene_rows`` the gene indices of
    interest.  Genes with a degenerate baseline yield ``inf``/``nan`` and
    must be filtered by the caller (the miner never passes such genes:
    chain membership guarantees a regulated baseline).
    """
    rows = values[gene_rows]
    denominator = rows[:, c2] - rows[:, c1]
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.asarray(
            (rows[:, ck1] - rows[:, ck]) / denominator, dtype=np.float64
        )


def chain_h_profile(
    matrix: ExpressionMatrix, gene: "int | str", chain: Sequence["int | str"]
) -> NDArray[np.float64]:
    """All adjacent-step H scores of one gene along a chain.

    For a chain ``(c1, ..., cn)`` returns the ``n - 1`` values
    ``H(i, c1, c2, ck, ck+1)`` for ``k = 1 .. n-1``; the first entry is
    always exactly ``1.0``.
    """
    if len(chain) < 2:
        raise ValueError("a chain needs at least two conditions")
    i = matrix.gene_index(gene)
    cond = matrix.condition_indices(chain)
    row = matrix.values[i][cond]
    denominator = float(row[1] - row[0])
    if near_zero(denominator):
        raise ZeroDivisionError(
            "baseline pair has zero expression difference"
        )
    return np.asarray(np.diff(row) / denominator, dtype=np.float64)


def is_shifting_and_scaling(
    profile_i: ArrayLike,
    profile_j: ArrayLike,
    *,
    epsilon: float = 0.0,
    rtol: float = 1e-9,
) -> bool:
    """Lemma 3.2 test: are two profiles affinely related on these columns?

    The profiles are compared on the sequence order of ``profile_i``
    sorted ascending (the lemma's premise).  With ``epsilon == 0`` this is
    the exact necessary-and-sufficient condition for
    ``d_i = s1 * d_j + s2``; a positive epsilon allows the same relative
    H-score slack the reg-cluster model allows.

    Degenerate inputs (constant baseline pair) return ``False``: a
    constant profile cannot witness a scaling relation.
    """
    pi = np.asarray(profile_i, dtype=np.float64)
    pj = np.asarray(profile_j, dtype=np.float64)
    if pi.shape != pj.shape or pi.ndim != 1:
        raise ValueError("profiles must be 1-D and of equal length")
    if pi.shape[0] < 2:
        return True
    order = np.argsort(pi, kind="stable")
    vi = pi[order]
    vj = pj[order]
    base_i = float(vi[1] - vi[0])
    base_j = float(vj[1] - vj[0])
    if near_zero(base_i) or near_zero(base_j):
        return False
    h_i = np.diff(vi) / base_i
    h_j = np.diff(vj) / base_j
    tolerance = epsilon + rtol * np.maximum(np.abs(h_i), np.abs(h_j))
    return bool(np.all(np.abs(h_i - h_j) <= tolerance))


@dataclass(frozen=True)
class AffineFit:
    """Least-squares fit of ``d_i ~= s1 * d_j + s2`` (Eq. 5 factors)."""

    scaling: float
    shifting: float
    residual: float

    @property
    def is_positive_correlation(self) -> bool:
        """``s1 > 0``: the profiles are positively correlated (Eq. 5)."""
        return self.scaling > 0

    def apply(self, profile: ArrayLike) -> NDArray[np.float64]:
        """Transform a profile by this fit: ``s1 * profile + s2``."""
        return np.asarray(
            self.scaling * np.asarray(profile, dtype=np.float64)
            + self.shifting,
            dtype=np.float64,
        )


def fit_affine(target: ArrayLike, source: ArrayLike) -> AffineFit:
    """Fit scaling/shifting factors mapping ``source`` onto ``target``.

    Used for reporting the per-gene ``s1``/``s2`` factors of a discovered
    cluster (the quantities the paper prints for its worked examples, e.g.
    ``d_1 = 2.5 * d_3 - 5``).  A constant ``source`` yields scaling 0 and
    shifting equal to the mean of ``target``.
    """
    t = np.asarray(target, dtype=np.float64)
    s = np.asarray(source, dtype=np.float64)
    if t.shape != s.shape or t.ndim != 1:
        raise ValueError("profiles must be 1-D and of equal length")
    if t.shape[0] == 0:
        raise ValueError("cannot fit an empty profile")
    source_centered = s - s.mean()
    variance = float(np.dot(source_centered, source_centered))
    if near_zero(variance):
        scaling = 0.0
    else:
        scaling = float(np.dot(source_centered, t - t.mean()) / variance)
    shifting = float(t.mean() - scaling * s.mean())
    residual = float(
        np.sqrt(np.mean((t - (scaling * s + shifting)) ** 2))
    )
    return AffineFit(scaling=scaling, shifting=shifting, residual=residual)
