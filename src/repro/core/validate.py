"""Literal Definition 3.2 checker, independent of the miner.

The functions here re-verify a candidate reg-cluster directly against the
paper's definition — *every* pair of conditions regulated for every member
gene (not just adjacent pairs), and *every* pair of genes coherent at
every adjacent step — sharing no code with the search.  Tests use it to
certify the miner's output; applications can use it to sanity-check
clusters imported from elsewhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.cluster import RegCluster
from repro.core.params import MiningParameters
from repro.core.regulation import gene_thresholds
from repro.matrix.expression import ExpressionMatrix

__all__ = ["validation_errors", "is_valid_reg_cluster", "check_chain"]


def _pairwise_regulated(
    profile: NDArray[np.float64], threshold: float, *, ascending: bool
) -> bool:
    """Is every pair of chain positions regulated in the right direction?

    ``profile`` holds the gene's values in chain order.  Ascending members
    need ``d[b] - d[a] > threshold`` for every ``a < b``; descending
    members the mirror image.
    """
    diff = profile[None, :] - profile[:, None]  # diff[a, b] = d[b] - d[a]
    upper = np.triu_indices(len(profile), k=1)
    steps = diff[upper]
    if ascending:
        return bool(np.all(steps > threshold))
    return bool(np.all(steps < -threshold))


def validation_errors(
    matrix: ExpressionMatrix,
    cluster: RegCluster,
    params: MiningParameters,
    *,
    atol: float = 1e-9,
    thresholds: Optional[ArrayLike] = None,
) -> List[str]:
    """All ways a cluster violates Definition 3.2 (empty list == valid).

    Checks performed, in order:

    * shape: minimum gene / condition counts;
    * regulation: every member, every *pair* of chain conditions (the
      paper's "increase or decrease ... across any two conditions ... is
      significant");
    * coherence: every pair of members, every adjacent step, H scores
      within ``epsilon``;
    * orientation: the stored chain is the representative one.
    """
    errors: List[str] = []
    chain = cluster.chain
    if cluster.n_conditions < params.min_conditions:
        errors.append(
            f"chain has {cluster.n_conditions} conditions, "
            f"fewer than MinC={params.min_conditions}"
        )
    if cluster.n_genes < params.min_genes:
        errors.append(
            f"cluster has {cluster.n_genes} genes, "
            f"fewer than MinG={params.min_genes}"
        )
    if cluster.n_conditions < 2:
        errors.append("chain needs at least two conditions")
        return errors

    if thresholds is None:
        per_gene = gene_thresholds(matrix, params.gamma)
    else:
        per_gene = np.asarray(thresholds, dtype=np.float64)
    cond = np.asarray(chain, dtype=np.intp)

    for gene in cluster.p_members:
        profile = matrix.values[gene][cond]
        if not _pairwise_regulated(
            profile, float(per_gene[gene]), ascending=True
        ):
            errors.append(
                f"p-member gene {gene} is not up-regulated across every "
                f"condition pair of the chain"
            )
    for gene in cluster.n_members:
        profile = matrix.values[gene][cond]
        if not _pairwise_regulated(
            profile, float(per_gene[gene]), ascending=False
        ):
            errors.append(
                f"n-member gene {gene} is not down-regulated across every "
                f"condition pair of the chain"
            )

    if not errors:
        # H-score coherence; regulation above guarantees non-degenerate
        # baselines for every member.
        members = cluster.genes
        sub = matrix.values[np.ix_(np.asarray(members, dtype=np.intp), cond)]
        baselines = sub[:, 1] - sub[:, 0]
        h = np.diff(sub, axis=1) / baselines[:, None]
        spread = h.max(axis=0) - h.min(axis=0)
        bad_steps = np.flatnonzero(spread > params.epsilon + atol)
        for k in bad_steps:
            errors.append(
                f"step {int(k)} ({chain[k]} -> {chain[k + 1]}): H spread "
                f"{float(spread[k]):.6g} exceeds epsilon={params.epsilon}"
            )

    n_p, n_n = len(cluster.p_members), len(cluster.n_members)
    if n_p < n_n or (
        n_p == n_n and len(chain) >= 2 and chain[0] < chain[-1]
    ):
        errors.append(
            f"chain orientation is not representative "
            f"(|pX|={n_p}, |nX|={n_n}, chain={chain})"
        )
    return errors


def is_valid_reg_cluster(
    matrix: ExpressionMatrix,
    cluster: RegCluster,
    params: MiningParameters,
    *,
    atol: float = 1e-9,
) -> bool:
    """``True`` when :func:`validation_errors` finds nothing."""
    return not validation_errors(matrix, cluster, params, atol=atol)


def check_chain(
    matrix: ExpressionMatrix,
    gene: "int | str",
    chain: Sequence["int | str"],
    gamma: float,
) -> str:
    """Classify one gene against one chain: ``'p'``, ``'n'`` or ``'none'``.

    A small diagnostic helper used by examples and notebook-style
    exploration; unlike the miner this checks all pairs, not just
    adjacent ones (they are equivalent — a property the test suite
    verifies).
    """
    i = matrix.gene_index(gene)
    cond = matrix.condition_indices(chain)
    profile = matrix.values[i][cond]
    threshold = float(gene_thresholds(matrix, gamma)[i])
    if _pairwise_regulated(profile, threshold, ascending=True):
        return "p"
    if _pairwise_regulated(profile, threshold, ascending=False):
        return "n"
    return "none"
