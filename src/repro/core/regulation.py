"""Regulation measurement (paper section 3.1, Eq. 3 and Eq. 4).

A gene ``g_i`` is *up-regulated* from condition ``c_b`` to ``c_a`` when the
increase in its expression level exceeds the gene's own regulation
threshold ``gamma_i``; *down-regulated* when the decrease does.  The
threshold is local to the gene — a fixed fraction ``gamma`` of its
expression range — because individual genes respond to stimuli with
magnitudes differing by orders of magnitude (the hormone-E2 study the
paper cites).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np
from numpy.typing import NDArray

from repro.matrix.expression import ExpressionMatrix

__all__ = ["Regulation", "gene_thresholds", "regulation", "regulation_matrix"]


class Regulation(Enum):
    """Outcome of the regulation test between two conditions of one gene."""

    UP = "up"
    DOWN = "down"
    NONE = "none"

    def inverted(self) -> "Regulation":
        """Swap UP and DOWN (used when matching inverted chains)."""
        if self is Regulation.UP:
            return Regulation.DOWN
        if self is Regulation.DOWN:
            return Regulation.UP
        return Regulation.NONE


def gene_thresholds(
    matrix: ExpressionMatrix, gamma: float
) -> NDArray[np.float64]:
    """Per-gene regulation thresholds ``gamma_i`` (Eq. 4).

    ``gamma_i = gamma * (max_j d_ij - min_j d_ij)``.

    A constant gene has range zero, hence threshold zero; with the strict
    inequality of Eq. 3 such a gene is never regulated between any pair of
    conditions, which is the desired behaviour (a flat profile carries no
    up/down signal).

    >>> from repro.datasets import load_running_example
    >>> [round(float(t), 6) for t in gene_thresholds(load_running_example(), 0.15)]
    [4.5, 4.5, 1.8]
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be within [0, 1], got {gamma}")
    return np.asarray(gamma * matrix.gene_ranges(), dtype=np.float64)


def regulation(
    matrix: ExpressionMatrix,
    gene: "int | str",
    cond_a: "int | str",
    cond_b: "int | str",
    gamma: float,
    *,
    threshold: Optional[float] = None,
) -> Regulation:
    """Evaluate ``Reg(i, c_a, c_b)`` per Eq. 3.

    Returns :data:`Regulation.UP` when ``d_{i,ca} - d_{i,cb} > gamma_i``,
    :data:`Regulation.DOWN` when ``d_{i,ca} - d_{i,cb} < -gamma_i`` and
    :data:`Regulation.NONE` otherwise.  ``threshold`` overrides the
    Eq. 4 default, supporting the alternative thresholds the paper
    mentions (normalized, average-expression, ...).
    """
    i = matrix.gene_index(gene)
    limit = (
        float(gene_thresholds(matrix, gamma)[i])
        if threshold is None
        else float(threshold)
    )
    diff = matrix.value(i, cond_a) - matrix.value(i, cond_b)
    if diff > limit:
        return Regulation.UP
    if diff < -limit:
        return Regulation.DOWN
    return Regulation.NONE


def regulation_matrix(
    matrix: ExpressionMatrix, gene: "int | str", gamma: float
) -> NDArray[np.int8]:
    """Dense pairwise regulation table for one gene.

    Entry ``[a, b]`` is ``+1`` if the gene is up-regulated from ``c_b`` to
    ``c_a``, ``-1`` if down-regulated, ``0`` otherwise.  This is the
    O(n^2) structure the RWave model avoids storing; it is retained as the
    brute-force oracle for tests (Lemma 3.1 verification).
    """
    i = matrix.gene_index(gene)
    row = matrix.values[i]
    threshold = float(gene_thresholds(matrix, gamma)[i])
    diff = row[:, None] - row[None, :]
    table = np.zeros(diff.shape, dtype=np.int8)
    table[diff > threshold] = 1
    table[diff < -threshold] = -1
    return table
