"""Phase 1 of whole-program analysis: the project index.

The file-local rules (RL1xx/RL2xx) see one AST at a time; the
concurrency and fork-safety rules (RL3xx, ``docs/static_analysis.md``)
need to reason about the program: which callables run on HTTP handler
threads versus in executor worker processes, which class attributes are
guarded by which lock, and what a ``pool.submit(...)`` call actually
captures.  :class:`ProjectIndex` computes exactly that, in one pass over
the already-parsed :class:`~repro.analysis.framework.FileContext`
objects:

* **module symbol tables** — top-level functions, classes and module
  globals per module, plus an import map that resolves local names (and
  re-exported names, e.g. ``from repro.service import JobStore``) to
  fully qualified project symbols;
* **class attribute inventories** — every ``self.X = ...`` assignment
  of every method, with the assigned value expressions retained so
  rules can recognise lock members (``threading.Lock()``), file members
  (``open(...)``) and members whose type is another project class;
* **an approximate call graph** — call sites resolved through imports,
  ``self`` dispatch, attribute types inferred from the inventories and
  local variables, ``functools.partial`` wrappers, and project base
  classes;
* **a boundary map** — which functions are entered on HTTP
  handler threads (``do_*`` methods of ``BaseHTTPRequestHandler``
  subclasses), on background threads (``threading.Thread(target=...)``),
  or inside worker processes (``pool.submit(...)`` targets and
  ``ProcessPoolExecutor`` initializers), closed over call-graph
  reachability;
* **lock regions** — ``with self._lock:`` blocks, including a
  *called-with-lock-held* fixpoint so a private helper invoked only
  from locked regions is understood to run under the lock.

Everything here is deliberately approximate (no type checker, no alias
analysis): the index over-resolves names rather than giving up, and the
rules built on it err toward precision — a finding must point at a real
pattern, uncertain cases stay silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.framework import FileContext

__all__ = [
    "AttributeAccess",
    "BoundaryMap",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockId",
    "ModuleInfo",
    "ProjectIndex",
    "SubmissionSite",
    "module_name_for",
]

#: Identity of a lock: ("<module>.<Class>", attr) for instance locks,
#: ("<module>", name) for module-level locks.
LockId = Tuple[str, str]

#: Thread/process contexts a callable may run in (boundary map tags).
HANDLER_THREAD = "handler-thread"
BACKGROUND_THREAD = "background-thread"
WORKER_PROCESS = "worker-process"

#: Constructor calls that make a class member lock-like (guarding state).
_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "Lock",
        "RLock",
    }
)

#: Constructor calls that make a class member process-local: shipping an
#: instance across a fork/pickle boundary loses or breaks the member.
_UNPICKLABLE_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.local",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
        "socket.socket",
        "open",
        "Lock",
        "RLock",
    }
)

#: Methods whose call mutates the receiver container in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)

#: Methods exempt from shared-state rules: they run before (or outside)
#: any sharing — construction, pickling hooks, finalizers.
_LIFECYCLE_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__post_init__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__copy__",
        "__deepcopy__",
        "__del__",
    }
)


def module_name_for(path: Path) -> str:
    """The dotted module name of a source file.

    Walks up through directories that contain an ``__init__.py`` so
    ``src/repro/service/http.py`` maps to ``repro.service.http``
    regardless of where the tree is rooted.  A file outside any package
    maps to its stem.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when the expression is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attr_root(node: ast.expr) -> Optional[str]:
    """``X`` when the expression is rooted at ``self.X`` (any depth)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _self_attr(node) if isinstance(node, ast.Attribute) else None
        if direct is not None:
            return direct
        node = node.value
    return None


def _annotation_names(node: Optional[ast.expr]) -> List[str]:
    """Plain class names inside an annotation (``Optional[X]`` -> X)."""
    if node is None:
        return []
    names: List[str] = []
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name):
            names.append(inner.id)
        elif isinstance(inner, ast.Attribute):
            dotted = _dotted(inner)
            if dotted is not None:
                names.append(dotted)
        elif isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            names.append(inner.value)  # forward reference
    return [n for n in names if n not in ("Optional", "Union", "List", "None")]


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: raw dotted form of the callee (``self._save_matrix``, ``time.sleep``)
    raw: str
    #: locks lexically held at the call (instance/module LockIds)
    locks: FrozenSet[LockId]
    #: resolved project qualname or external dotted name (phase B)
    resolved: Optional[str] = None


@dataclass
class AttributeAccess:
    """One ``self.X`` access inside a method body."""

    attr: str
    #: ``read`` | ``write`` | ``mutcall`` (in-place container mutation)
    kind: str
    node: ast.AST
    locks: FrozenSet[LockId]
    #: for mutcall: the method name invoked on the attribute
    via: Optional[str] = None


@dataclass
class SubmissionSite:
    """One spot where work (and its arguments) crosses to a worker pool.

    Covers ``pool.submit(f, *args)``, ``ProcessPoolExecutor(
    initializer=f, initargs=(...))`` and ``Process(target=f, args=...)``.
    """

    node: ast.Call
    #: resolved qualname of the callable shipped to the worker (if known)
    target: Optional[str]
    #: argument expressions captured across the boundary
    captured: List[ast.expr]
    #: the function containing the submission
    owner: str
    path: Path


@dataclass
class FunctionInfo:
    """Everything the phase-2 rules need about one function or method."""

    qualname: str  # full: "<module>.<Class>.<name>" / "<module>.<name>"
    name: str
    module: str
    path: Path
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    decorators: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    self_accesses: List[AttributeAccess] = field(default_factory=list)
    #: locks this function lexically acquires (``with`` blocks), with the
    #: set of locks already held at the acquisition point
    acquisitions: List[Tuple[LockId, FrozenSet[LockId], ast.AST]] = field(
        default_factory=list
    )
    #: module-level names assigned via ``global`` inside this function
    global_writes: Dict[str, ast.AST] = field(default_factory=dict)
    #: module-level names read (bare Name loads that resolve to globals)
    global_reads: Set[str] = field(default_factory=set)
    #: local variable -> project class qualname (assignment/annotation)
    local_types: Dict[str, str] = field(default_factory=dict)
    #: locks proven held on every project call path into this function
    always_held: Set[LockId] = field(default_factory=set)

    @property
    def is_lifecycle(self) -> bool:
        return self.name in _LIFECYCLE_METHODS


@dataclass
class ClassInfo:
    """One class: bases, attribute inventory, methods, locks."""

    qualname: str  # "<module>.<Class>"
    name: str
    module: str
    path: Path
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # raw dotted names
    decorators: List[str] = field(default_factory=list)
    #: attr -> assigned value expressions (first assignment first)
    attributes: Dict[str, List[ast.expr]] = field(default_factory=dict)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attrs assigned a lock factory (``self._lock = threading.Lock()``)
    lock_attrs: Set[str] = field(default_factory=set)

    @property
    def is_dataclass(self) -> bool:
        return any(
            dec == "dataclass" or dec.endswith(".dataclass")
            for dec in self.decorators
        )

    def field_names(self) -> List[str]:
        """Class-level annotated names (dataclass field inventory)."""
        return [
            stmt.target.id
            for stmt in self.node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ]


@dataclass
class ModuleInfo:
    """One module's symbol table."""

    name: str
    path: Path
    tree: ast.Module
    is_test: bool = False
    #: local name -> fully qualified name it binds (imports, incl. ``as``)
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level assigned names -> first value expression
    globals: Dict[str, Optional[ast.expr]] = field(default_factory=dict)

    def resolve_local(self, name: str) -> Optional[str]:
        """Qualify a local (possibly dotted) name against this module."""
        head, _, rest = name.partition(".")
        target: Optional[str] = None
        if head in self.classes or head in self.functions:
            target = f"{self.name}.{head}"
        elif head in self.imports:
            target = self.imports[head]
        elif head in self.globals:
            target = f"{self.name}.{head}"
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target


@dataclass
class BoundaryMap:
    """Which functions run where (closed over call-graph reachability)."""

    #: full qualname -> set of context tags (HANDLER_THREAD, ...)
    contexts: Dict[str, Set[str]] = field(default_factory=dict)
    #: entry points per tag, before reachability closure
    entries: Dict[str, Set[str]] = field(default_factory=dict)
    #: every worker-bound submission (pool.submit / initargs / Process)
    submissions: List[SubmissionSite] = field(default_factory=list)

    def contexts_of(self, qualname: str) -> Set[str]:
        return self.contexts.get(qualname, set())

    def describe(self, qualname: str) -> str:
        """Human label of the contexts reaching a callable."""
        tags = sorted(self.contexts_of(qualname))
        return ", ".join(tags) if tags else "main thread"


def _direct_nested_defs(node: ast.AST) -> List[ast.AST]:
    """Function/method defs nested directly under ``node`` (at any
    statement depth) but not inside deeper defs."""
    found: List[ast.AST] = []

    def walk(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(child)
            elif not isinstance(child, ast.Lambda):
                walk(child)

    walk(node)
    return found


class _FunctionScanner(ast.NodeVisitor):
    """Collects calls, self-accesses and lock regions of one function."""

    def __init__(
        self,
        info: FunctionInfo,
        owner_class: Optional[ClassInfo],
        module: ModuleInfo,
    ) -> None:
        self.info = info
        self.owner = owner_class
        self.module = module
        self.lock_stack: List[LockId] = []

    # -- lock identification ------------------------------------------

    def _lock_id(self, expr: ast.expr) -> Optional[LockId]:
        attr = _self_attr(expr)
        if attr is not None and self.owner is not None:
            if attr in self.owner.lock_attrs or "lock" in attr.lower():
                return (self.owner.qualname, attr)
            return None
        if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
            return (self.module.name, expr.id)
        dotted = _dotted(expr)
        if dotted is not None and "lock" in dotted.rsplit(".", 1)[-1].lower():
            return (self.module.name, dotted)
        return None

    def _held(self) -> FrozenSet[LockId]:
        return frozenset(self.lock_stack)

    # -- visitors ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        acquired: List[LockId] = []
        for item in node.items:  # type: ignore[attr-defined]
            self.visit(item.context_expr)
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                self.info.acquisitions.append(
                    (lock, self._held() | frozenset(acquired), item.context_expr)
                )
                acquired.append(lock)
        self.lock_stack.extend(acquired)
        for stmt in node.body:  # type: ignore[attr-defined]
            self.visit(stmt)
        for _ in acquired:
            self.lock_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        raw = _dotted(node.func)
        if raw is None and isinstance(node.func, ast.Attribute):
            # e.g. ``pool.submit(...)`` where pool is a subscript — keep
            # the method name so heuristics still see it.
            raw = f"?.{node.func.attr}"
        if raw is not None:
            self.info.calls.append(
                CallSite(node=node, raw=raw, locks=self._held())
            )
        # A method call on self.X mutating a container in place.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            root = _self_attr_root(node.func.value)
            if root is not None:
                kind = "mutcall" if method in _MUTATOR_METHODS else "read"
                self.info.self_accesses.append(
                    AttributeAccess(
                        attr=root,
                        kind=kind,
                        node=node,
                        locks=self._held(),
                        via=method,
                    )
                )
        self.generic_visit(node)

    def _record_target(self, target: ast.expr, node: ast.AST) -> None:
        root = _self_attr_root(target)
        if root is not None:
            self.info.self_accesses.append(
                AttributeAccess(
                    attr=root, kind="write", node=node, locks=self._held()
                )
            )
        elif isinstance(target, ast.Name):
            if target.id in self.info.global_writes_pending:
                self.info.global_writes.setdefault(target.id, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node)
        elif isinstance(target, ast.Subscript):
            self._record_target(target.value, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
            # Local type inference: x = ClassName(...)
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                callee = _dotted(node.value.func)
                if callee is not None:
                    resolved = self.module.resolve_local(callee)
                    if resolved is not None:
                        self.info.local_types.setdefault(target.id, resolved)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None or isinstance(node.target, ast.Attribute):
            self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.info.global_writes_pending.add(name)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.module.globals:
            self.info.global_reads.add(node.id)
        self.generic_visit(node)

    # Nested defs keep their own scope; record their existence but do
    # not merge their bodies into this function's accesses.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.info.node:
            return
        for stmt in node.body:
            self.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is not self.info.node:
            return
        for stmt in node.body:
            self.visit(stmt)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


class ProjectIndex:
    """The whole-program index (see the module docstring).

    Build one with :meth:`build` from the parsed file contexts of an
    analysis run; phase-2 rules receive the instance and query modules,
    classes, the call graph and the boundary map.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> resolved callee qualnames
        self.call_graph: Dict[str, Set[str]] = {}
        self.boundary = BoundaryMap()
        #: functions reachable only from lifecycle methods (see
        #: :meth:`_compute_init_only`)
        self.init_only: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, contexts: Mapping[Path, FileContext]) -> "ProjectIndex":
        index = cls()
        for path, ctx in sorted(contexts.items(), key=lambda kv: str(kv[0])):
            index._index_module(path, ctx)
        index._resolve_calls()
        index._build_boundary()
        index._propagate_locks()
        index._compute_init_only()
        return index

    def _index_module(self, path: Path, ctx: FileContext) -> None:
        name = module_name_for(path)
        module = ModuleInfo(
            name=name, path=path, tree=ctx.tree, is_test=ctx.is_test_file()
        )
        self.modules[name] = module
        package = name.rsplit(".", 1)[0] if "." in name else ""
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    module.imports[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None:
                        module.imports[alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    parts = name.split(".")
                    # level 1 = current package, 2 = its parent, ...
                    anchor = parts[: len(parts) - stmt.level]
                    base = ".".join(anchor + ([stmt.module] if stmt.module else []))
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        module.globals.setdefault(target.id, stmt.value)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._index_function(stmt, module, None)
                module.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, module)
        _ = package  # (kept for clarity; relative imports used it above)

    def _index_class(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        qualname = f"{module.name}.{node.name}"
        cls_info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=module.name,
            path=module.path,
            node=node,
            bases=[d for d in (_dotted(b) for b in node.bases) if d],
            decorators=[
                d
                for d in (
                    _dotted(dec.func if isinstance(dec, ast.Call) else dec)
                    for dec in node.decorator_list
                )
                if d
            ],
        )
        module.classes[node.name] = cls_info
        self.classes[qualname] = cls_info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._index_function(stmt, module, cls_info)
                cls_info.methods[stmt.name] = info
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls_info.attributes.setdefault(target.id, []).append(
                            stmt.value
                        )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.value is not None:
                    cls_info.attributes.setdefault(stmt.target.id, []).append(
                        stmt.value
                    )
                else:
                    cls_info.attributes.setdefault(stmt.target.id, [])
        # Attribute inventory from method bodies (``self.X = ...``).
        for method in cls_info.methods.values():
            for stmt in ast.walk(method.node):
                value: Optional[ast.expr] = None
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets, value = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None or value is None:
                        continue
                    cls_info.attributes.setdefault(attr, []).append(value)
                    callee = (
                        _dotted(value.func)
                        if isinstance(value, ast.Call)
                        else None
                    )
                    if callee is not None:
                        qualified = module.resolve_local(callee) or callee
                        if (
                            qualified in _LOCK_FACTORIES
                            or callee in _LOCK_FACTORIES
                        ):
                            cls_info.lock_attrs.add(attr)

    def _index_function(
        self,
        node: ast.AST,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qualname = (
            f"{owner.qualname}.{name}" if owner is not None
            else f"{module.name}.{name}"
        )
        info = FunctionInfo(
            qualname=qualname,
            name=name,
            module=module.name,
            path=module.path,
            node=node,
            class_name=owner.name if owner is not None else None,
            decorators=[
                d
                for d in (
                    _dotted(dec.func if isinstance(dec, ast.Call) else dec)
                    for dec in node.decorator_list  # type: ignore[attr-defined]
                )
                if d
            ],
        )
        # Parameter annotations seed local type inference.
        args = node.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            for type_name in _annotation_names(arg.annotation):
                resolved = module.resolve_local(type_name)
                if resolved is not None:
                    info.local_types.setdefault(arg.arg, resolved)
        info.global_writes_pending = set()  # type: ignore[attr-defined]
        scanner = _FunctionScanner(info, owner, module)
        scanner.visit(node)
        self.functions[qualname] = info
        # Nested defs get their own FunctionInfo (a closure like the
        # executor's ``make_pool`` still creates pools and submits work;
        # the boundary map must see inside it).  The scanner itself
        # skips nested bodies so accesses are never double-attributed.
        for nested in _direct_nested_defs(node):
            self._index_nested(nested, module, owner, qualname)
        return info

    def _index_nested(
        self,
        node: ast.AST,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        parent_qualname: str,
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        qualname = f"{parent_qualname}.<locals>.{name}"
        if qualname in self.functions:
            return
        info = FunctionInfo(
            qualname=qualname,
            name=name,
            module=module.name,
            path=module.path,
            node=node,
            class_name=owner.name if owner is not None else None,
        )
        info.global_writes_pending = set()  # type: ignore[attr-defined]
        scanner = _FunctionScanner(info, owner, module)
        scanner.visit(node)
        self.functions[qualname] = info
        for nested in _direct_nested_defs(node):
            self._index_nested(nested, module, owner, qualname)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_qualified(self, qualname: str, depth: int = 0) -> str:
        """Follow re-export chains: ``repro.service.JobStore`` ->
        ``repro.service.jobs.JobStore``."""
        if depth > 8 or qualname in self.functions or qualname in self.classes:
            return qualname
        module_part, _, symbol = qualname.rpartition(".")
        module = self.modules.get(module_part)
        if module is not None and symbol in module.imports:
            return self.resolve_qualified(module.imports[symbol], depth + 1)
        return qualname

    def _class_of(self, qualname: str) -> Optional[ClassInfo]:
        return self.classes.get(self.resolve_qualified(qualname))

    def attr_type(self, cls_info: ClassInfo, attr: str) -> Optional[str]:
        """Project-class qualname of ``self.<attr>`` (from its first
        constructor-call assignment), or ``None``."""
        module = self.modules[cls_info.module]
        for value in cls_info.attributes.get(attr, []):
            if isinstance(value, ast.Call):
                callee = _dotted(value.func)
                if callee is None:
                    continue
                resolved = self.resolve_qualified(
                    module.resolve_local(callee) or callee
                )
                if resolved in self.classes:
                    return resolved
        return None

    def method_on(self, class_qualname: str, method: str) -> Optional[str]:
        """Resolve a method on a class or its project base chain."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls_info = self._class_of(current)
            if cls_info is None:
                continue
            if method in cls_info.methods:
                return cls_info.methods[method].qualname
            module = self.modules[cls_info.module]
            for base in cls_info.bases:
                stack.append(module.resolve_local(base) or base)
        return None

    def _resolve_call(self, info: FunctionInfo, site: CallSite) -> None:
        module = self.modules[info.module]
        raw = site.raw
        head, _, rest = raw.partition(".")
        if head == "self" and info.class_name is not None:
            owner = f"{module.name}.{info.class_name}"
            if "." not in rest and rest:
                site.resolved = self.method_on(owner, rest) or raw
                return
            # self.attr.method(...): dispatch through the attr's type.
            attr, _, method = rest.partition(".")
            cls_info = self._class_of(owner)
            if cls_info is not None and method and "." not in method:
                attr_cls = self.attr_type(cls_info, attr)
                if attr_cls is not None:
                    site.resolved = self.method_on(attr_cls, method) or raw
                    return
            site.resolved = raw
            return
        if head in info.local_types:
            target_cls = info.local_types[head]
            if rest and "." not in rest:
                site.resolved = self.method_on(target_cls, rest) or raw
                return
        # Module-level singleton: ``STORE = Store()`` then ``STORE.put()``.
        if head in module.globals and rest and "." not in rest:
            value = module.globals[head]
            if isinstance(value, ast.Call):
                callee = _dotted(value.func)
                if callee is not None:
                    target_cls = self.resolve_qualified(
                        module.resolve_local(callee) or callee
                    )
                    if target_cls in self.classes:
                        site.resolved = self.method_on(target_cls, rest) or raw
                        return
        qualified = module.resolve_local(raw)
        if qualified is not None:
            site.resolved = self.resolve_qualified(qualified)
            return
        site.resolved = raw

    def _resolve_calls(self) -> None:
        for info in self.functions.values():
            edges: Set[str] = set()
            for site in info.calls:
                self._resolve_call(info, site)
                if site.resolved in self.functions:
                    edges.add(site.resolved)
                elif site.resolved in self.classes:
                    init = self.method_on(site.resolved, "__init__")
                    if init is not None:
                        edges.add(init)
            self.call_graph[info.qualname] = edges

    # ------------------------------------------------------------------
    # Boundary map
    # ------------------------------------------------------------------

    def _callable_ref(
        self, info: FunctionInfo, expr: ast.expr
    ) -> Optional[str]:
        """Resolve an expression used as a callable reference."""
        # functools.partial(f, ...) -> f
        if isinstance(expr, ast.Call):
            callee = _dotted(expr.func)
            if callee in ("functools.partial", "partial") and expr.args:
                return self._callable_ref(info, expr.args[0])
            return None
        raw = _dotted(expr)
        if raw is None:
            return None
        site = CallSite(node=ast.Call(func=expr, args=[], keywords=[]),
                       raw=raw, locks=frozenset())
        self._resolve_call(info, site)
        return site.resolved

    def _is_handler_class(self, cls_info: ClassInfo) -> bool:
        module = self.modules[cls_info.module]
        seen: Set[str] = set()
        stack = [cls_info.qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current.rsplit(".", 1)[-1].endswith("BaseHTTPRequestHandler"):
                return True
            inner = self._class_of(current)
            if inner is None:
                continue
            inner_module = self.modules[inner.module]
            for base in inner.bases:
                if base.rsplit(".", 1)[-1].endswith("BaseHTTPRequestHandler"):
                    return True
                stack.append(inner_module.resolve_local(base) or base)
        _ = module
        return False

    def _partial_captures(self, expr: ast.expr) -> List[ast.expr]:
        if isinstance(expr, ast.Call):
            callee = _dotted(expr.func)
            if callee in ("functools.partial", "partial"):
                return list(expr.args[1:]) + [kw.value for kw in expr.keywords]
        return []

    def _build_boundary(self) -> None:
        entries: Dict[str, Set[str]] = {
            HANDLER_THREAD: set(),
            BACKGROUND_THREAD: set(),
            WORKER_PROCESS: set(),
        }
        # HTTP handler entry points: do_* / log_* / handle* methods of
        # BaseHTTPRequestHandler subclasses run on per-request threads.
        for cls_info in self.classes.values():
            if not self._is_handler_class(cls_info):
                continue
            for name, method in cls_info.methods.items():
                if (
                    name.startswith("do_")
                    or name.startswith("log_")
                    or name.startswith("handle")
                ):
                    entries[HANDLER_THREAD].add(method.qualname)
        for info in self.functions.values():
            for site in info.calls:
                node = site.node
                resolved = site.resolved or site.raw
                tail = resolved.rsplit(".", 1)[-1]
                # threading.Thread(target=...) / Process(target=...)
                if tail in ("Thread", "Process", "Timer"):
                    tag = (
                        WORKER_PROCESS if tail == "Process"
                        else BACKGROUND_THREAD
                    )
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target = self._callable_ref(info, kw.value)
                            if target in self.functions:
                                entries[tag].add(target)
                            if tag == WORKER_PROCESS:
                                captured = [
                                    e
                                    for k in node.keywords
                                    if k.arg == "args"
                                    and isinstance(k.value, (ast.Tuple, ast.List))
                                    for e in k.value.elts
                                ] + self._partial_captures(kw.value)
                                self.boundary.submissions.append(
                                    SubmissionSite(
                                        node=node,
                                        target=target,
                                        captured=captured,
                                        owner=info.qualname,
                                        path=info.path,
                                    )
                                )
                # ProcessPoolExecutor(initializer=..., initargs=(...))
                if tail == "ProcessPoolExecutor":
                    target = None
                    captured: List[ast.expr] = []
                    for kw in node.keywords:
                        if kw.arg == "initializer":
                            target = self._callable_ref(info, kw.value)
                            captured += self._partial_captures(kw.value)
                        elif kw.arg == "initargs" and isinstance(
                            kw.value, (ast.Tuple, ast.List)
                        ):
                            captured += list(kw.value.elts)
                    if target is not None or captured:
                        if target in self.functions:
                            entries[WORKER_PROCESS].add(target)
                        self.boundary.submissions.append(
                            SubmissionSite(
                                node=node,
                                target=target,
                                captured=captured,
                                owner=info.qualname,
                                path=info.path,
                            )
                        )
                # <pool>.submit(f, *args) / <pool>.apply_async(f, args)
                if tail in ("submit", "apply_async") and node.args:
                    receiver = site.raw.rsplit(".", 1)[0]
                    looks_like_pool = (
                        "pool" in receiver.lower()
                        or "executor" in receiver.lower()
                        or (
                            receiver in info.local_types
                            and "Executor"
                            in info.local_types[receiver].rsplit(".", 1)[-1]
                        )
                    )
                    if looks_like_pool:
                        target = self._callable_ref(info, node.args[0])
                        if target in self.functions:
                            entries[WORKER_PROCESS].add(target)
                        self.boundary.submissions.append(
                            SubmissionSite(
                                node=node,
                                target=target,
                                captured=list(node.args[1:])
                                + self._partial_captures(node.args[0]),
                                owner=info.qualname,
                                path=info.path,
                            )
                        )
        self.boundary.entries = entries
        # Reachability closure over the call graph.
        contexts: Dict[str, Set[str]] = {}
        for tag, roots in entries.items():
            stack = list(roots)
            seen: Set[str] = set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                contexts.setdefault(current, set()).add(tag)
                stack.extend(self.call_graph.get(current, ()))
        self.boundary.contexts = contexts

    # ------------------------------------------------------------------
    # Called-with-lock-held fixpoint
    # ------------------------------------------------------------------

    def _propagate_locks(self) -> None:
        """Compute ``FunctionInfo.always_held``: locks held on *every*
        project call path into a function (so a private helper invoked
        only from locked regions counts as running under the lock)."""
        # call sites per callee: (caller, lexically-held locks)
        incoming: Dict[str, List[Tuple[str, FrozenSet[LockId]]]] = {}
        for info in self.functions.values():
            for site in info.calls:
                if site.resolved in self.functions:
                    incoming.setdefault(site.resolved, []).append(
                        (info.qualname, site.locks)
                    )
        for _ in range(6):  # small fixpoint; project call chains are short
            changed = False
            for qualname, sites in incoming.items():
                callee = self.functions[qualname]
                held_sets = []
                for caller, locks in sites:
                    caller_info = self.functions[caller]
                    held_sets.append(
                        set(locks) | caller_info.always_held
                    )
                new_always = (
                    set.intersection(*held_sets) if held_sets else set()
                )
                if new_always != callee.always_held:
                    callee.always_held = new_always
                    changed = True
            if not changed:
                break

    def _compute_init_only(self) -> None:
        """Functions reachable *only* from lifecycle methods
        (``__init__`` and friends) run before the object is shared and
        are exempt from shared-state rules, like the lifecycle methods
        themselves (``ArtifactCache._load_manifest``,
        ``MiningService._register_metrics``)."""
        incoming: Dict[str, Set[str]] = {}
        for info in self.functions.values():
            for site in info.calls:
                if site.resolved in self.functions:
                    incoming.setdefault(site.resolved, set()).add(
                        info.qualname
                    )
        self.init_only: Set[str] = set()
        for _ in range(6):
            changed = False
            for qualname, callers in incoming.items():
                if (
                    qualname in self.init_only
                    or qualname in self.boundary.contexts
                ):
                    continue
                info = self.functions[qualname]
                if info.is_lifecycle:
                    continue
                if all(
                    self.functions[caller].is_lifecycle
                    or caller in self.init_only
                    for caller in callers
                ):
                    self.init_only.add(qualname)
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # Rule-facing queries
    # ------------------------------------------------------------------

    def iter_service_classes(self) -> Iterator[ClassInfo]:
        """Classes that own at least one lock member (shared by design),
        skipping test modules."""
        for cls_info in self.classes.values():
            if cls_info.lock_attrs and not self.modules[cls_info.module].is_test:
                yield cls_info

    def effective_locks(
        self, info: FunctionInfo, site_locks: FrozenSet[LockId]
    ) -> Set[LockId]:
        """Locks held at an access: lexical + always-held-by-callers."""
        return set(site_locks) | info.always_held

    def guarded_attrs(self, cls_info: ClassInfo, lock: str) -> Set[str]:
        """Attributes of a class accessed at least once while holding
        ``(cls, lock)`` — the inferred *guarded-by* relation."""
        lock_id: LockId = (cls_info.qualname, lock)
        guarded: Set[str] = set()
        for method in cls_info.methods.values():
            if method.is_lifecycle:
                continue
            for access in method.self_accesses:
                if access.attr in cls_info.lock_attrs:
                    continue
                if lock_id in self.effective_locks(method, access.locks):
                    guarded.add(access.attr)
        return guarded

    def is_self_synchronizing(
        self, cls_info: ClassInfo, attr: str
    ) -> bool:
        """Does ``self.<attr>`` hold an object that guards itself?

        True for project classes owning their own lock and for the
        thread-safe stdlib types (queues, events, locks themselves).
        """
        attr_cls = self.attr_type(cls_info, attr)
        if attr_cls is not None:
            target = self.classes.get(attr_cls)
            if target is not None and target.lock_attrs:
                return True
        for value in cls_info.attributes.get(attr, []):
            if isinstance(value, ast.Call):
                callee = _dotted(value.func) or ""
                tail = callee.rsplit(".", 1)[-1]
                if tail in (
                    "Queue",
                    "LifoQueue",
                    "PriorityQueue",
                    "SimpleQueue",
                    "Event",
                    "Lock",
                    "RLock",
                    "Condition",
                    "Semaphore",
                    "BoundedSemaphore",
                ):
                    return True
        return False

    def unpicklable_members(self, class_qualname: str) -> List[str]:
        """Attributes of a class (or its project bases) whose values are
        process-local — meaningless or broken after pickling/fork.

        Classes that define their own pickling protocol
        (``__getstate__``/``__setstate__`` or ``__reduce__``) are
        trusted and report no members.
        """
        cls_info = self._class_of(class_qualname)
        if cls_info is None:
            return []
        if (
            ("__getstate__" in cls_info.methods
             and "__setstate__" in cls_info.methods)
            or "__reduce__" in cls_info.methods
            or "__reduce_ex__" in cls_info.methods
        ):
            return []
        module = self.modules[cls_info.module]
        found: List[str] = []
        for attr, values in sorted(cls_info.attributes.items()):
            for value in values:
                if not isinstance(value, ast.Call):
                    continue
                callee = _dotted(value.func)
                if callee is None:
                    continue
                qualified = module.resolve_local(callee) or callee
                if (
                    qualified in _UNPICKLABLE_FACTORIES
                    or callee in _UNPICKLABLE_FACTORIES
                ):
                    found.append(attr)
                    break
        return found

    def infer_expr_class(
        self, info: FunctionInfo, expr: ast.expr
    ) -> Optional[str]:
        """Project class of an expression: a typed local/parameter, a
        ``self.attr`` with an inventory type, or a direct constructor
        call."""
        if isinstance(expr, ast.Name):
            return info.local_types.get(expr.id)
        attr = _self_attr(expr)
        if attr is not None and info.class_name is not None:
            owner = self._class_of(f"{info.module}.{info.class_name}")
            if owner is not None:
                return self.attr_type(owner, attr)
        if isinstance(expr, ast.Call):
            callee = _dotted(expr.func)
            if callee is not None:
                module = self.modules[info.module]
                resolved = self.resolve_qualified(
                    module.resolve_local(callee) or callee
                )
                if resolved in self.classes:
                    return resolved
        return None
