"""The reglint engine: rules, registry, suppressions, reports.

A *rule* inspects one parsed file (a :class:`FileContext`) and yields
:class:`Violation` objects.  Rules register themselves by id through
:func:`register_rule`; the driver (:func:`analyze_paths`) walks the
requested paths, parses every Python file once, runs each applicable
rule, filters suppressed findings and aggregates everything into a
:class:`Report`.

Suppression syntax (matching the established ``# noqa`` idiom but
namespaced so the two can coexist):

``# reglint: disable=RL101``
    suppress the named rule(s) on this physical line (comma-separated);
``# reglint: disable=all``
    suppress every rule on this line;
``# reglint: disable-file=RL101``
    suppress the named rule(s) for the whole file (conventionally placed
    near the top, honoured anywhere);
``# reglint: disable-file=all``
    skip the file entirely.
"""

from __future__ import annotations

import ast
import enum
import hashlib
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ProjectIndex

__all__ = [
    "Severity",
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register_rule",
    "get_rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "Report",
]


class Severity(enum.IntEnum):
    """Rule severity; the report's exit code ignores INFO findings."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location."""

    rule_id: str
    path: Path
    line: int
    column: int
    message: str
    severity: Severity

    def render(self) -> str:
        """``path:line:col: RULE severity: message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule may inspect about one file.

    The tree is parsed once and shared across rules; ``extra`` carries
    driver-level configuration (e.g. the paper-reference inventory used
    by the cross-reference rule).
    """

    path: Path
    source: str
    tree: ast.Module
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def posix_path(self) -> str:
        return self.path.as_posix()

    def is_test_file(self) -> bool:
        """Heuristic test-file check (tests keep exact-value assertions)."""
        posix = self.posix_path
        name = self.path.name
        return (
            "/tests/" in posix
            or posix.startswith("tests/")
            or name.startswith("test_")
            or name == "conftest.py"
        )

    def in_package(self, *fragments: str) -> bool:
        """Does the file live under any of the given path fragments?"""
        posix = self.posix_path
        return any(fragment in posix for fragment in fragments)


class Rule:
    """Base class for reglint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``applies_to`` lets a rule scope itself (e.g. hot-path-only rules,
    or rules that skip test files).
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        *,
        severity: Optional[Severity] = None,
    ) -> Violation:
        return Violation(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity if severity is None else severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program (phase 2) rules.

    File-local rules see one :class:`FileContext` at a time; project
    rules instead receive the :class:`~repro.analysis.project
    .ProjectIndex` built over *every* parsed file of the run and may
    reason across modules (call graph, lock regions, thread/process
    boundaries).  They are excluded from default runs — the driver only
    instantiates them under ``--whole-program`` or when explicitly
    selected — so plain ``make lint`` stays file-local and fast.

    Per-line and per-file ``# reglint: disable=...`` suppressions are
    honoured for project findings exactly as for file-local ones: the
    driver keeps each file's suppression table and filters phase-2
    findings against the table of the file they land in.
    """

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: "ProjectIndex") -> Iterator[Violation]:
        raise NotImplementedError

    def project_violation(
        self,
        path: Path,
        node: ast.AST,
        message: str,
        *,
        severity: Optional[Severity] = None,
    ) -> Violation:
        return Violation(
            rule_id=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity if severity is None else severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} must define a non-empty id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def get_rule(rule_id: str) -> Type[Rule]:
    """Look one rule class up by id."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}") from None


def all_rules() -> Tuple[Type[Rule], ...]:
    """Every registered rule class, sorted by id."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*reglint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class _Suppressions:
    """Parsed suppression comments of one file."""

    by_line: Dict[int, Set[str]]
    file_wide: Set[str]

    def hides(self, violation: Violation) -> bool:
        if "all" in self.file_wide or violation.rule_id in self.file_wide:
            return True
        ids = self.by_line.get(violation.line)
        return ids is not None and ("all" in ids or violation.rule_id in ids)


def _parse_suppressions(source: str) -> _Suppressions:
    """Extract suppression comments via the token stream.

    Tokenizing (rather than regexing raw lines) means a ``# reglint:``
    sequence inside a string literal is never mistaken for a directive.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")}
            ids = {part for part in ids if part}
            if match.group("scope") == "disable-file":
                file_wide |= ids
            else:
                by_line.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # the AST parse already succeeded; a trailing-token glitch is benign
    return _Suppressions(by_line=by_line, file_wide=file_wide)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _parse_error(path: Path, exc: SyntaxError) -> Violation:
    return Violation(
        rule_id="RL000",
        path=path,
        line=exc.lineno or 1,
        column=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
        severity=Severity.ERROR,
    )


def _run_file_rules(
    ctx: FileContext,
    suppressions: _Suppressions,
    rules: Sequence[Rule],
) -> List[Violation]:
    if "all" in suppressions.file_wide:
        return []
    findings: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not suppressions.hides(violation):
                findings.append(violation)
    return findings


def analyze_file(
    path: Path,
    rules: Sequence[Rule],
    *,
    extra: Optional[Dict[str, object]] = None,
) -> List[Violation]:
    """Run the given file-local rules over one file, honouring
    suppressions.

    A file that fails to parse yields a single synthetic ``RL000``
    error so broken files cannot silently pass the gate.
    """
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [_parse_error(path, exc)]
    ctx = FileContext(path=path, source=source, tree=tree, extra=dict(extra or {}))
    return _run_file_rules(ctx, _parse_suppressions(source), rules)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class Report:
    """Aggregate result of one analysis run."""

    violations: List[Violation]
    files_checked: int

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any WARNING-or-worse finding exists."""
        return (
            1
            if any(v.severity >= Severity.WARNING for v in self.violations)
            else 0
        )

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        noun = "file" if self.files_checked == 1 else "files"
        if self.violations:
            lines.append(
                f"reglint: {len(self.violations)} finding(s) in "
                f"{self.files_checked} {noun}"
            )
        else:
            lines.append(f"reglint: {self.files_checked} {noun} clean")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "violations": [
                {
                    "rule": v.rule_id,
                    "path": str(v.path),
                    "line": v.line,
                    "column": v.column,
                    "severity": str(v.severity),
                    "message": v.message,
                }
                for v in self.violations
            ],
        }


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------

_CACHE_VERSION = 1


def _rules_signature(
    rules: Sequence[Rule], extra: Optional[Dict[str, object]]
) -> str:
    """Digest identifying the file-local rule set and its inputs.

    The paper-reference inventory is part of the signature: editing
    PAPER.md must invalidate cached RL201 results even though the
    source files themselves are unchanged.
    """
    hasher = hashlib.sha256()
    hasher.update(",".join(sorted(rule.id for rule in rules)).encode())
    references = (extra or {}).get("paper_references")
    citations = getattr(references, "citations", None)
    if citations is not None:
        hasher.update(repr(sorted(map(str, citations))).encode())
    return hasher.hexdigest()


def _load_cache(cache_path: Path) -> Dict[str, Dict[str, object]]:
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def _cached_violations(
    entry: Optional[Dict[str, object]], digest: str, signature: str, path: Path
) -> Optional[List[Violation]]:
    if (
        not isinstance(entry, dict)
        or entry.get("digest") != digest
        or entry.get("rules") != signature
    ):
        return None
    try:
        return [
            Violation(
                rule_id=str(raw["rule"]),
                path=path,
                line=int(raw["line"]),
                column=int(raw["column"]),
                message=str(raw["message"]),
                severity=Severity[str(raw["severity"]).upper()],
            )
            for raw in entry.get("violations", [])
        ]
    except (KeyError, TypeError, ValueError):
        return None


def _encode_violations(violations: Sequence[Violation]) -> List[Dict[str, object]]:
    return [
        {
            "rule": v.rule_id,
            "line": v.line,
            "column": v.column,
            "message": v.message,
            "severity": str(v.severity),
        }
        for v in violations
    ]


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    *,
    extra: Optional[Dict[str, object]] = None,
    cache_path: Optional[Path] = None,
) -> Report:
    """Analyze every Python file under the given paths.

    File-local rules run first (phase 1); when the rule list contains
    :class:`ProjectRule` instances, a :class:`~repro.analysis.project
    .ProjectIndex` is built over every successfully parsed file and the
    project rules run over it (phase 2), with each finding filtered
    against the suppression table of the file it lands in.

    ``cache_path`` enables incremental analysis: file-local results are
    keyed on the file's content digest plus the rule-set signature, so
    unchanged files skip parsing and checking entirely.  (Phase 2 is
    never cached — its findings depend on *other* files — but it is
    only requested by the slower ``lint-full`` entry points.)
    """
    if rules is None:
        rules = [cls() for cls in all_rules()]
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]

    cache = _load_cache(cache_path) if cache_path is not None else {}
    fresh_cache: Dict[str, Dict[str, object]] = {}
    signature = _rules_signature(file_rules, extra)

    violations: List[Violation] = []
    contexts: Dict[Path, FileContext] = {}
    suppression_tables: Dict[str, _Suppressions] = {}
    files_checked = 0
    for file_path in _iter_python_files(paths):
        files_checked += 1
        source = file_path.read_text(encoding="utf-8")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        key = file_path.resolve().as_posix()
        cached = _cached_violations(cache.get(key), digest, signature, file_path)
        if cached is not None and not project_rules:
            violations.extend(cached)
            fresh_cache[key] = cache[key]
            continue
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            file_findings = [_parse_error(file_path, exc)]
            violations.extend(file_findings)
            fresh_cache[key] = {
                "digest": digest,
                "rules": signature,
                "violations": _encode_violations(file_findings),
            }
            continue
        ctx = FileContext(
            path=file_path, source=source, tree=tree, extra=dict(extra or {})
        )
        suppressions = _parse_suppressions(source)
        if "all" not in suppressions.file_wide:
            contexts[file_path] = ctx
            suppression_tables[ctx.posix_path] = suppressions
        if cached is not None:
            file_findings = cached
        else:
            file_findings = _run_file_rules(ctx, suppressions, file_rules)
        violations.extend(file_findings)
        fresh_cache[key] = {
            "digest": digest,
            "rules": signature,
            "violations": _encode_violations(file_findings),
        }

    if project_rules and contexts:
        from repro.analysis.project import ProjectIndex

        index = ProjectIndex.build(contexts)
        for rule in project_rules:
            for violation in rule.check_project(index):
                table = suppression_tables.get(violation.path.as_posix())
                if table is None or not table.hides(violation):
                    violations.append(violation)

    if cache_path is not None:
        payload = {"version": _CACHE_VERSION, "entries": fresh_cache}
        try:
            cache_path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:  # reglint: disable=RL321
            pass  # best-effort cache, not a checkpoint: losing it only
            # costs a re-analysis on the next run

    violations.sort(key=lambda v: (str(v.path), v.line, v.column, v.rule_id))
    return Report(violations=violations, files_checked=files_checked)
