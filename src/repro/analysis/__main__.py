"""CLI driver: ``python -m repro.analysis [paths...]``.

Exit status: 0 when every checked file is clean (INFO findings do not
gate), 1 when any WARNING/ERROR finding survives suppression, 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import all_rules, analyze_paths, load_paper_references


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reglint: paper-aware static analysis for reg-cluster",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--paper",
        type=Path,
        default=None,
        help="explicit PAPER.md path for the cross-reference rule "
        "(default: walk up from the current directory)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rule_classes = all_rules()
    if args.list_rules:
        for cls in rule_classes:
            print(f"{cls.id}  [{cls.severity}]  {cls.title}")
            print(f"       {cls.rationale}")
        return 0

    selected = _split_ids(args.select)
    disabled = set(_split_ids(args.disable) or [])
    known = {cls.id for cls in rule_classes}
    for requested in (selected or []) + sorted(disabled):
        if requested not in known:
            parser.error(f"unknown rule id {requested!r}")
    rules = [
        cls()
        for cls in rule_classes
        if (selected is None or cls.id in selected) and cls.id not in disabled
    ]

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(map(str, missing))}")

    references = load_paper_references(args.paper)
    report = analyze_paths(paths, rules, extra={"paper_references": references})

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
