"""CLI driver: ``python -m repro.analysis [paths...]``.

Exit status: 0 when every checked file is clean (INFO findings do not
gate, baselined findings do not gate), 1 when any WARNING/ERROR finding
survives suppression and baseline, 2 on usage errors.

Two-phase operation: file-local rules (RL1xx/RL2xx) always run; the
whole-program rules (RL3xx) run only under ``--whole-program`` or when
explicitly named via ``--select``, so the default invocation (and
``make lint``) stays fast and file-local.

A ``reglint-baseline.json`` in the current directory is picked up
automatically (override with ``--baseline``, disable with
``--no-baseline``); see ``docs/static_analysis.md`` for the baseline
and SARIF workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import all_rules, analyze_paths, load_paper_references
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    build_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import ProjectRule
from repro.analysis.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reglint: paper-aware static analysis for reg-cluster",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--paper",
        type=Path,
        default=None,
        help="explicit PAPER.md path for the cross-reference rule "
        "(default: walk up from the current directory)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all file-local "
        "rules; naming an RL3xx rule implies its whole-program phase)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="also run the whole-program (RL3xx) rules over a project "
        "index built from every analyzed file",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=f"baseline file of accepted findings (default: "
        f"./{DEFAULT_BASELINE_NAME} when present); only findings not in "
        f"the baseline gate",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report and gate on everything",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings "
        "(deterministic: digest-keyed, sorted) and exit 0",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="PATH",
        help="incremental-analysis cache file; file-local results are "
        "reused for files whose content digest is unchanged",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _list_rules() -> None:
    for cls in all_rules():
        phase = "whole-program" if issubclass(cls, ProjectRule) else "file-local"
        print(f"{cls.id}  [{cls.severity}]  ({phase})  {cls.title}")
        print(f"       {cls.rationale}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    rule_classes = all_rules()
    if args.list_rules:
        _list_rules()
        return 0

    selected = _split_ids(args.select)
    disabled = set(_split_ids(args.disable) or [])
    known = {cls.id for cls in rule_classes}
    for requested in (selected or []) + sorted(disabled):
        if requested not in known:
            parser.error(f"unknown rule id {requested!r}")
    rules = []
    for cls in rule_classes:
        if cls.id in disabled:
            continue
        if selected is not None:
            if cls.id in selected:
                rules.append(cls())
            continue
        # Default rule set: every file-local rule; project rules only
        # when the whole-program phase was requested.
        if issubclass(cls, ProjectRule) and not args.whole_program:
            continue
        rules.append(cls())

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(map(str, missing))}")
    if args.baseline is not None and args.no_baseline:
        parser.error("--baseline and --no-baseline are mutually exclusive")

    references = load_paper_references(args.paper)
    report = analyze_paths(
        paths,
        rules,
        extra={"paper_references": references},
        cache_path=args.cache,
    )

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = Path(DEFAULT_BASELINE_NAME)
        if default.is_file():
            baseline_path = default

    if args.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        write_baseline(build_baseline(report.violations), target)
        print(
            f"reglint: wrote {len(report.violations)} finding(s) to {target}"
        )
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load baseline: {exc}")
    baselined = apply_baseline(report, baseline)

    if args.format == "json":
        payload = report.to_dict()
        payload["fresh"] = len(baselined.fresh)
        payload["baselined"] = len(baselined.baselined)
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        document = render_sarif(
            report,
            [type(rule) for rule in rules],
            baselined=baselined if baseline is not None else None,
        )
        print(json.dumps(document, indent=2))
    else:
        print(baselined.render())
    return baselined.exit_code


if __name__ == "__main__":
    sys.exit(main())
