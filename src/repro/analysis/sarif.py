"""SARIF 2.1.0 output for reglint.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca code-scanning UIs ingest; emitting it lets the ``reglint-full``
CI job upload findings as an artifact that GitHub's code-scanning view
(or any SARIF viewer) renders in place.

The document is the minimal valid subset: one run, the tool's rule
catalog under ``tool.driver.rules``, one ``result`` per finding with a
``physicalLocation``.  When a baseline was applied, every result
carries ``baselineState`` (``new`` for fresh findings, ``unchanged``
for baselined ones) so viewers can fold the accepted set away.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.baseline import BaselinedReport
from repro.analysis.framework import Report, Rule, Severity, Violation

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_descriptor(cls: Type[Rule]) -> Dict[str, object]:
    return {
        "id": cls.id,
        "name": cls.__name__,
        "shortDescription": {"text": cls.title},
        "fullDescription": {"text": cls.rationale},
        "defaultConfiguration": {"level": _LEVELS[cls.severity]},
    }


def _result(
    violation: Violation,
    baseline_state: Optional[str],
    rule_indices: Dict[str, int],
) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": violation.rule_id,
        "level": _LEVELS[violation.severity],
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.as_posix(),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.column,
                    },
                }
            }
        ],
    }
    if violation.rule_id in rule_indices:
        result["ruleIndex"] = rule_indices[violation.rule_id]
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def render_sarif(
    report: Report,
    rules: Sequence[Type[Rule]],
    *,
    baselined: Optional[BaselinedReport] = None,
) -> Dict[str, object]:
    """The SARIF document as a plain dict (caller json-serializes)."""
    ordered_rules = sorted(rules, key=lambda c: c.id)
    rule_indices = {cls.id: idx for idx, cls in enumerate(ordered_rules)}
    results: List[Dict[str, object]] = []
    if baselined is not None:
        for violation in baselined.fresh:
            results.append(_result(violation, "new", rule_indices))
        for violation in baselined.baselined:
            results.append(_result(violation, "unchanged", rule_indices))
    else:
        for violation in report.violations:
            results.append(_result(violation, None, rule_indices))
    results.sort(
        key=lambda r: (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],  # type: ignore[index]
            r["locations"][0]["physicalLocation"]["region"]["startLine"],  # type: ignore[index]
            r["ruleId"],
        )
    )
    return {
        "version": _SARIF_VERSION,
        "$schema": _SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reglint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": [
                            _rule_descriptor(cls) for cls in ordered_rules
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
