"""RL32x resource/exception hygiene and RL33x API-drift rules.

The retry and checkpoint paths added in PR 4 re-enter the same code
many times; a file handle leaked once per retry exhausts descriptors,
and an exception swallowed between a checkpoint write and its atomic
rename leaves a torn checkpoint that the next resume trusts.  RL330
extends RL201's paper-aware spirit to the service API: a public
function whose docstring documents parameters its signature no longer
has is actively misleading callers.

These rules run in the whole-program phase because their exemptions
need the project index: a ``self._stream = open(...)`` assignment is
fine when the owning class manages the handle's lifecycle (defines
``close``/``__exit__``/``__del__`` — the :class:`~repro.obs.trace
.Tracer` pattern), which only the class inventory can establish.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Optional, Set

from repro.analysis.framework import ProjectRule, Severity, Violation, register_rule
from repro.analysis.project import ClassInfo, FunctionInfo, ProjectIndex

__all__ = [
    "UnmanagedResourceRule",
    "SwallowedCheckpointErrorRule",
    "DocstringSignatureDriftRule",
]

_OPENERS = frozenset({"open", "socket.socket", "socket.create_connection"})


def _is_opener(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _OPENERS
    if isinstance(func, ast.Attribute):
        if func.attr == "open":  # Path(...).open(), self.path.open()
            return True
        base = func.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{func.attr}" in _OPENERS
    return False


def _finally_closes(node: ast.AST, name: str) -> bool:
    """Does any ``finally`` (or ``with``-suite) under ``node`` close
    ``name``?"""
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Try):
            continue
        for stmt in ast.walk(ast.Module(body=inner.finalbody, type_ignores=[])):
            if (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Attribute)
                and stmt.func.attr == "close"
            ):
                target = stmt.func.value
                if isinstance(target, ast.Name) and target.id == name:
                    return True
    return False


@register_rule
class UnmanagedResourceRule(ProjectRule):
    id = "RL320"
    title = "File/socket opened without with/finally on its lifetime"
    severity = Severity.WARNING
    rationale = (
        "On retry and checkpoint paths the same code runs many times; a "
        "handle opened without `with` (or a finally-close) leaks once per "
        "attempt until the process hits EMFILE. Classes that own a handle "
        "for their lifetime are exempt when they define close()/__exit__()."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for info in project.functions.values():
            if project.modules[info.module].is_test:
                continue
            yield from self._check_function(project, info)

    def _owner_manages_lifecycle(
        self, project: ProjectIndex, info: FunctionInfo
    ) -> bool:
        if info.class_name is None:
            return False
        cls_info = project.classes.get(f"{info.module}.{info.class_name}")
        if cls_info is None:
            return False
        return bool(
            {"close", "__exit__", "__del__", "shutdown", "stop"}
            & set(cls_info.methods)
        )

    def _check_function(
        self, project: ProjectIndex, info: FunctionInfo
    ) -> Iterator[Violation]:
        func_node = info.node
        with_items: Set[int] = {
            id(item.context_expr)
            for inner in ast.walk(func_node)
            if isinstance(inner, (ast.With, ast.AsyncWith))
            for item in inner.items
        }
        for stmt in ast.walk(func_node):
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            if not _is_opener(stmt.value) or id(stmt.value) in with_items:
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if _finally_closes(func_node, target.id):
                    continue
                yield self.project_violation(
                    info.path,
                    stmt,
                    f"{target.id} = open(...) in {info.qualname}() without "
                    f"`with` or a finally-close; the handle leaks on every "
                    f"exception/retry",
                )
            elif isinstance(target, ast.Attribute):
                # self._stream = open(...): ownership transfer is fine
                # when the class manages the handle's lifecycle.
                if self._owner_manages_lifecycle(project, info):
                    continue
                yield self.project_violation(
                    info.path,
                    stmt,
                    f"handle stored on {ast.unparse(target)} in "
                    f"{info.qualname}() but the owning class defines no "
                    f"close()/__exit__() to release it",
                )


@register_rule
class SwallowedCheckpointErrorRule(ProjectRule):
    id = "RL321"
    title = "Checkpoint write/rename failure silently swallowed"
    severity = Severity.WARNING
    rationale = (
        "A bare `except: pass` around a checkpoint's write/fsync/rename "
        "hides torn or missing checkpoints until a resume trusts them; "
        "failures there must at least be logged or counted."
    )

    _ATOMIC_TAILS = frozenset({"replace", "rename", "fsync", "write_text", "write_bytes"})

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for info in project.functions.values():
            if project.modules[info.module].is_test:
                continue
            for stmt in ast.walk(info.node):
                if not isinstance(stmt, ast.Try):
                    continue
                has_atomic_write = any(
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in self._ATOMIC_TAILS
                    for body_stmt in stmt.body
                    for inner in ast.walk(body_stmt)
                )
                if not has_atomic_write:
                    continue
                for handler in stmt.handlers:
                    if all(
                        isinstance(h, ast.Pass)
                        or (
                            isinstance(h, ast.Expr)
                            and isinstance(h.value, ast.Constant)
                        )
                        for h in handler.body
                    ):
                        yield self.project_violation(
                            info.path,
                            handler,
                            f"exception around a checkpoint write/rename in "
                            f"{info.qualname}() is swallowed with `pass`; "
                            f"log or count the failure so torn checkpoints "
                            f"are visible",
                        )


# ----------------------------------------------------------------------
# RL330: docstring / signature drift
# ----------------------------------------------------------------------

_SECTION_RE = re.compile(r"^\s*Parameters\s*$")
_UNDERLINE_RE = re.compile(r"^\s*-{3,}\s*$")
_PARAM_LINE_RE = re.compile(
    r"^(?P<names>\*{0,2}[A-Za-z_][\w]*(?:\s*[/,]\s*\*{0,2}[A-Za-z_][\w]*)*)\s*(?::.*)?$"
)


def documented_params(docstring: Optional[str]) -> List[str]:
    """Parameter names listed in a numpy-style ``Parameters`` section.

    Handles combined entries (``retry / fault_plan : ...``) and star
    forms (``*args``, ``**kwargs``).
    """
    if not docstring:
        return []
    lines = docstring.splitlines()
    names: List[str] = []
    in_section = False
    section_indent = 0
    for idx, line in enumerate(lines):
        if _SECTION_RE.match(line) and idx + 1 < len(lines) and _UNDERLINE_RE.match(
            lines[idx + 1]
        ):
            in_section = True
            section_indent = len(line) - len(line.lstrip())
            continue
        if not in_section or _UNDERLINE_RE.match(line):
            continue
        stripped = line.strip()
        if not stripped:
            continue
        indent = len(line) - len(line.lstrip())
        if indent < section_indent:
            break  # dedented out of the docstring body entirely
        if indent > section_indent:
            continue  # description line under a parameter entry
        if stripped.endswith(":") and ":" not in stripped[:-1] and " " not in stripped[:-1]:
            break  # a new section header like "Returns" (rare style)
        if _SECTION_RE.match(line) is None and stripped in (
            "Returns",
            "Yields",
            "Raises",
            "Notes",
            "Examples",
            "Attributes",
            "See Also",
        ):
            break
        match = _PARAM_LINE_RE.match(stripped)
        if match is None:
            continue
        for part in re.split(r"[/,]", match.group("names")):
            name = part.strip().lstrip("*")
            if name:
                names.append(name)
    return names


def _signature_params(node: ast.AST) -> Set[str]:
    args = node.args  # type: ignore[attr-defined]
    names = {
        arg.arg
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if arg.arg not in ("self", "cls")
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


@register_rule
class DocstringSignatureDriftRule(ProjectRule):
    id = "RL330"
    title = "Docstring documents parameters the signature does not have"
    severity = Severity.WARNING
    rationale = (
        "A Parameters section naming arguments that were renamed or removed "
        "actively misleads API users; the docstring is the service's public "
        "contract (extending RL201's cross-reference discipline to the API)."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for info in project.functions.values():
            if project.modules[info.module].is_test:
                continue
            if info.name.startswith("_") and info.name != "__init__":
                continue
            if info.name == "__init__":
                continue  # checked through the class docstring below
            node = info.node
            docstring = ast.get_docstring(node)  # type: ignore[arg-type]
            yield from self._compare(
                project, info.path, node, info.qualname, docstring,
                _signature_params(node),
            )
        for cls_info in project.classes.values():
            if project.modules[cls_info.module].is_test:
                continue
            if cls_info.name.startswith("_"):
                continue
            docstring = ast.get_docstring(cls_info.node)
            accepted = self._constructor_params(cls_info)
            if accepted is None:
                continue
            yield from self._compare(
                project, cls_info.path, cls_info.node, cls_info.qualname,
                docstring, accepted,
            )

    def _constructor_params(self, cls_info: ClassInfo) -> Optional[Set[str]]:
        init = cls_info.methods.get("__init__")
        if init is not None:
            return _signature_params(init.node)
        if cls_info.is_dataclass:
            return set(cls_info.field_names())
        return None  # inherited constructor: signature unknown, stay silent

    def _compare(
        self,
        project: ProjectIndex,
        path: Path,
        node: ast.AST,
        qualname: str,
        docstring: Optional[str],
        accepted: Set[str],
    ) -> Iterator[Violation]:
        documented = documented_params(docstring)
        if not documented:
            return
        # **kwargs forwards anything; the doc may legitimately describe
        # options the signature cannot enumerate.
        if any(name.startswith("kw") or name == "kwargs" for name in accepted):
            return
        ghosts = [name for name in documented if name not in accepted]
        if ghosts:
            yield self.project_violation(
                path,
                node,
                f"docstring of {qualname} documents parameter(s) "
                f"{', '.join(sorted(set(ghosts)))} not present in the "
                f"signature ({', '.join(sorted(accepted)) or 'no parameters'})",
            )

