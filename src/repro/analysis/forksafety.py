"""RL31x: fork/pickle-safety rules for the sharded executor.

Shard mining crosses a process boundary: arguments of
``pool.submit(...)`` and ``ProcessPoolExecutor(initargs=...)`` are
pickled into workers, and module globals diverge between the parent and
its forked children.  Two patterns break silently:

``RL310``
    an object captured by a shard submission whose class holds a
    process-local member — a ``threading.Lock``, an open file, a queue —
    either fails to pickle at submit time or (worse, under ``fork``)
    arrives as a stale duplicate.  Classes that implement their own
    pickling protocol (``__getstate__``/``__setstate__`` or
    ``__reduce__``) are trusted: that is exactly the
    ``TraceWorkerConfig``/``FaultPlan`` pattern this rule steers
    toward.
``RL311``
    a driver-side function reassigns a module global that worker-entry
    functions read.  Workers forked before the write keep the old
    value; workers on spawn never see it.  Globals that workers depend
    on must travel through ``initargs`` and be installed by the pool
    initializer (which runs *inside* the worker and is therefore
    exempt).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.framework import ProjectRule, Severity, Violation, register_rule
from repro.analysis.project import WORKER_PROCESS, ProjectIndex

__all__ = ["UnpicklableCaptureRule", "PostForkGlobalMutationRule"]


@register_rule
class UnpicklableCaptureRule(ProjectRule):
    id = "RL310"
    title = "Worker submission captures an object with process-local state"
    severity = Severity.ERROR
    rationale = (
        "Arguments to pool.submit()/initargs are pickled into worker "
        "processes; a captured object whose class holds a lock, an open "
        "file, or a queue either raises at submit time or silently "
        "duplicates state under fork. Ship a plain picklable config object "
        "(cf. TraceWorkerConfig) or give the class __getstate__/__setstate__."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for submission in project.boundary.submissions:
            owner = project.functions.get(submission.owner)
            if owner is None or project.modules[owner.module].is_test:
                continue
            for expr in submission.captured:
                captured_cls = project.infer_expr_class(owner, expr)
                if captured_cls is None:
                    continue
                members = project.unpicklable_members(captured_cls)
                if not members:
                    continue
                cls_name = captured_cls.rsplit(".", 1)[-1]
                yield self.project_violation(
                    submission.path,
                    expr,
                    f"worker submission in {owner.qualname}() captures a "
                    f"{cls_name}, whose member(s) "
                    f"{', '.join(members)} are process-local (lock/file/"
                    f"queue); pass a picklable config instead or define "
                    f"__getstate__/__setstate__",
                )


@register_rule
class PostForkGlobalMutationRule(ProjectRule):
    id = "RL311"
    title = "Driver-side mutation of a global that worker processes read"
    severity = Severity.ERROR
    rationale = (
        "Workers inherit module globals at fork (or re-import them under "
        "spawn); a global reassigned on the driver side afterwards diverges "
        "silently between parent and workers. Route the value through "
        "initargs and install it in the pool initializer instead."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        worker_side = {
            qualname
            for qualname, tags in project.boundary.contexts.items()
            if WORKER_PROCESS in tags
        }
        for info in project.functions.values():
            if not info.global_writes:
                continue
            if project.modules[info.module].is_test:
                continue
            if info.qualname in worker_side:
                continue  # initializers/worker entries mutate their own copy
            for name, node in sorted(info.global_writes.items()):
                readers = sorted(
                    reader.qualname
                    for reader in project.functions.values()
                    if reader.qualname in worker_side
                    and reader.module == info.module
                    and name in reader.global_reads
                )
                if not readers:
                    continue
                yield self.project_violation(
                    info.path,
                    node,
                    f"global {name} is reassigned in {info.qualname}() on "
                    f"the driver side but read inside worker processes by "
                    f"{', '.join(readers)}; pass it through initargs/"
                    f"initializer instead",
                )
