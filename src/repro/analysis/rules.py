"""Built-in reglint rules.

Numeric-hygiene rules (RL1xx) police the tolerance handling the
reg-cluster model is acutely sensitive to; the paper-awareness rule
(RL201) keeps docstring citations honest against PAPER.md.  The full
catalog with rationale lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.framework import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register_rule,
)
from repro.analysis.paper import PaperReferences, load_paper_references, scan_citations

__all__ = [
    "FloatEqualityRule",
    "MutableDefaultRule",
    "BroadExceptRule",
    "FloatAccumulationRule",
    "MissingAnnotationsRule",
    "PerGeneLoopRule",
    "PrintCallRule",
    "PaperReferenceRule",
]

#: Modules allowed to compare floats exactly: they *implement* the
#: tolerance boundary everything else must go through.
TOLERANCE_MODULES = ("repro/core/numeric.py",)

#: Modules on the mining hot path, where float accumulation must be
#: compensated (math.fsum) or vectorized (numpy pairwise summation).
HOT_PATH_PACKAGES = ("repro/core/", "repro/eval/", "repro/bench/")


def _is_float_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule
class FloatEqualityRule(Rule):
    """RL101: exact ``==``/``!=`` against a float literal.

    ``denominator == 0.0`` silently misses values within rounding noise
    of zero; the miner's thresholds (Eq. 3-4) and coherence checks
    (Lemma 3.2) must route through :mod:`repro.core.numeric` instead.
    Test files are exempt: asserting an exact expected value is the
    point of a test.
    """

    id = "RL101"
    title = "exact float equality"
    severity = Severity.ERROR
    rationale = (
        "exact float comparison breaks tolerance handling; use "
        "repro.core.numeric.near_zero / near_equal or math.isclose"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file():
            return False
        return not ctx.in_package(*TOLERANCE_MODULES)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_float_constant(operand) for operand in operands):
                yield self.violation(
                    ctx,
                    node,
                    "exact float equality; use near_zero()/near_equal() "
                    "from repro.core.numeric (or math.isclose) instead",
                )


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


@register_rule
class MutableDefaultRule(Rule):
    """RL102: mutable default argument values.

    A ``def f(cache={})`` default is created once and shared across
    calls — state leaks between invocations (and between tests).
    """

    id = "RL102"
    title = "mutable default argument"
    severity = Severity.ERROR
    rationale = "default values are evaluated once and shared across calls"

    @staticmethod
    def _is_mutable(node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {name}(); "
                        "use None and create the value inside the function",
                    )


_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


@register_rule
class BroadExceptRule(Rule):
    """RL103: bare or overbroad ``except`` that swallows the error.

    ``except:`` and ``except Exception:`` hide ZeroDivisionError,
    ValueError and friends that the numeric code raises deliberately.
    A handler that re-raises (``raise`` anywhere in its body) is
    accepted — narrowing before re-raising is a legitimate pattern.
    """

    id = "RL103"
    title = "bare or overbroad except"
    severity = Severity.ERROR
    rationale = "swallowing broad exceptions hides numeric-invariant failures"

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        kind = handler.type
        if kind is None:
            return True
        names: List[ast.expr] = (
            list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
        )
        return any(
            isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTIONS
            for name in names
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(inner, ast.Raise)
            for stmt in handler.body
            for inner in ast.walk(stmt)
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and not self._reraises(node):
                label = "bare except" if node.type is None else "overbroad except"
                yield self.violation(
                    ctx,
                    node,
                    f"{label} swallows errors; catch the specific exception "
                    "or re-raise",
                )


@register_rule
class FloatAccumulationRule(Rule):
    """RL104: built-in ``sum()`` on a mining hot path.

    Naive left-to-right float summation accumulates O(n) rounding error;
    on hot paths (core/eval/bench) expression values must be accumulated
    with ``math.fsum`` or vectorized numpy sums (pairwise summation).
    Integer counts are fine — suppress with ``# reglint: disable=RL104``.
    """

    id = "RL104"
    title = "uncompensated float accumulation"
    severity = Severity.ERROR
    rationale = (
        "built-in sum() accumulates rounding error linearly; hot paths "
        "must use math.fsum or numpy"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*HOT_PATH_PACKAGES) and not ctx.is_test_file()

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "built-in sum() on a hot path; use math.fsum (floats), "
                    "numpy (arrays), or suppress if summing integers",
                )


@register_rule
class MissingAnnotationsRule(Rule):
    """RL105: public ``repro.core`` function without full annotations.

    The numeric invariants live in ``repro.core``; its public surface
    must be fully typed so ``mypy --strict`` can see threshold and
    index types end to end.
    """

    id = "RL105"
    title = "missing type annotations on public core API"
    severity = Severity.ERROR
    rationale = "repro.core's public surface is the typed boundary of the miner"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro/core/") and not ctx.is_test_file()

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[Tuple[str, ast.FunctionDef]]:
        """Top-level functions and methods of top-level classes."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.name, node
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield f"{node.name}.{member.name}", member

    @staticmethod
    def _missing(func: ast.FunctionDef) -> List[str]:
        missing: List[str] = []
        args = func.args
        positional = [*args.posonlyargs, *args.args]
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for variadic in (args.vararg, args.kwarg):
            if variadic is not None and variadic.annotation is None:
                missing.append(variadic.arg)
        if func.returns is None:
            missing.append("return")
        return missing

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for qualname, func in self._public_functions(ctx.tree):
            short = qualname.rsplit(".", 1)[-1]
            if short.startswith("_") and not (
                short.startswith("__") and short.endswith("__")
            ):
                continue
            missing = self._missing(func)
            if missing:
                yield self.violation(
                    ctx,
                    func,
                    f"public function {qualname}() missing annotations "
                    f"for: {', '.join(missing)}",
                )


#: Modules whose search-time code must not loop over genes in Python —
#: they implement (or feed) the miner's inner loop, where per-gene
#: Python iteration costs microseconds per element times millions of
#: elements.  One-time *builders* (kernel packing, RWave model
#: construction) legitimately chunk by gene and carry line suppressions.
HOT_LOOP_MODULES = (
    "repro/core/miner.py",
    "repro/core/window.py",
    "repro/core/kernels.py",
    "repro/core/rwave.py",
)


@register_rule
class PerGeneLoopRule(Rule):
    """RL106: Python-level per-gene loop in a mining hot-path module.

    ``for i in range(n_genes)`` (or a comprehension over it) iterates
    the gene axis in the interpreter; on the hot path the gene axis is
    the large one (thousands of elements per search node) and must be
    traversed with vectorized numpy operations instead.  Deliberate
    one-time builders suppress with ``# reglint: disable=RL106``.
    """

    id = "RL106"
    title = "per-gene Python loop on a mining hot path"
    severity = Severity.ERROR
    rationale = (
        "interpreting the gene axis costs microseconds per element; "
        "hot-path code must vectorize over genes with numpy"
    )

    #: Identifiers that mark a loop bound as spanning the gene axis.
    _GENE_COUNT_NAMES = frozenset({"n_genes", "num_genes", "gene_count"})

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*HOT_LOOP_MODULES) and not ctx.is_test_file()

    @classmethod
    def _spans_genes(cls, bound: ast.expr) -> bool:
        """Does a ``range()`` argument reference a gene count?"""
        for node in ast.walk(bound):
            if isinstance(node, ast.Name) and node.id in cls._GENE_COUNT_NAMES:
                return True
            if (
                isinstance(node, ast.Attribute)
                and node.attr in cls._GENE_COUNT_NAMES
            ):
                return True
        return False

    @classmethod
    def _is_per_gene_range(cls, iterable: ast.expr) -> bool:
        return (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and any(cls._spans_genes(arg) for arg in iterable.args)
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iterables: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if self._is_per_gene_range(iterable):
                    yield self.violation(
                        ctx,
                        iterable,
                        "Python-level loop over the gene axis on a hot "
                        "path; vectorize with numpy (or suppress on a "
                        "one-time builder)",
                    )


#: Modules whose *job* is writing to stdout: the CLI front-ends.
_PRINT_ALLOWED_NAMES = frozenset({"cli.py", "__main__.py"})


@register_rule
class PrintCallRule(Rule):
    """RL107: bare ``print()`` in library code.

    Library and service modules must emit events through
    :mod:`repro.obs.log` (structured, level-filtered, capturable) —
    a stray ``print`` bypasses the logging configuration, corrupts
    piped CLI output, and is invisible to the daemon's JSON log
    stream.  Only the CLI front-ends (``cli.py``, ``__main__.py``)
    own stdout; deliberate report writers suppress with
    ``# reglint: disable=RL107`` (or ``disable-file`` for a module
    whose whole purpose is console output, like the bench reporter).
    """

    id = "RL107"
    title = "bare print() in library code"
    severity = Severity.ERROR
    rationale = (
        "library output must go through repro.obs.log so the daemon's "
        "structured log stream sees it; only CLI entry points own stdout"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_test_file():
            return False
        if ctx.path.name in _PRINT_ALLOWED_NAMES:
            return False
        return ctx.in_package("repro/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "bare print() in library code; use repro.obs.log "
                    "(get_logger) or move the output to a CLI entry point",
                )


_PAPER_CACHE: Dict[Path, PaperReferences] = {}


def _references_for(ctx: FileContext) -> PaperReferences:
    refs = ctx.extra.get("paper_references")
    if isinstance(refs, PaperReferences):
        return refs
    anchor = ctx.path.resolve().parent
    if anchor not in _PAPER_CACHE:
        _PAPER_CACHE[anchor] = load_paper_references(search_from=anchor)
    return _PAPER_CACHE[anchor]


@register_rule
class PaperReferenceRule(Rule):
    """RL201: docstring cites a paper artifact that PAPER.md lacks.

    Every ``Eq. N`` / ``Lemma N.N`` / ``Definition N.N`` / ``Fig. N`` /
    ``Table N`` / ``Section N`` a docstring names must exist in the
    paper's inventory (PAPER.md), so code claiming to implement Eq. 7
    can be trusted to mean the real Eq. 7.  Silent when no PAPER.md is
    found.
    """

    id = "RL201"
    title = "unknown paper reference in docstring"
    severity = Severity.ERROR
    rationale = "docstring citations must resolve against PAPER.md"

    _LABELS = {
        "eq": "Eq.",
        "lemma": "Lemma",
        "definition": "Definition",
        "figure": "Figure",
        "table": "Table",
        "section": "Section",
    }

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        references = _references_for(ctx)
        if len(references) == 0:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node,
                (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            docstring = ast.get_docstring(node, clean=False)
            if not docstring:
                continue
            anchor: ast.AST = node.body[0] if isinstance(node, ast.Module) else node
            for citation in dict.fromkeys(scan_citations(docstring)):
                if citation not in references:
                    kind, number = citation
                    label = self._LABELS.get(kind, kind)
                    where = (
                        "module docstring"
                        if isinstance(node, ast.Module)
                        else f"docstring of {getattr(node, 'name', '?')}"
                    )
                    yield self.violation(
                        ctx,
                        anchor,
                        f"{where} cites {label} {number}, which does not "
                        f"exist in {references.source}",
                    )
