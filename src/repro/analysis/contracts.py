"""Debug-mode runtime contracts for the RWave index (Lemma 3.1).

The RWave^gamma model replaces the O(n^2) pairwise regulation table with
O(n) non-embedded pointers from which every regulation predecessor /
successor is recovered with one lookup.  That compression is exactly
where a subtle bug would corrupt every downstream cluster, so this
module re-verifies the invariants against brute force:

* the condition order is a permutation sorted by expression value, and
  ``position`` is its inverse;
* pointers are strictly increasing in both tail and head — i.e. no
  pointer is embedded in another (Definition 3.1);
* every pointer marks a regulated bordering pair (Eq. 3, strict);
* one-lookup predecessor/successor bounds agree with the brute-force
  pairwise scan for every condition (Lemma 3.1);
* the max-chain tables used by the MinC pruning agree with a
  brute-force dynamic program.

The checks are O(n^2) per gene and therefore OFF by default.  Enable
them for a debugging session with the ``REPRO_CONTRACTS=1`` environment
variable, or programmatically::

    from repro.analysis import contracts
    contracts.enable()            # or: with contracts.activated(): ...

:class:`repro.core.rwave.RWaveIndex` consults this module after
construction, so an enabled contract guards every miner run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # imported for annotations only: core imports us at runtime
    from repro.core.rwave import RWaveIndex, RWaveModel

__all__ = [
    "ContractViolation",
    "enable",
    "disable",
    "activated",
    "contracts_enabled",
    "check_rwave_model",
    "check_rwave_index",
    "maybe_check_rwave_index",
]

_ENV_FLAG = "REPRO_CONTRACTS"
_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


class ContractViolation(AssertionError):
    """An RWave invariant does not hold — the index is corrupt."""


def enable() -> None:
    """Turn contract checking on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn contract checking off."""
    global _enabled
    _enabled = False


def contracts_enabled() -> bool:
    """Are debug contracts currently active?"""
    return _enabled


@contextmanager
def activated() -> Iterator[None]:
    """Context manager enabling contracts for a scoped block (tests)."""
    global _enabled
    previous = _enabled
    _enabled = True
    try:
        yield
    finally:
        _enabled = previous


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ContractViolation(message)


def _brute_chain_tables(
    values: "np.ndarray", threshold: float
) -> Tuple[List[int], List[int]]:
    """Longest up/down chain per position, by O(n^2) dynamic programming."""
    n = len(values)
    up = [1] * n
    down = [1] * n
    for p in range(n - 1, -1, -1):
        reachable = [q for q in range(p + 1, n) if values[q] - values[p] > threshold]
        if reachable:
            up[p] = 1 + max(up[q] for q in reachable)
    for p in range(n):
        reachable = [q for q in range(p) if values[p] - values[q] > threshold]
        if reachable:
            down[p] = 1 + max(down[q] for q in reachable)
    return up, down


def check_rwave_model(model: "RWaveModel") -> None:
    """Verify one gene's model against Definition 3.1 / Lemma 3.1.

    Raises :class:`ContractViolation` on the first broken invariant.
    """
    gene = f"gene {model.gene}" if model.gene is not None else "gene ?"
    n = model.n_conditions
    order = np.asarray(model.order)
    position = np.asarray(model.position)
    values = np.asarray(model.sorted_values)

    _require(
        sorted(int(c) for c in order) == list(range(n)),
        f"{gene}: order is not a permutation of the conditions",
    )
    _require(
        bool(np.all(position[order] == np.arange(n))),
        f"{gene}: position is not the inverse of order",
    )
    _require(
        bool(np.all(np.diff(values) >= 0)) if n else True,
        f"{gene}: sorted_values are not in non-descending order",
    )

    # Pointer invariants: strictly increasing tails AND heads <=> no
    # pointer embedded in another (Definition 3.1), in scan order.
    pointers = model.pointers
    for pointer in pointers:
        _require(
            0 <= pointer.tail < pointer.head < n,
            f"{gene}: pointer {pointer} out of bounds",
        )
        _require(
            float(values[pointer.head] - values[pointer.tail]) > model.threshold,
            f"{gene}: pointer {pointer} is not a regulated pair (Eq. 3)",
        )
    for before, after in zip(pointers, pointers[1:]):
        _require(
            before.tail < after.tail and before.head < after.head,
            f"{gene}: pointers {before} and {after} are embedded/unordered",
        )

    # Lemma 3.1: the one-lookup predecessor/successor bounds must agree
    # with the brute-force pairwise scan for every condition.
    for p in range(n):
        condition = int(order[p])
        true_preds: Set[int] = {
            int(order[q]) for q in range(n) if values[p] - values[q] > model.threshold
        }
        true_succs: Set[int] = {
            int(order[q]) for q in range(n) if values[q] - values[p] > model.threshold
        }
        got_preds = {int(c) for c in model.regulation_predecessors(condition)}
        got_succs = {int(c) for c in model.regulation_successors(condition)}
        _require(
            got_preds == true_preds,
            f"{gene}: predecessor lookup for condition {condition} returned "
            f"{sorted(got_preds)}, brute force says {sorted(true_preds)}",
        )
        _require(
            got_succs == true_succs,
            f"{gene}: successor lookup for condition {condition} returned "
            f"{sorted(got_succs)}, brute force says {sorted(true_succs)}",
        )

    # MinC pruning tables (strategy 2) against the brute-force DP.
    up, down = _brute_chain_tables(values, model.threshold)
    _require(
        [int(x) for x in model.max_chain_up] == up,
        f"{gene}: max_chain_up disagrees with brute-force chains",
    )
    _require(
        [int(x) for x in model.max_chain_down] == down,
        f"{gene}: max_chain_down disagrees with brute-force chains",
    )


def check_rwave_index(index: "RWaveIndex") -> None:
    """Verify every per-gene model plus the bulk lookup arrays."""
    for model in index.models:
        check_rwave_model(model)
    for i, model in enumerate(index.models):
        _require(
            bool(np.all(index.max_up[i, model.order] == model.max_chain_up)),
            f"gene {i}: index.max_up disagrees with the gene's model",
        )
        _require(
            bool(np.all(index.max_down[i, model.order] == model.max_chain_down)),
            f"gene {i}: index.max_down disagrees with the gene's model",
        )
        _require(
            float(index.thresholds[i]) == float(model.threshold),
            f"gene {i}: index threshold diverged from the model's",
        )


def maybe_check_rwave_index(index: "RWaveIndex") -> None:
    """Run :func:`check_rwave_index` only when contracts are enabled."""
    if _enabled:
        check_rwave_index(index)
