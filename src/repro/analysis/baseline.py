"""Baseline mechanism: gate on regressions, not on history.

Turning whole-program rules on over an existing codebase surfaces
findings that are deliberate (``JobStore`` holds its lock across the
checkpoint write *because* the lock exists to serialize exactly that
I/O).  Rather than suppressing each in source, a committed
``reglint-baseline.json`` records the accepted findings; CI then fails
only when a *new* finding appears.

Fingerprints are content-keyed, not line-keyed: a finding is identified
by its rule id, file path, message, the text of the source line it
points at, and an ordinal (the N-th identical finding in the file).
Inserting code above a baselined finding moves its line number but not
its fingerprint, so it still matches; changing the offending line (or
the rule's message for it) invalidates the entry and the gate fires.

``--update-baseline`` rewrites the file deterministically — entries
sorted by digest, stable JSON — so regeneration produces clean diffs.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.framework import Report, Severity, Violation

__all__ = [
    "Baseline",
    "BaselinedReport",
    "apply_baseline",
    "build_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "DEFAULT_BASELINE_NAME",
]

DEFAULT_BASELINE_NAME = "reglint-baseline.json"
_BASELINE_VERSION = 1


class _SourceLines:
    """Lazy per-file source-line lookup for fingerprinting."""

    def __init__(self) -> None:
        self._cache: Dict[Path, List[str]] = {}

    def line(self, path: Path, lineno: int) -> str:
        lines = self._cache.get(path)
        if lines is None:
            try:
                lines = path.read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
            self._cache[path] = lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


def fingerprint(
    violation: Violation, source_line: str, ordinal: int
) -> str:
    """Stable identity of one finding (line-number independent)."""
    hasher = hashlib.sha256()
    for part in (
        violation.rule_id,
        violation.path.as_posix(),
        violation.message,
        source_line,
        str(ordinal),
    ):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _fingerprints(
    violations: Sequence[Violation],
) -> List[Tuple[Violation, str]]:
    """Fingerprint every violation, assigning ordinals to duplicates.

    Ordinals are per (rule, path, message, source-line) group in
    line order, so two identical findings in one file keep distinct,
    stable identities.
    """
    sources = _SourceLines()
    counters: Counter = Counter()
    out: List[Tuple[Violation, str]] = []
    for violation in sorted(
        violations, key=lambda v: (v.path.as_posix(), v.line, v.column, v.rule_id)
    ):
        line_text = sources.line(violation.path, violation.line)
        group = (
            violation.rule_id,
            violation.path.as_posix(),
            violation.message,
            line_text,
        )
        ordinal = counters[group]
        counters[group] += 1
        out.append((violation, fingerprint(violation, line_text, ordinal)))
    return out


@dataclass(frozen=True)
class Baseline:
    """The accepted-findings set: digest -> descriptive entry."""

    entries: Dict[str, Dict[str, object]]

    def __contains__(self, digest: str) -> bool:
        return digest in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; raises ``ValueError`` on malformed input
    (a typo'd baseline silently matching nothing would defeat the
    gate)."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _BASELINE_VERSION
        or not isinstance(payload.get("findings"), dict)
    ):
        raise ValueError(f"{path}: not a reglint baseline (version "
                         f"{_BASELINE_VERSION}) file")
    return Baseline(entries=dict(payload["findings"]))


def build_baseline(violations: Sequence[Violation]) -> Baseline:
    entries: Dict[str, Dict[str, object]] = {}
    for violation, digest in _fingerprints(violations):
        entries[digest] = {
            "rule": violation.rule_id,
            "path": violation.path.as_posix(),
            "severity": str(violation.severity),
            "message": violation.message,
        }
    return Baseline(entries=entries)


def write_baseline(baseline: Baseline, path: Path) -> None:
    """Serialize deterministically: sorted digests, stable key order."""
    payload = {
        "version": _BASELINE_VERSION,
        "findings": {
            digest: baseline.entries[digest]
            for digest in sorted(baseline.entries)
        },
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@dataclass
class BaselinedReport:
    """A report split into fresh findings and baselined ones."""

    report: Report
    fresh: List[Violation]
    baselined: List[Violation]

    @property
    def exit_code(self) -> int:
        """Gate only on fresh WARNING-or-worse findings."""
        return (
            1
            if any(v.severity >= Severity.WARNING for v in self.fresh)
            else 0
        )

    def render(self) -> str:
        lines = [v.render() for v in self.fresh]
        noun = "file" if self.report.files_checked == 1 else "files"
        summary = (
            f"reglint: {len(self.fresh)} finding(s) in "
            f"{self.report.files_checked} {noun}"
            if self.fresh
            else f"reglint: {self.report.files_checked} {noun} clean"
        )
        if self.baselined:
            summary += f" ({len(self.baselined)} baselined finding(s) hidden)"
        lines.append(summary)
        return "\n".join(lines)


def apply_baseline(
    report: Report, baseline: Optional[Baseline]
) -> BaselinedReport:
    if baseline is None:
        return BaselinedReport(
            report=report, fresh=list(report.violations), baselined=[]
        )
    fresh: List[Violation] = []
    matched: List[Violation] = []
    for violation, digest in _fingerprints(report.violations):
        (matched if digest in baseline else fresh).append(violation)
    fresh.sort(key=lambda v: (str(v.path), v.line, v.column, v.rule_id))
    return BaselinedReport(report=report, fresh=fresh, baselined=matched)
