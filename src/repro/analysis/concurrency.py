"""RL30x: whole-program concurrency-safety rules.

The service layer shares mutable objects across thread boundaries:
HTTP handler threads (``ThreadingHTTPServer``), the executor loop
thread inside :class:`~repro.service.service.MiningService`, and the
main thread.  Each shared class owns a lock; these rules enforce the
discipline documented in ``docs/robustness.md`` ("Concurrency model"):

``RL301``
    an attribute that the class itself treats as lock-guarded (accessed
    under ``with self._lock:`` somewhere) is mutated on a path where the
    lock is not held — the classic lost-update / torn-read race;
``RL302``
    two locks are acquired in opposite orders on different code paths —
    the precondition for an ABBA deadlock;
``RL303``
    a blocking operation (sleep, network, file I/O) executes while a
    lock is held, stalling every thread contending for it.

All three work on the :class:`~repro.analysis.project.ProjectIndex`
guarded-by inference: a helper called *only* from locked regions counts
as running under the lock, and attributes whose value is itself a
self-synchronizing object (a project class owning its own lock, a
``queue.Queue``, a ``threading.Event``) are exempt from RL301 — calling
``self.jobs.update(...)`` is safe because ``JobStore`` locks
internally.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.framework import ProjectRule, Severity, Violation, register_rule
from repro.analysis.project import (
    AttributeAccess,
    ClassInfo,
    FunctionInfo,
    LockId,
    ProjectIndex,
)

__all__ = [
    "UnlockedSharedMutationRule",
    "LockOrderInversionRule",
    "BlockingCallUnderLockRule",
]

#: Dotted callee suffixes that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "sleep",
        "urllib.request.urlopen",
        "urlopen",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)

#: Method names that perform file I/O when called on paths/arrays.
_BLOCKING_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "unlink",
        "replace",
        "rename",
        "savez",
        "savez_compressed",
    }
)

#: Method names that are blocking only on file-ish receivers (``replace``
#: and friends exist on ``str`` too; ``join`` on ``str`` and on threads).
_RECEIVER_HINTS = ("path", "tmp", "file", "dir", "root", "os", "np", "numpy")


def _is_blocking_call(raw: str, resolved: str) -> bool:
    if raw == "open" or resolved == "open":
        return True
    if raw in _BLOCKING_CALLS or resolved in _BLOCKING_CALLS:
        return True
    if "." not in raw or raw.startswith("?."):
        # A bare name never method-matches (a local function called
        # ``save`` is not I/O), nor does an unresolvable receiver such
        # as a string literal (``", ".join(...)``).
        return False
    receiver, tail = raw.rsplit(".", 1)
    if tail == "join":
        # Joining a thread while holding a lock the thread needs is a
        # deadlock; joining a string is not.
        return any(k in receiver.lower() for k in ("thread", "worker", "proc"))
    if tail in ("replace", "rename", "unlink"):
        # Present on str too — require a path-shaped receiver.
        return any(k in receiver.lower() for k in _RECEIVER_HINTS)
    return tail in _BLOCKING_METHODS


def _function_has_direct_blocking_call(info: FunctionInfo) -> bool:
    return any(
        _is_blocking_call(site.raw, site.resolved or "") for site in info.calls
    )


def _lock_label(lock: LockId) -> str:
    owner, attr = lock
    return f"{owner.rsplit('.', 1)[-1]}.{attr}"


@register_rule
class UnlockedSharedMutationRule(ProjectRule):
    id = "RL301"
    title = "Lock-guarded attribute mutated without the owning lock held"
    severity = Severity.ERROR
    rationale = (
        "When a class accesses an attribute under `with self._lock:` in one "
        "method, every mutation of that attribute must hold the same lock; "
        "an unlocked write on a handler- or executor-thread path is a data "
        "race (lost updates, torn reads)."
    )

    #: mutation kinds RL301 cares about (reads stay unflagged: callers
    #: may tolerate stale reads, and flagging them would drown the gate)
    _MUTATION_KINDS = frozenset({"write", "mutcall"})

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for cls_info in project.iter_service_classes():
            for lock_attr in sorted(cls_info.lock_attrs):
                guarded = project.guarded_attrs(cls_info, lock_attr)
                if not guarded:
                    continue
                lock_id: LockId = (cls_info.qualname, lock_attr)
                yield from self._check_class(project, cls_info, lock_id, guarded)

    def _check_class(
        self,
        project: ProjectIndex,
        cls_info: ClassInfo,
        lock_id: LockId,
        guarded: Set[str],
    ) -> Iterator[Violation]:
        for method in cls_info.methods.values():
            if method.is_lifecycle or method.qualname in project.init_only:
                continue
            for access in method.self_accesses:
                if (
                    access.kind not in self._MUTATION_KINDS
                    or access.attr not in guarded
                ):
                    continue
                if lock_id in project.effective_locks(method, access.locks):
                    continue
                if project.is_self_synchronizing(cls_info, access.attr):
                    continue
                contexts = project.boundary.describe(method.qualname)
                verb = (
                    f"mutated via .{access.via}()"
                    if access.kind == "mutcall"
                    else "assigned"
                )
                yield self.project_violation(
                    method.path,
                    access.node,
                    f"{cls_info.name}.{access.attr} is guarded by "
                    f"{_lock_label(lock_id)} elsewhere but {verb} in "
                    f"{method.name}() without the lock held "
                    f"(runs on: {contexts})",
                )


@register_rule
class LockOrderInversionRule(ProjectRule):
    id = "RL302"
    title = "Inconsistent lock-acquisition order across code paths"
    severity = Severity.ERROR
    rationale = (
        "If one path acquires lock A then B while another acquires B then A, "
        "two threads can each hold one lock and wait forever for the other "
        "(ABBA deadlock). All paths must order shared locks consistently."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        # Ordered pairs (outer, inner) -> acquisition sites proving them.
        pairs: Dict[
            Tuple[LockId, LockId], List[Tuple[FunctionInfo, ast.AST]]
        ] = {}
        for info in project.functions.values():
            if project.modules[info.module].is_test:
                continue
            for lock, held, node in info.acquisitions:
                for outer in set(held) | info.always_held:
                    if outer != lock:
                        pairs.setdefault((outer, lock), []).append((info, node))
            # One-hop propagation: calling a function that acquires lock
            # B while holding lock A establishes the order A -> B.
            for site in info.calls:
                callee = project.functions.get(site.resolved or "")
                if callee is None:
                    continue
                held_here = set(site.locks) | info.always_held
                for inner_lock, inner_held, _ in callee.acquisitions:
                    if inner_held:
                        continue  # nested orders counted at the callee
                    for outer in held_here:
                        if outer != inner_lock:
                            pairs.setdefault(
                                (outer, inner_lock), []
                            ).append((info, site.node))
        for (outer, inner), sites in sorted(
            pairs.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            if (inner, outer) not in pairs or (outer, inner) < (inner, outer):
                continue
            # Report the inverted direction once per proving site.
            for info, node in sites:
                other = pairs[(inner, outer)][0][0]
                yield self.project_violation(
                    info.path,
                    node,
                    f"lock order {_lock_label(outer)} -> {_lock_label(inner)} "
                    f"here conflicts with the opposite order in "
                    f"{other.qualname} (ABBA deadlock risk)",
                )


@register_rule
class BlockingCallUnderLockRule(ProjectRule):
    id = "RL303"
    title = "Blocking call while holding a lock"
    severity = Severity.WARNING
    rationale = (
        "sleep(), network requests, and file I/O inside a `with lock:` block "
        "stall every thread contending for the lock (handler threads block "
        "behind a disk write). Move the slow work outside the critical "
        "section, or keep it only where the lock exists to serialize that "
        "exact I/O."
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        for info in project.functions.values():
            if project.modules[info.module].is_test:
                continue
            for site in info.calls:
                if not site.locks:
                    continue
                resolved = site.resolved or ""
                if _is_blocking_call(site.raw, resolved):
                    yield self.project_violation(
                        info.path,
                        site.node,
                        f"blocking call {site.raw}() inside a `with "
                        f"{_lock_label(sorted(site.locks)[0])}:` block in "
                        f"{info.qualname}",
                    )
                    continue
                # One hop through the call graph: a helper that performs
                # file I/O, invoked with the lock held.
                callee = project.functions.get(resolved)
                if callee is not None and _function_has_direct_blocking_call(
                    callee
                ):
                    yield self.project_violation(
                        info.path,
                        site.node,
                        f"call to {callee.qualname}() (performs blocking "
                        f"I/O) inside a `with "
                        f"{_lock_label(sorted(site.locks)[0])}:` block in "
                        f"{info.qualname}",
                    )
