"""Paper-reference inventory: what PAPER.md actually defines.

The cross-reference rule (RL201) checks that every equation / lemma /
definition / figure / table / section a docstring cites really exists in
the source paper.  This module parses ``PAPER.md`` into that ground
truth and provides the shared citation scanner both sides use.

Citations come in several shapes — ``Eq. 4``, ``Equation 4``,
``Eq. 5-7`` (ranges, any dash), ``Figs. 3, 4, 6`` (lists),
``Lemma 3.2``, ``Definition 3.1``, ``§5.2`` — and all of them are
normalized to ``(kind, number)`` pairs such as ``("eq", "7")`` or
``("lemma", "3.2")``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import FrozenSet, Iterator, List, Optional, Tuple

__all__ = ["Citation", "PaperReferences", "load_paper_references", "scan_citations"]

Citation = Tuple[str, str]  # (kind, number), e.g. ("eq", "7")

_KIND_ALIASES = {
    "eq": "eq",
    "eqs": "eq",
    "equation": "eq",
    "equations": "eq",
    "lemma": "lemma",
    "lemmas": "lemma",
    "definition": "definition",
    "definitions": "definition",
    "def": "definition",
    "fig": "figure",
    "figs": "figure",
    "figure": "figure",
    "figures": "figure",
    "table": "table",
    "tables": "table",
    "section": "section",
    "sections": "section",
    "§": "section",
}

# One citation: a kind keyword followed by a number, optionally extended
# by range/list continuations ("5-7", "3, 4, 6", "3 and 4").
_CITATION_RE = re.compile(
    r"(?P<kind>§|\b(?:Eqs?|Equations?|Lemmas?|Definitions?|Figs?|Figures?"
    r"|Tables?|Sections?)\b)"
    r"\.?\s*"
    r"(?P<nums>\d+(?:\.\d+)*"
    r"(?:\s*(?:[-–—]|,|and|&)\s*\d+(?:\.\d+)*)*)",
    re.IGNORECASE,
)

_NUMBER_RE = re.compile(r"\d+(?:\.\d+)*")
_RANGE_RE = re.compile(r"(\d+)\s*[-–—]\s*(\d+)")


def _expand_numbers(nums: str) -> List[str]:
    """``"5-7"`` -> ["5", "6", "7"]; ``"3, 4.1"`` -> ["3", "4.1"]."""
    numbers: List[str] = []
    remainder = nums
    for match in _RANGE_RE.finditer(nums):
        lo, hi = int(match.group(1)), int(match.group(2))
        if lo <= hi <= lo + 50:  # sane range only
            numbers.extend(str(n) for n in range(lo, hi + 1))
            remainder = remainder.replace(match.group(0), " ", 1)
    numbers.extend(_NUMBER_RE.findall(remainder))
    seen = set()
    unique: List[str] = []
    for number in numbers:
        if number not in seen:
            seen.add(number)
            unique.append(number)
    return unique


def scan_citations(text: str) -> Iterator[Citation]:
    """All normalized ``(kind, number)`` citations appearing in ``text``."""
    for match in _CITATION_RE.finditer(text):
        kind = _KIND_ALIASES[match.group("kind").lower().rstrip(".")]
        for number in _expand_numbers(match.group("nums")):
            yield (kind, number)


class PaperReferences:
    """The set of citable artifacts the paper defines."""

    def __init__(self, citations: FrozenSet[Citation], source: Optional[Path]):
        self.citations = citations
        self.source = source

    def __contains__(self, citation: Citation) -> bool:
        kind, number = citation
        if (kind, number) in self.citations:
            return True
        # A citation of "Section 5.2" is also satisfied by the paper
        # defining section 5 with dotted subsections, and vice versa.
        if kind == "section":
            major = number.split(".")[0]
            return (kind, major) in self.citations
        return False

    def __len__(self) -> int:
        return len(self.citations)

    def __repr__(self) -> str:
        return (
            f"PaperReferences({len(self.citations)} citations "
            f"from {self.source})"
        )


def _find_paper_md(start: Path) -> Optional[Path]:
    for directory in [start, *start.parents]:
        candidate = directory / "PAPER.md"
        if candidate.is_file():
            return candidate
    return None


def load_paper_references(
    paper_path: Optional[Path] = None,
    *,
    search_from: Optional[Path] = None,
) -> PaperReferences:
    """Parse PAPER.md (explicit path, or found by walking up).

    Returns an empty inventory when no PAPER.md exists — the
    cross-reference rule treats that as "nothing can be checked" and
    stays silent rather than flagging every citation in the tree.
    """
    if paper_path is None:
        paper_path = _find_paper_md((search_from or Path.cwd()).resolve())
    if paper_path is None or not paper_path.is_file():
        return PaperReferences(frozenset(), None)
    text = paper_path.read_text(encoding="utf-8")
    return PaperReferences(frozenset(scan_citations(text)), paper_path)
