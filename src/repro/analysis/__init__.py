"""reglint: paper-aware static analysis for the reg-cluster codebase.

The reg-cluster miner's correctness rests on numeric invariants the type
system cannot see: per-gene regulation thresholds (Eq. 3-4), strict
monotonicity along chains, and H-score coherence within epsilon
(Lemma 3.2).  This package provides an AST-based lint framework with a
rule registry, per-rule severities, line/file suppression comments and a
CLI entrypoint (``python -m repro.analysis``), plus a runtime-contract
module (:mod:`repro.analysis.contracts`) asserting the RWave index
invariants of Lemma 3.1 in debug mode.

Since the service layer grew thread, fork and checkpoint boundaries,
reglint is a *two-phase* analyzer: file-local rules (RL1xx/RL2xx) run
per file, and whole-program rules (RL3xx — concurrency, fork/pickle
safety, resource hygiene, API drift) run over a project index built
from every parsed file (:mod:`repro.analysis.project`).  Findings can
be emitted as SARIF (:mod:`repro.analysis.sarif`) and gated against a
committed baseline (:mod:`repro.analysis.baseline`).

See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.analysis.framework import (
    FileContext,
    ProjectRule,
    Report,
    Rule,
    Severity,
    Violation,
    all_rules,
    analyze_file,
    analyze_paths,
    get_rule,
    register_rule,
)
from repro.analysis.paper import PaperReferences, load_paper_references
from repro.analysis.project import ProjectIndex

# Importing the rule modules registers the built-in rules.
from repro.analysis import rules as _builtin_rules  # noqa: F401
from repro.analysis import concurrency as _concurrency_rules  # noqa: F401
from repro.analysis import forksafety as _forksafety_rules  # noqa: F401
from repro.analysis import hygiene as _hygiene_rules  # noqa: F401

__all__ = [
    "FileContext",
    "ProjectIndex",
    "ProjectRule",
    "Report",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_rule",
    "register_rule",
    "PaperReferences",
    "load_paper_references",
]
