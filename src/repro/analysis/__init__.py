"""reglint: paper-aware static analysis for the reg-cluster codebase.

The reg-cluster miner's correctness rests on numeric invariants the type
system cannot see: per-gene regulation thresholds (Eq. 3-4), strict
monotonicity along chains, and H-score coherence within epsilon
(Lemma 3.2).  This package provides an AST-based lint framework with a
rule registry, per-rule severities, line/file suppression comments and a
CLI entrypoint (``python -m repro.analysis``), plus a runtime-contract
module (:mod:`repro.analysis.contracts`) asserting the RWave index
invariants of Lemma 3.1 in debug mode.

See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.analysis.framework import (
    FileContext,
    Report,
    Rule,
    Severity,
    Violation,
    all_rules,
    analyze_file,
    analyze_paths,
    get_rule,
    register_rule,
)
from repro.analysis.paper import PaperReferences, load_paper_references

# Importing the rules module registers the built-in rules.
from repro.analysis import rules as _builtin_rules  # noqa: F401

__all__ = [
    "FileContext",
    "Report",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_rule",
    "register_rule",
    "PaperReferences",
    "load_paper_references",
]
