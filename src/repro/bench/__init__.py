"""Benchmark harness: sweeps and report rendering."""

from repro.bench.report import ascii_series, ascii_table, format_seconds
from repro.bench.runner import (
    SweepPoint,
    SweepResult,
    paper_mining_parameters,
    run_sweep,
)

__all__ = [
    "SweepPoint",
    "SweepResult",
    "paper_mining_parameters",
    "run_sweep",
    "ascii_table",
    "ascii_series",
    "format_seconds",
]
