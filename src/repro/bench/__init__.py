"""Benchmark harness: sweeps, report rendering, the regression gate.

The regression gate lives in :mod:`repro.bench.regression`; it is *not*
re-exported here so that ``python -m repro.bench.regression`` does not
import the module twice (once via the package, once as ``__main__``).
"""

from repro.bench.report import ascii_series, ascii_table, format_seconds
from repro.bench.runner import (
    SweepPoint,
    SweepResult,
    paper_mining_parameters,
    run_sweep,
)

__all__ = [
    "SweepPoint",
    "SweepResult",
    "paper_mining_parameters",
    "run_sweep",
    "ascii_table",
    "ascii_series",
    "format_seconds",
]
