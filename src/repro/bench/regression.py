"""Benchmark-regression gate: pinned workloads, JSON snapshots, tolerance.

The miner's performance work (the precomputed regulation kernels of
:mod:`repro.core.kernels` and the batched search nodes built on them)
needs a gate that keeps it from silently eroding.  This module provides
one:

* a **pinned suite** of mining workloads — the paper's running example
  plus fixed-seed Figure 7 generator points — every case fully
  determined by pinned seeds, so two runs on one machine measure the
  same search;
* a **snapshot** format, ``BENCH_<rev>.json``: per-case wall time,
  nodes/second, peak RSS and the miner's phase breakdown (candidate
  generation / window partition / emission), plus enough metadata to
  interpret the numbers later;
* a **compare** step that diffs a fresh snapshot against a committed
  baseline with a configurable tolerance and fails (exit code 1) on
  regression.

Run it via ``make bench-regression`` or directly::

    python -m repro.bench.regression run --out BENCH_kernels.json
    python -m repro.bench.regression run --legacy --out BENCH_baseline.json
    python -m repro.bench.regression compare BENCH_kernels.json \
        BENCH_baseline.json --tolerance 0.3

``--legacy`` times the unkernelized per-candidate search path
(``use_kernel=False``) — the committed ``BENCH_baseline.json`` /
``BENCH_kernels.json`` pair documents the speedup on the machine that
produced them.  Because absolute times are hardware-bound, CI does not
compare against committed numbers: its perf-smoke job runs *both* paths
fresh at ``--scale smoke`` and gates on their ratio.  See
``docs/performance.md``.
"""
# This module doubles as a console entry point (python -m
# repro.bench.regression); its report output legitimately owns stdout.
# reglint: disable-file=RL107

from __future__ import annotations

import argparse
import json
import math
import resource
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.runner import paper_mining_parameters
from repro.core.miner import RegClusterMiner
from repro.core.params import MiningParameters
from repro.datasets.running_example import load_running_example
from repro.datasets.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "BenchCase",
    "IncrementalCase",
    "SMOKE_CASES",
    "FULL_CASES",
    "INCREMENTAL_SMOKE_CASES",
    "INCREMENTAL_FULL_CASES",
    "suite_cases",
    "incremental_cases",
    "run_case",
    "run_suite",
    "run_incremental_case",
    "run_incremental_suite",
    "compare_snapshots",
    "main",
]

#: Snapshot schema identifier (bump on incompatible payload changes).
SNAPSHOT_SCHEMA = "bench-regression/v1"

#: Schema for incremental (revision-vs-scratch) snapshots.
INCREMENTAL_SCHEMA = "bench-incremental/v1"


@dataclass(frozen=True)
class BenchCase:
    """One pinned workload: a matrix builder plus mining parameters."""

    name: str
    build: Callable[[], Tuple[ExpressionMatrix, MiningParameters]]
    repeats: int = 3


def _running_example() -> Tuple[ExpressionMatrix, MiningParameters]:
    params = MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )
    return load_running_example(), params


def _fig7(**overrides: int) -> Tuple[ExpressionMatrix, MiningParameters]:
    config = SyntheticConfig(**overrides)  # type: ignore[arg-type]
    data = make_synthetic_dataset(config)
    return data.matrix, paper_mining_parameters(config.n_genes)


#: Tiny cases for CI perf-smoke: seconds, not minutes, per run.
SMOKE_CASES: Tuple[BenchCase, ...] = (
    BenchCase("running-example", _running_example, repeats=5),
    BenchCase(
        "fig7-smoke",
        lambda: _fig7(n_genes=400, n_conditions=16, n_clusters=6),
        repeats=3,
    ),
)

#: The committed-snapshot suite: the Figure 7 default generator point
#: (3000 genes x 30 conditions x 30 clusters, seed 0) is the case the
#: kernel speedup claim is made on.
FULL_CASES: Tuple[BenchCase, ...] = SMOKE_CASES + (
    BenchCase(
        "fig7-genes-1000",
        lambda: _fig7(n_genes=1000),
        repeats=3,
    ),
    BenchCase(
        "fig7-default",
        lambda: _fig7(),
        repeats=3,
    ),
)


def suite_cases(scale: str) -> Tuple[BenchCase, ...]:
    """The case tuple for a scale name (``smoke`` or ``full``)."""
    if scale == "smoke":
        return SMOKE_CASES
    if scale == "full":
        return FULL_CASES
    raise ValueError(f"scale must be 'smoke' or 'full', got {scale!r}")


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    kilobytes so snapshots agree across platforms.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def run_case(case: BenchCase, *, use_kernel: bool = True) -> Dict[str, Any]:
    """Measure one case: best wall time over repeats, plus search stats.

    The matrix (and, for the kernel path, the packed kernel — it is a
    per-(matrix, gamma) precomputation, amortized across every mining
    run that shares the index) is built once outside the timed region;
    each repeat constructs a fresh miner and runs the full search.  The
    *minimum* wall time over repeats is reported: for a deterministic
    workload the minimum is the least-noise estimator.
    """
    matrix, params = case.build()
    timings: List[float] = []
    result = None
    for __ in range(max(case.repeats, 1)):
        miner = RegClusterMiner(matrix, params, use_kernel=use_kernel)
        start = time.perf_counter()
        result = miner.mine()
        timings.append(time.perf_counter() - start)
    assert result is not None
    wall = min(timings)
    stats = result.statistics
    return {
        "case": case.name,
        "use_kernel": bool(use_kernel),
        "repeats": len(timings),
        "wall_seconds": wall,
        "wall_seconds_mean": math.fsum(timings) / len(timings),
        "nodes_expanded": int(stats.nodes_expanded),
        "nodes_per_second": (
            stats.nodes_expanded / wall if wall > 0 else 0.0
        ),
        "clusters": len(result),
        "peak_rss_kb": _peak_rss_kb(),
        "phase_seconds": stats.timers.as_dict(),
    }


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_suite(
    *,
    scale: str = "full",
    use_kernel: bool = True,
    cases: Optional[Sequence[BenchCase]] = None,
) -> Dict[str, Any]:
    """Run the pinned suite and return one snapshot payload."""
    selected = tuple(cases) if cases is not None else suite_cases(scale)
    measured = [
        run_case(case, use_kernel=use_kernel) for case in selected
    ]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "revision": _git_revision(),
        "scale": scale,
        "use_kernel": bool(use_kernel),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "cases": measured,
    }


# ----------------------------------------------------------------------
# Incremental scenario: revision reuse vs mining the child from scratch
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IncrementalCase:
    """One pinned evolve workload: a parent matrix plus an append delta.

    The parent is a fixed-seed two-level matrix; the delta appends
    ``n_appended`` conditions whose values sit strictly inside each
    gene's [min, max] (so Eq. 4 thresholds are float-identical and the
    :class:`~repro.incremental.DirtyShardPlanner` can keep old shards
    clean).  The measurement compares running the *revision job*
    (delta kernel update + stitch + mine dirty shards) against mining
    the child matrix from scratch in a pristine service.
    """

    name: str
    n_genes: int
    n_conditions: int
    n_appended: int
    seed: int
    repeats: int = 3


INCREMENTAL_SMOKE_CASES: Tuple[IncrementalCase, ...] = (
    IncrementalCase("evolve-append3-small", 12, 10, 3, seed=2006),
)

INCREMENTAL_FULL_CASES: Tuple[IncrementalCase, ...] = (
    INCREMENTAL_SMOKE_CASES
    + (IncrementalCase("evolve-append3-medium", 30, 12, 3, seed=2007),)
)


def incremental_cases(scale: str) -> Tuple[IncrementalCase, ...]:
    """The incremental case tuple for a scale name."""
    if scale == "smoke":
        return INCREMENTAL_SMOKE_CASES
    if scale == "full":
        return INCREMENTAL_FULL_CASES
    raise ValueError(f"scale must be 'smoke' or 'full', got {scale!r}")


def _two_level_matrix(
    n_genes: int, n_conditions: int, seed: int
) -> ExpressionMatrix:
    rng = np.random.default_rng(seed)
    low = rng.uniform(0.0, 2.0, size=(n_genes, 1))
    high = low + rng.uniform(3.0, 6.0, size=(n_genes, 1))
    choice = rng.choice([0.0, 1.0], size=(n_genes, n_conditions))
    return ExpressionMatrix(low + choice * (high - low))


def _in_range_append(matrix: ExpressionMatrix, n_appended: int, seed: int):
    from repro.incremental import AppendConditions

    rng = np.random.default_rng(seed)
    lo = matrix.values.min(axis=1)
    hi = matrix.values.max(axis=1)
    # Near-midpoint values: every gap to an existing level stays under
    # the gamma=0.6 threshold, so old shards can classify clean.
    frac = rng.uniform(0.45, 0.55, size=(n_appended, matrix.n_genes))
    return AppendConditions(
        names=tuple(f"appended{i}" for i in range(n_appended)),
        values=lo[None, :] + frac * (hi - lo)[None, :],
    )


def run_incremental_case(case: IncrementalCase) -> Dict[str, Any]:
    """Measure one evolve workload: revision job vs scratch child mine.

    Both sides run through :class:`~repro.service.MiningService` on a
    throwaway store, so the comparison includes the real job path
    (persistence, planning, kernel delta-update, stitching) — not just
    the raw search.  The parent mine is outside the timed region; the
    minimum over repeats is reported for both sides.
    """
    import shutil
    import tempfile

    from repro.incremental import apply_delta
    from repro.matrix.summary import matrix_digest
    from repro.service.jobs import JobState
    from repro.service.service import MiningService

    params = MiningParameters(
        min_genes=2, min_conditions=2, gamma=0.6, epsilon=0.1
    )
    parent = _two_level_matrix(case.n_genes, case.n_conditions, case.seed)
    delta = _in_range_append(parent, case.n_appended, case.seed + 1)
    child = apply_delta(parent, delta)
    scratch_timings: List[float] = []
    revision_timings: List[float] = []
    reused = 0
    for __ in range(max(case.repeats, 1)):
        root = Path(tempfile.mkdtemp(prefix="bench-incremental-"))
        try:
            scratch = MiningService(root / "scratch", n_workers=1)
            start = time.perf_counter()
            scratch_record = scratch.submit(child, params)
            scratch.run_pending()
            scratch_timings.append(time.perf_counter() - start)
            if scratch.status(scratch_record.job_id).state is not (
                JobState.DONE
            ):
                raise RuntimeError(f"{case.name}: scratch mine failed")

            service = MiningService(root / "store", n_workers=1)
            base = service.submit(parent, params)
            service.run_pending()
            if service.status(base.job_id).state is not JobState.DONE:
                raise RuntimeError(f"{case.name}: parent mine failed")
            start = time.perf_counter()
            __, record = service.submit_revision(
                matrix_digest(parent), delta, params
            )
            service.run_pending()
            revision_timings.append(time.perf_counter() - start)
            done = service.status(record.job_id)
            if done.state is not JobState.DONE:
                raise RuntimeError(f"{case.name}: revision job failed")
            reused = len(done.reused_shards or [])
        finally:
            shutil.rmtree(root, ignore_errors=True)
    revision_wall = min(revision_timings)
    scratch_wall = min(scratch_timings)
    return {
        "case": case.name,
        "n_genes": case.n_genes,
        "n_conditions": case.n_conditions,
        "n_appended": case.n_appended,
        "repeats": len(revision_timings),
        # ``wall_seconds`` is the revision side so the stock
        # ``compare`` subcommand can gate incremental snapshots too.
        "wall_seconds": revision_wall,
        "scratch_seconds": scratch_wall,
        "speedup": (
            scratch_wall / revision_wall if revision_wall > 0 else 0.0
        ),
        "reused_shards": reused,
        "n_shards": case.n_conditions + case.n_appended,
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_incremental_suite(*, scale: str = "full") -> Dict[str, Any]:
    """Run the pinned incremental suite into one snapshot payload."""
    measured = [
        run_incremental_case(case) for case in incremental_cases(scale)
    ]
    return {
        "schema": INCREMENTAL_SCHEMA,
        "revision": _git_revision(),
        "scale": scale,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "cases": measured,
    }


# ----------------------------------------------------------------------
# Compare
# ----------------------------------------------------------------------

def compare_snapshots(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = 0.3,
) -> Tuple[List[str], List[str]]:
    """Diff two snapshots; returns ``(report_lines, regressions)``.

    A case regresses when its wall time exceeds the baseline's by more
    than ``tolerance`` (fractional: ``0.3`` allows up to 1.3x).  Cases
    present in only one snapshot are reported but never fail the gate —
    suites are allowed to grow.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base_by_name = {c["case"]: c for c in baseline.get("cases", [])}
    lines: List[str] = []
    regressions: List[str] = []
    header = (
        f"{'case':<20} {'base (s)':>10} {'current (s)':>12} "
        f"{'ratio':>7}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in current.get("cases", []):
        name = entry["case"]
        base = base_by_name.pop(name, None)
        if base is None:
            lines.append(f"{name:<20} {'--':>10} "
                         f"{entry['wall_seconds']:>12.4f} {'--':>7}  new")
            continue
        ratio = (
            entry["wall_seconds"] / base["wall_seconds"]
            if base["wall_seconds"] > 0
            else float("inf")
        )
        ok = ratio <= 1.0 + tolerance
        status = "ok" if ok else f"REGRESSION (> {1.0 + tolerance:.2f}x)"
        lines.append(
            f"{name:<20} {base['wall_seconds']:>10.4f} "
            f"{entry['wall_seconds']:>12.4f} {ratio:>6.2f}x  {status}"
        )
        if not ok:
            regressions.append(
                f"{name}: {entry['wall_seconds']:.4f}s vs baseline "
                f"{base['wall_seconds']:.4f}s ({ratio:.2f}x, tolerance "
                f"{1.0 + tolerance:.2f}x)"
            )
    for name in base_by_name:
        lines.append(f"{name:<20} (present only in baseline)")
    return lines, regressions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    snapshot = run_suite(scale=args.scale, use_kernel=not args.legacy)
    text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    for entry in snapshot["cases"]:
        print(
            f"{entry['case']:<20} {entry['wall_seconds']:.4f}s  "
            f"{entry['nodes_per_second']:>10.0f} nodes/s  "
            f"{entry['clusters']} clusters  "
            f"rss {entry['peak_rss_kb']} kB"
        )
    if not args.out:
        print(text, end="")
    return 0


def _cmd_incremental(args: argparse.Namespace) -> int:
    snapshot = run_incremental_suite(scale=args.scale)
    text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    slow: List[str] = []
    for entry in snapshot["cases"]:
        print(
            f"{entry['case']:<24} revision {entry['wall_seconds']:.4f}s  "
            f"scratch {entry['scratch_seconds']:.4f}s  "
            f"({entry['speedup']:.2f}x, reused "
            f"{entry['reused_shards']}/{entry['n_shards']} shards)"
        )
        ceiling = entry["scratch_seconds"] * (1.0 + args.tolerance)
        if entry["wall_seconds"] > ceiling:
            slow.append(
                f"{entry['case']}: revision {entry['wall_seconds']:.4f}s "
                f"exceeds scratch {entry['scratch_seconds']:.4f}s "
                f"beyond tolerance {1.0 + args.tolerance:.2f}x"
            )
        if entry["reused_shards"] == 0:
            slow.append(f"{entry['case']}: revision job reused no shards")
    if slow:
        print()
        for line in slow:
            print(f"regression: {line}", file=sys.stderr)
        return 1
    print("\nincremental path within tolerance "
          f"{1.0 + args.tolerance:.2f}x of scratch, with shard reuse")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    current = json.loads(Path(args.current).read_text(encoding="utf-8"))
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    lines, regressions = compare_snapshots(
        current, baseline, tolerance=args.tolerance
    )
    for line in lines:
        print(line)
    if regressions:
        print()
        for regression in regressions:
            print(f"regression: {regression}", file=sys.stderr)
        return 1
    print("\nno regressions within tolerance "
          f"{1.0 + args.tolerance:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Pinned-workload benchmark snapshots and the "
        "regression gate over them.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="measure the pinned suite")
    run_p.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="full",
        help="smoke = tiny CI cases; full = committed-snapshot suite",
    )
    run_p.add_argument(
        "--legacy",
        action="store_true",
        help="time the unkernelized per-candidate search path",
    )
    run_p.add_argument(
        "--out", default=None, help="write the snapshot JSON here"
    )
    run_p.set_defaults(func=_cmd_run)

    inc_p = sub.add_parser(
        "incremental",
        help="measure revision (delta-reuse) jobs vs from-scratch "
        "mining and gate the ratio",
    )
    inc_p.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="full",
        help="smoke = tiny CI case; full = committed-snapshot suite",
    )
    inc_p.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fractional allowed slowdown of the revision job over the "
        "scratch mine (default %(default)s; reuse usually wins, the "
        "band absorbs service overhead on tiny cases)",
    )
    inc_p.add_argument(
        "--out", default=None, help="write the snapshot JSON here"
    )
    inc_p.set_defaults(func=_cmd_incremental)

    cmp_p = sub.add_parser(
        "compare", help="gate a snapshot against a baseline"
    )
    cmp_p.add_argument("current", help="freshly produced snapshot JSON")
    cmp_p.add_argument("baseline", help="baseline snapshot JSON")
    cmp_p.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="fractional allowed wall-time growth per case "
        "(0.3 allows 1.3x; default %(default)s)",
    )
    cmp_p.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
