"""Text rendering for benchmark outputs.

Every benchmark prints the rows/series the corresponding paper table or
figure reports.  These helpers render aligned ASCII tables and simple
horizontal bar "plots" so the series shapes (the reproduction target) are
visible straight from the bench log.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["ascii_table", "ascii_series", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-scale duration formatting."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned table with a header rule."""
    cells = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(headers[k]), *(len(r[k]) for r in cells)) if cells else len(headers[k])
        for k in range(len(headers))
    ]
    head = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(head)
    body = [
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([head, rule, *body])


def ascii_series(
    label: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    width: int = 40,
    unit: Optional[str] = None,
) -> str:
    """A horizontal-bar rendering of one figure series.

    The bar lengths are proportional to the y values, so the curve shape
    (linear / superlinear / exponential) is readable from the log.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be parallel")
    lines: List[str] = [label]
    top = max(ys) if ys else 0.0
    for x, y in zip(xs, ys):
        bar = "#" * (int(round(width * y / top)) if top > 0 else 0)
        shown = format_seconds(y) if unit == "s" else f"{y:g}"
        lines.append(f"  {str(x):>8}  {shown:>9}  {bar}")
    return "\n".join(lines)
