"""Timing harness behind the efficiency experiments (Figure 7).

The paper's Figure 7 plots average reg-cluster runtime while one generator
parameter varies and the other two stay at their defaults.  This module
provides exactly that sweep: generate a dataset for each parameter value,
run the miner with the paper's mining parameters (``MinG = 0.01 * #g``,
``MinC = 6``, ``gamma = 0.1``, ``epsilon = 0.01``), and collect per-point
timings and search statistics.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.miner import MiningResult, RegClusterMiner
from repro.core.params import MiningParameters
from repro.datasets.synthetic import SyntheticConfig, make_synthetic_dataset

__all__ = ["SweepPoint", "SweepResult", "paper_mining_parameters", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a parameter sweep."""

    parameter: str
    value: int
    seconds: float
    n_clusters: int
    nodes_expanded: int

    def __str__(self) -> str:
        return (
            f"{self.parameter}={self.value}: {self.seconds:.3f}s, "
            f"{self.n_clusters} clusters, {self.nodes_expanded} nodes"
        )


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep, in measurement order."""

    parameter: str
    points: Sequence[SweepPoint]

    def seconds(self) -> List[float]:
        return [p.seconds for p in self.points]

    def values(self) -> List[int]:
        return [p.value for p in self.points]


def paper_mining_parameters(n_genes: int) -> MiningParameters:
    """The Figure 7 mining configuration for a given gene count.

    ``MinG = 0.01 * #g`` (at least 2), ``MinC = 6``, ``gamma = 0.1``,
    ``epsilon = 0.01``.
    """
    return MiningParameters(
        min_genes=max(int(round(0.01 * n_genes)), 2),
        min_conditions=6,
        gamma=0.1,
        epsilon=0.01,
    )


def _time_one(
    config: SyntheticConfig,
    params: Optional[MiningParameters],
    repeats: int,
) -> SweepPoint:
    if params is None:
        params = paper_mining_parameters(config.n_genes)
    timings: List[float] = []
    result: Optional[MiningResult] = None
    for __ in range(max(repeats, 1)):
        data = make_synthetic_dataset(config)
        miner = RegClusterMiner(data.matrix, params)
        start = time.perf_counter()
        result = miner.mine()
        timings.append(time.perf_counter() - start)
    assert result is not None
    return SweepPoint(
        parameter="",
        value=0,
        seconds=math.fsum(timings) / len(timings),
        n_clusters=len(result),
        nodes_expanded=result.statistics.nodes_expanded,
    )


def run_sweep(
    parameter: str,
    values: Sequence[int],
    *,
    base_config: Optional[SyntheticConfig] = None,
    params_factory: Optional[Callable[[SyntheticConfig], MiningParameters]] = None,
    repeats: int = 1,
) -> SweepResult:
    """Vary one generator parameter and time the miner at each value.

    Parameters
    ----------
    parameter:
        ``"n_genes"``, ``"n_conditions"`` or ``"n_clusters"`` — the
        paper's ``#g``, ``#cond`` and ``#clus``.
    values:
        The x-axis of the sweep.
    base_config:
        Generator defaults for the parameters not being varied.
    params_factory:
        Custom mining parameters per point; defaults to the paper's
        Figure 7 configuration.
    repeats:
        Average timing over this many full runs per point.
    """
    if parameter not in ("n_genes", "n_conditions", "n_clusters"):
        raise ValueError(
            "parameter must be one of n_genes / n_conditions / n_clusters, "
            f"got {parameter!r}"
        )
    if base_config is None:
        base_config = SyntheticConfig()
    points: List[SweepPoint] = []
    for value in values:
        config = SyntheticConfig(
            **{**base_config.__dict__, parameter: int(value)}
        )
        params = params_factory(config) if params_factory else None
        timing = _time_one(config, params, repeats)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=int(value),
                seconds=timing.seconds,
                n_clusters=timing.n_clusters,
                nodes_expanded=timing.nodes_expanded,
            )
        )
    return SweepResult(parameter=parameter, points=tuple(points))
