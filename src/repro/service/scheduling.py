"""Job scheduling: priority classes with weighted-fair dequeue.

The daemon's submission queue is a :class:`FairJobQueue` — three
priority classes (``high`` / ``normal`` / ``low``) drained by weighted
round-robin.  Under contention the classes share the executor in
proportion to their weights (default 4:2:1), so a burst of ``low``
sweeps can never starve an interactive ``high`` submission, and a
steady ``high`` stream still leaves ``low`` work a guaranteed share
instead of starving it outright (the difference between *priority* and
*preemption*).  When only one class has work the queue is
work-conserving: whatever is there is served immediately.

The queue is a drop-in replacement for the ``queue.Queue`` the service
used before: ``put`` / ``get(timeout)`` / ``get_nowait`` / ``qsize``
with :class:`queue.Empty` on timeout.  ``put(None)`` enqueues a wake
token (used by ``stop()`` to unblock the executor loop) that is always
delivered before job ids, regardless of class backlogs.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = [
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "DEFAULT_WEIGHTS",
    "FairJobQueue",
    "normalize_priority",
]

#: Recognized priority classes, highest first.
PRIORITIES: Tuple[str, ...] = ("high", "normal", "low")

#: The class a submission lands in when it does not name one.
DEFAULT_PRIORITY = "normal"

#: Executor shares under contention (weighted round-robin slots).
DEFAULT_WEIGHTS: Dict[str, int] = {"high": 4, "normal": 2, "low": 1}


def normalize_priority(value: Optional[str]) -> str:
    """Validate a submission's priority (``None`` -> the default).

    >>> normalize_priority(None)
    'normal'
    >>> normalize_priority("HIGH")
    'high'
    >>> normalize_priority("urgent")
    Traceback (most recent call last):
        ...
    ValueError: unknown priority 'urgent' (expected high, normal, low)
    """
    if value is None:
        return DEFAULT_PRIORITY
    lowered = str(value).strip().lower()
    if lowered not in PRIORITIES:
        raise ValueError(
            f"unknown priority {value!r} "
            f"(expected {', '.join(PRIORITIES)})"
        )
    return lowered


class FairJobQueue:
    """A blocking queue with weighted-fair service across priorities.

    Dequeue walks a fixed weighted round-robin schedule (e.g.
    ``high x4, normal x2, low x1``), skipping empty classes, so every
    non-empty class is visited within one full rotation — bounded
    bypass, not strict priority.
    """

    def __init__(self, weights: Optional[Dict[str, int]] = None) -> None:
        chosen = dict(DEFAULT_WEIGHTS if weights is None else weights)
        unknown = set(chosen) - set(PRIORITIES)
        if unknown:
            raise ValueError(
                f"unknown priority class(es): {', '.join(sorted(unknown))}"
            )
        schedule = []
        for priority in PRIORITIES:
            weight = int(chosen.get(priority, 0))
            if weight < 0:
                raise ValueError(
                    f"weight for {priority!r} must be >= 0, got {weight}"
                )
            schedule.extend([priority] * weight)
        if not schedule:
            raise ValueError("at least one priority needs a positive weight")
        self._schedule: Tuple[str, ...] = tuple(schedule)
        self._cursor = 0
        self._cond = threading.Condition()
        self._queues: Dict[str, Deque[str]] = {
            priority: deque() for priority in PRIORITIES
        }
        #: pending ``None`` wake tokens; always served first
        self._wakes = 0

    def put(self, item: Optional[str], priority: str = DEFAULT_PRIORITY,
            ) -> None:
        """Enqueue a job id into its class (``None`` = wake token)."""
        with self._cond:
            if item is None:
                self._wakes += 1
            else:
                self._queues[normalize_priority(priority)].append(item)
            self._cond.notify()

    def _pick(self) -> Optional[str]:
        """Take the next item per the weighted schedule (lock held)."""
        if self._wakes > 0:
            self._wakes -= 1
            return None
        for offset in range(len(self._schedule)):
            slot = (self._cursor + offset) % len(self._schedule)
            bucket = self._queues[self._schedule[slot]]
            if bucket:
                # Resume after the slot that served, so consecutive
                # dequeues walk the schedule instead of re-serving the
                # first non-empty class forever.
                self._cursor = (slot + 1) % len(self._schedule)
                return bucket.popleft()
        raise queue.Empty

    def _non_empty(self) -> bool:
        return self._wakes > 0 or any(self._queues[p] for p in PRIORITIES)

    def get(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next item per weighted-fair order; :class:`queue.Empty` on
        timeout (``None`` blocks forever, matching ``queue.Queue``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._non_empty():
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0.0 or not self._cond.wait(remaining):
                    if not self._non_empty():
                        raise queue.Empty
            return self._pick()

    def get_nowait(self) -> Optional[str]:
        """Non-blocking :meth:`get`; :class:`queue.Empty` when idle."""
        with self._cond:
            if not self._non_empty():
                raise queue.Empty
            return self._pick()

    def qsize(self) -> int:
        """Queued job ids (wake tokens excluded)."""
        with self._cond:
            return sum(len(self._queues[p]) for p in PRIORITIES)

    def depths(self) -> Dict[str, int]:
        """Per-class backlog, for health/metrics snapshots."""
        with self._cond:
            return {p: len(self._queues[p]) for p in PRIORITIES}
