"""Distributed shard mining: the multi-node work-queue fleet.

The sharded executor (:mod:`repro.service.executor`) proves that the
Fig. 5 search decomposes into independent shards — one per first chain
condition — whose deterministic merge is bit-identical to
single-process mining.  This module stretches that decomposition across
machines: the daemon becomes a **coordinator** handing out *shard
leases* over HTTP/JSON, and **node daemons** (``reg-cluster node``)
pull leases, mine their shards locally with the very same
:func:`~repro.service.executor.mine_sharded_outcome`, and post the
results back.  Because remote results land in the same per-shard
:class:`~repro.service.jobs.JobStore` checkpoints and flow through the
same merge, a distributed job resumes, degrades and — crucially —
produces *byte-identical* output to a local one (docs/distributed.md).

Coordinator side
----------------
:class:`FleetState` is the work queue.  One lock plus one condition
variable guard every mutable field; the HTTP handler threads
(lease/complete/heartbeat) and the executor thread
(:meth:`FleetState.run_job`) rendezvous on it.

* **Leases** — a node leases up to ``max_lease_shards`` shards of one
  job at a time.  A leased shard cannot be leased again (double-lease
  prevention); the lease carries the matrix digest, parameters, and
  the job's mine-span :class:`~repro.obs.trace.SpanContext` so remote
  shard spans stitch under the coordinator's job root trace.
* **Liveness** — every lease has a deadline ``granted_at +
  lease_ttl``; a heartbeat from the owning node extends its leases.  A
  node that dies (SIGKILL, partition) stops heartbeating, its leases
  expire, and the reclaim sweep re-queues the shards — each reclaim
  charges **one failed attempt** against the shard's existing
  :class:`~repro.service.resilience.RetryPolicy` budget, so a shard
  that keeps landing on dying nodes eventually degrades exactly like a
  shard that keeps crashing locally.
* **Affinity** — lease requests advertise the kernel artifacts the
  node already holds (:meth:`~repro.service.cache.ArtifactCache
  .kernel_keys`); the coordinator prefers handing out shards of a job
  whose (matrix, gamma) kernel the node has already built, falling
  back freely.  The bit-packed RWave^gamma kernel is thus built once
  per node, not once per shard.
* **Idempotence** — a ``complete`` for a reclaimed or finished lease
  is rejected with ``{"accepted": false}`` and counted; the result the
  late node computed is identical to whatever the retry produced
  (shards are deterministic), so dropping it is always safe.

Node side
---------
:class:`FleetNode` is the worker: heartbeat thread + lease loop.  It
fetches matrices and kernels from the coordinator *by content digest*
(``GET /artifacts/...``), keeps them in its own
:class:`~repro.service.cache.ArtifactCache`, and mines leased shards
via ``mine_sharded_outcome(..., shards=leased)`` — reusing the entire
retry-free single-machine pipeline, including its tracing.

Lock discipline (docs/robustness.md, "Concurrency model"): no file
I/O, sleeping, or network calls ever run under the fleet lock.
Checkpoint persistence and trace emission happen outside it, bracketed
by a per-job ``persisting`` counter so a job cannot finish while a
completion is still being persisted.
"""

from __future__ import annotations

import io
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.cluster import RegCluster
from repro.core.miner import MiningCancelled, MiningTimeout, ProgressCallback
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.summary import matrix_digest
from repro.obs.log import get_logger
from repro.obs.trace import (
    NULL_TRACER,
    SpanContext,
    Tracer,
    load_spans,
)
from repro.service.cache import ArtifactCache, kernel_cache_key
from repro.service.executor import (
    ShardResult,
    ShardedOutcome,
    merge_shard_results,
    mine_sharded_outcome,
)
from repro.service.jobs import parameters_from_dict, parameters_to_dict
from repro.service.resilience import FaultKind, FaultPlan, RetryPolicy

__all__ = [
    "FleetNode",
    "FleetState",
    "ShardLease",
    "shard_to_wire",
    "shard_from_wire",
]

_LOG = get_logger("repro.service.fleet")

#: Default lease time-to-live in seconds; heartbeats extend it.
DEFAULT_LEASE_TTL = 30.0
#: Default shards handed out per lease.
DEFAULT_LEASE_SHARDS = 2


def _new_lease_id() -> str:
    return os.urandom(8).hex()


# ----------------------------------------------------------------------
# Wire form of one shard result (matches JobStore.save_shard's schema)
# ----------------------------------------------------------------------

def shard_to_wire(shard: ShardResult) -> Dict[str, Any]:
    """JSON form of one shard result for the ``complete`` payload."""
    start, clusters, stats = shard
    return {
        "start": int(start),
        "clusters": [
            {
                "chain": list(cluster.chain),
                "p_members": list(cluster.p_members),
                "n_members": list(cluster.n_members),
            }
            for cluster in clusters
        ],
        "stats": {str(key): float(value) for key, value in stats.items()},
    }


def shard_from_wire(payload: Mapping[str, Any]) -> ShardResult:
    """Inverse of :func:`shard_to_wire`; raises ``ValueError`` on junk.

    Cluster members travel as integer gene/condition ids, so the
    reconstructed :class:`~repro.core.cluster.RegCluster` objects are
    *equal* to the ones the node mined — the bit-identical merge does
    not care which process produced a shard.
    """
    try:
        start = int(payload["start"])
        clusters = [
            RegCluster(
                chain=tuple(int(c) for c in entry["chain"]),
                p_members=tuple(int(g) for g in entry["p_members"]),
                n_members=tuple(int(g) for g in entry.get("n_members", ())),
            )
            for entry in payload["clusters"]
        ]
        stats = {
            str(key): float(value)
            for key, value in payload["stats"].items()
        }
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed shard payload: {error}") from None
    return start, clusters, stats


# ----------------------------------------------------------------------
# Coordinator state
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardLease:
    """One granted lease: a batch of shards of one job, one deadline."""

    lease_id: str
    node_id: str
    job_id: str
    shards: Tuple[int, ...]
    granted_at: float  # monotonic
    deadline: float  # monotonic; extended by heartbeats


@dataclass
class _NodeInfo:
    """What the coordinator knows about one worker node."""

    node_id: str
    last_seen: float  # monotonic
    kernels: Set[str] = field(default_factory=set)
    shards_completed: int = 0
    shards_failed: int = 0


@dataclass
class _FleetStats:
    """Counters behind the ``repro_fleet_*`` metric families.

    Mutated only under the owning :class:`FleetState` lock.
    """

    leases_granted: int = 0
    leases_expired: int = 0
    shards_reclaimed: int = 0
    affinity_hits: int = 0
    affinity_misses: int = 0
    heartbeats: int = 0
    completions_rejected: Dict[str, int] = field(default_factory=dict)
    shards_completed: Dict[str, int] = field(default_factory=dict)


class _FleetJob:
    """Per-job queue state while :meth:`FleetState.run_job` is active."""

    def __init__(
        self,
        job_id: str,
        matrix: ExpressionMatrix,
        params: MiningParameters,
        *,
        matrix_digest: str,
        completed: Optional[Mapping[int, ShardResult]],
        on_shard_complete: Optional[Callable[[ShardResult], None]],
        tracer: Tracer,
        trace_parent: Optional[SpanContext],
    ) -> None:
        self.job_id = job_id
        self.params = params
        self.params_dict = parameters_to_dict(params)
        self.matrix_digest = matrix_digest
        self.kernel_key = kernel_cache_key(matrix_digest, params.gamma)
        self.on_shard_complete = on_shard_complete
        self.tracer = tracer
        self.trace_parent = trace_parent
        self.resumed: Dict[int, ShardResult] = {}
        for start, shard in (completed or {}).items():
            start = int(start)
            if not 0 <= start < matrix.n_conditions:
                raise ValueError(
                    f"checkpointed shard {start} out of range for a matrix "
                    f"with {matrix.n_conditions} conditions"
                )
            self.resumed[start] = shard
        self.pending: List[int] = [
            start
            for start in range(matrix.n_conditions)
            if start not in self.resumed
        ]
        #: monotonic time before which a re-queued shard must not be
        #: leased again (the RetryPolicy backoff, enforced queue-side).
        self.retry_at: Dict[int, float] = {}
        self.leases: Dict[int, ShardLease] = {}
        self.results: Dict[int, ShardResult] = {}
        self.provenance: Dict[int, Dict[str, Any]] = {}
        self.failed_attempts: Dict[int, int] = {}
        self.missing: Dict[int, str] = {}
        self.fault_injections: Dict[str, int] = {}
        #: completions accepted but whose checkpoint/trace persistence
        #: is still in flight on a handler thread; the job cannot
        #: finish until this drains back to zero.
        self.persisting = 0

    def due_pending(self, now: float) -> List[int]:
        """Shards leasable right now (pending and past any backoff)."""
        return [
            start
            for start in self.pending
            if self.retry_at.get(start, 0.0) <= now
        ]

    def finished(self) -> bool:
        return (
            not self.pending
            and not self.leases
            and self.persisting == 0
        )

    def all_shards(self) -> List[ShardResult]:
        return list(self.resumed.values()) + list(self.results.values())

    def partial_clusters(self) -> List[RegCluster]:
        return merge_shard_results(self.all_shards(), self.params).clusters

    def outcome(self) -> ShardedOutcome:
        return ShardedOutcome(
            result=merge_shard_results(self.all_shards(), self.params),
            missing_shards=sorted(self.missing),
            shard_errors=dict(self.missing),
            failed_attempts=dict(self.failed_attempts),
            resumed_shards=sorted(self.resumed),
            fault_injections=dict(self.fault_injections),
        )

    def provenance_dict(self) -> Dict[str, Any]:
        """The job record's ``shard_provenance`` payload."""
        out: Dict[str, Any] = {}
        for start in sorted(self.resumed):
            out[str(start)] = {"node": "checkpoint", "attempts": 0}
        for start in sorted(self.provenance):
            out[str(start)] = dict(self.provenance[start])
        for start in sorted(self.missing):
            out[str(start)] = {
                "node": None,
                "attempts": self.failed_attempts.get(start, 0),
            }
        return out


class FleetState:
    """The coordinator's work queue: leases, liveness, reclaim, affinity.

    Parameters
    ----------
    lease_ttl:
        Seconds a lease stays valid without a heartbeat from its node.
        Heartbeats extend every lease the node holds; an expired lease
        is reclaimed and its shards re-queued.
    retry:
        The per-shard retry budget and backoff shared with local
        execution.  Every reclaim or reported node-side failure counts
        one attempt; an exhausted budget degrades the job, exactly as
        in :func:`~repro.service.executor.mine_sharded_outcome`.
    max_lease_shards:
        Shards handed out per lease grant.
    local_mining:
        When true (default), :meth:`run_job` mines unleased shards on
        the coordinator itself between waits — a fleet with zero nodes
        degenerates to plain local execution, never a hung job.
    """

    def __init__(
        self,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        retry: Optional[RetryPolicy] = None,
        max_lease_shards: int = DEFAULT_LEASE_SHARDS,
        local_mining: bool = True,
    ) -> None:
        if lease_ttl <= 0.0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_lease_shards < 1:
            raise ValueError(
                f"max_lease_shards must be >= 1, got {max_lease_shards}"
            )
        self.lease_ttl = float(lease_ttl)
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_lease_shards = int(max_lease_shards)
        self.local_mining = local_mining
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, _FleetJob] = {}
        self._nodes: Dict[str, _NodeInfo] = {}
        self._stats = _FleetStats()

    # ------------------------------------------------------------------
    # Locked helpers (callers hold self._lock)
    # ------------------------------------------------------------------

    def _touch_node_locked(
        self, node_id: str, kernels: Optional[Sequence[str]], now: float
    ) -> _NodeInfo:
        node = self._nodes.get(node_id)
        if node is None:
            node = _NodeInfo(node_id=node_id, last_seen=now)
            self._nodes[node_id] = node
        node.last_seen = now
        if kernels is not None:
            node.kernels = {str(key) for key in kernels}
        return node

    def _fail_shard_locked(
        self,
        job: _FleetJob,
        start: int,
        message: str,
        *,
        kind: Optional[str] = None,
        now: float,
    ) -> bool:
        """Charge one failed attempt; ``True`` if the shard re-queued."""
        job.leases.pop(start, None)
        tries = job.failed_attempts.get(start, 0) + 1
        job.failed_attempts[start] = tries
        if kind is not None and kind in {k.value for k in FaultKind}:
            job.fault_injections[kind] = (
                job.fault_injections.get(kind, 0) + 1
            )
        if tries <= self.retry.max_retries:
            job.pending.append(start)
            job.pending.sort()
            job.retry_at[start] = now + self.retry.backoff(start, tries - 1)
            return True
        job.missing[start] = message
        return False

    def _reclaim_locked(self, now: float) -> None:
        """Expire dead leases and re-queue their shards."""
        for job in self._jobs.values():
            expired_leases: Set[str] = set()
            for start, lease in list(job.leases.items()):
                if lease.deadline > now:
                    continue
                expired_leases.add(lease.lease_id)
                requeued = self._fail_shard_locked(
                    job,
                    start,
                    f"lease {lease.lease_id} on node {lease.node_id} "
                    f"expired after {self.lease_ttl:g}s",
                    now=now,
                )
                self._stats.shards_reclaimed += 1
                _LOG.warning(
                    "fleet.lease.reclaimed",
                    job_id=job.job_id,
                    shard=start,
                    node=lease.node_id,
                    lease_id=lease.lease_id,
                    requeued=requeued,
                )
            if expired_leases:
                self._stats.leases_expired += len(expired_leases)
                self._cond.notify_all()

    def _complete_shard_locked(
        self,
        job: _FleetJob,
        start: int,
        shard: ShardResult,
        *,
        node: str,
        now: float,
    ) -> None:
        job.leases.pop(start, None)
        job.retry_at.pop(start, None)
        job.pending = [s for s in job.pending if s != start]
        job.results[start] = shard
        job.provenance[start] = {
            "node": node,
            "attempts": job.failed_attempts.get(start, 0) + 1,
        }
        source = "local" if node == "local" else "remote"
        self._stats.shards_completed[source] = (
            self._stats.shards_completed.get(source, 0) + 1
        )
        if node != "local":
            info = self._touch_node_locked(node, None, now)
            info.shards_completed += 1

    # ------------------------------------------------------------------
    # Node-facing protocol (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def heartbeat(
        self, node_id: str, kernels: Sequence[str] = ()
    ) -> Dict[str, Any]:
        """Record node liveness; extends every lease the node holds."""
        now = time.monotonic()
        with self._cond:
            self._touch_node_locked(node_id, kernels, now)
            self._stats.heartbeats += 1
            extended = 0
            for job in self._jobs.values():
                for start, lease in list(job.leases.items()):
                    if lease.node_id == node_id and lease.deadline > now:
                        job.leases[start] = ShardLease(
                            lease_id=lease.lease_id,
                            node_id=lease.node_id,
                            job_id=lease.job_id,
                            shards=lease.shards,
                            granted_at=lease.granted_at,
                            deadline=now + self.lease_ttl,
                        )
                        extended += 1
        return {
            "ok": True,
            "lease_ttl": self.lease_ttl,
            "leases_extended": extended,
        }

    def lease(
        self,
        node_id: str,
        kernels: Sequence[str] = (),
        max_shards: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """Grant a batch of shards of one job, or ``None`` when idle.

        Affinity: jobs whose kernel artifact the node already holds are
        preferred; the grant says whether it was an affinity hit so the
        node (and the metrics) can tell.
        """
        now = time.monotonic()
        budget = (
            self.max_lease_shards
            if max_shards is None
            else max(1, min(int(max_shards), self.max_lease_shards))
        )
        with self._cond:
            node = self._touch_node_locked(node_id, kernels, now)
            self._reclaim_locked(now)
            candidates = [
                job for job in self._jobs.values() if job.due_pending(now)
            ]
            if not candidates:
                return None
            affine = [
                job for job in candidates if job.kernel_key in node.kernels
            ]
            if affine:
                job = affine[0]
                self._stats.affinity_hits += 1
                affinity_hit = True
            else:
                job = candidates[0]
                self._stats.affinity_misses += 1
                affinity_hit = False
            take = job.due_pending(now)[:budget]
            lease = ShardLease(
                lease_id=_new_lease_id(),
                node_id=node_id,
                job_id=job.job_id,
                shards=tuple(take),
                granted_at=now,
                deadline=now + self.lease_ttl,
            )
            for start in take:
                job.pending.remove(start)
                job.retry_at.pop(start, None)
                job.leases[start] = lease
            self._stats.leases_granted += 1
            trace = (
                None
                if job.trace_parent is None or not job.tracer.enabled
                else {
                    "trace_id": job.trace_parent.trace_id,
                    "span_id": job.trace_parent.span_id,
                }
            )
            payload = {
                "lease_id": lease.lease_id,
                "job_id": job.job_id,
                "shards": list(take),
                "attempts": {
                    str(start): job.failed_attempts.get(start, 0)
                    for start in take
                },
                "matrix_digest": job.matrix_digest,
                "parameters": dict(job.params_dict),
                "ttl": self.lease_ttl,
                "affinity_hit": affinity_hit,
                "trace": trace,
            }
        _LOG.info(
            "fleet.lease.granted",
            job_id=payload["job_id"],
            node=node_id,
            shards=payload["shards"],
            affinity_hit=affinity_hit,
        )
        return payload

    def complete(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Accept (or idempotently reject) one shard completion.

        A late ``complete`` — the lease was reclaimed, the job
        finished, or the shard already has a result — returns
        ``{"accepted": false, "reason": ...}`` without raising: shard
        results are deterministic, so dropping a duplicate is always
        correct.  Malformed payloads raise :class:`ValueError` (HTTP
        400).
        """
        try:
            job_id = str(payload["job_id"])
            lease_id = str(payload["lease_id"])
            node_id = str(payload["node_id"])
            start = int(payload["shard"])
            status = str(payload.get("status", "ok"))
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"malformed complete payload: {error}"
            ) from None
        shard: Optional[ShardResult] = None
        if status == "ok":
            shard = shard_from_wire(payload)  # parse outside the lock
        spans = payload.get("spans") or []
        now = time.monotonic()
        with self._cond:
            self._touch_node_locked(node_id, None, now)
            job = self._jobs.get(job_id)
            if job is None:
                return self._reject_locked("unknown-job", job_id, start)
            if start in job.results or start in job.resumed:
                return self._reject_locked("duplicate", job_id, start)
            lease = job.leases.get(start)
            if lease is None or lease.lease_id != lease_id:
                return self._reject_locked("lease-expired", job_id, start)
            if status != "ok":
                message = str(payload.get("error") or "node-reported failure")
                kind = payload.get("kind")
                requeued = self._fail_shard_locked(
                    job, start, f"node {node_id}: {message}",
                    kind=None if kind is None else str(kind), now=now,
                )
                self._nodes[node_id].shards_failed += 1
                self._cond.notify_all()
                return {
                    "accepted": True,
                    "status": "failure-recorded",
                    "will_retry": requeued,
                }
            assert shard is not None
            self._complete_shard_locked(
                job, start, shard, node=node_id, now=now
            )
            job.persisting += 1
            persist = job.on_shard_complete
            tracer = job.tracer
            self._cond.notify_all()
        # Persistence happens outside the lock (lock discipline): the
        # checkpoint write and trace appends are file I/O.  The
        # ``persisting`` counter keeps run_job from finishing the job
        # under us.
        try:
            if persist is not None:
                try:
                    persist(shard)
                except OSError:
                    pass  # checkpointing is best-effort, never fatal
            for span in spans:
                if isinstance(span, dict):
                    attrs = span.setdefault("attributes", {})
                    if isinstance(attrs, dict):
                        attrs.setdefault("node", node_id)
                    tracer.emit(span)
        finally:
            with self._cond:
                job.persisting -= 1
                self._cond.notify_all()
        _LOG.info(
            "fleet.shard.completed",
            job_id=job_id,
            shard=start,
            node=node_id,
        )
        return {"accepted": True}

    def _reject_locked(
        self, reason: str, job_id: str, start: int
    ) -> Dict[str, Any]:
        self._stats.completions_rejected[reason] = (
            self._stats.completions_rejected.get(reason, 0) + 1
        )
        _LOG.warning(
            "fleet.complete.rejected",
            reason=reason,
            job_id=job_id,
            shard=start,
        )
        return {"accepted": False, "reason": reason}

    # ------------------------------------------------------------------
    # Executor-facing: run one job through the queue
    # ------------------------------------------------------------------

    def run_job(
        self,
        job_id: str,
        matrix: ExpressionMatrix,
        params: MiningParameters,
        *,
        matrix_digest: str,
        completed: Optional[Mapping[int, ShardResult]] = None,
        on_shard_complete: Optional[Callable[[ShardResult], None]] = None,
        progress_callback: Optional[ProgressCallback] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        trace_parent: Optional[SpanContext] = None,
        local_mine: Optional[Callable[[int, int], ShardResult]] = None,
        poll_interval: float = 0.05,
    ) -> Tuple[ShardedOutcome, Dict[str, Any]]:
        """Drive one job to completion through the fleet queue.

        Blocks until every shard is completed (by nodes, local mining,
        or checkpoints) or lost to an exhausted retry budget; returns
        the same :class:`~repro.service.executor.ShardedOutcome` the
        single-machine executor would, plus the per-shard provenance
        mapping for the job record.  Cancellation and timeout raise
        :class:`~repro.core.miner.MiningCancelled` /
        :class:`~repro.core.miner.MiningTimeout` with partial clusters
        attached, mirroring ``mine_sharded_outcome``.
        """
        active_tracer = tracer if tracer is not None else NULL_TRACER
        deadline = None if timeout is None else time.monotonic() + timeout
        job = _FleetJob(
            job_id,
            matrix,
            params,
            matrix_digest=matrix_digest,
            completed=completed,
            on_shard_complete=on_shard_complete,
            tracer=active_tracer,
            trace_parent=trace_parent,
        )
        with self._cond:
            if job_id in self._jobs:
                raise ValueError(f"job {job_id} is already queued")
            self._jobs[job_id] = job
            self._cond.notify_all()
        for start in sorted(job.resumed):
            __, clusters, stats = job.resumed[start]
            active_tracer.span(
                "shard.resumed",
                parent=trace_parent,
                attributes={
                    "shard": start,
                    "outcome": "resumed",
                    "nodes_expanded": int(stats.get("nodes_expanded", 0)),
                    "clusters_emitted": len(clusters),
                    **{key: value for key, value in stats.items()
                       if key.startswith("time_")},
                },
            ).end()
        reported = {"nodes": -1, "clusters": 0}
        try:
            while True:
                local_shard: Optional[int] = None
                local_attempt = 0
                interrupt: Optional[str] = None
                with self._cond:
                    now = time.monotonic()
                    self._reclaim_locked(now)
                    if job.finished():
                        break
                    if should_stop is not None and should_stop():
                        interrupt = "cancel"
                    elif deadline is not None and now > deadline:
                        interrupt = "timeout"
                    elif local_mine is not None:
                        for start in job.due_pending(now):
                            lease = ShardLease(
                                lease_id=_new_lease_id(),
                                node_id="local",
                                job_id=job_id,
                                shards=(start,),
                                granted_at=now,
                                deadline=float("inf"),
                            )
                            job.pending.remove(start)
                            job.retry_at.pop(start, None)
                            job.leases[start] = lease
                            local_shard = start
                            local_attempt = job.failed_attempts.get(start, 0)
                            break
                    if interrupt is None and local_shard is None:
                        self._cond.wait(timeout=poll_interval)
                    nodes_total, clusters_total = self._progress_locked(job)
                if interrupt is not None:
                    partial = job.partial_clusters()
                    if interrupt == "cancel":
                        raise MiningCancelled(
                            "fleet job cancelled",
                            partial_clusters=partial,
                        )
                    raise MiningTimeout(
                        f"fleet job exceeded its {timeout:g}s budget",
                        partial_clusters=partial,
                    )
                self._report_progress(
                    progress_callback, reported, nodes_total, clusters_total
                )
                if local_shard is not None:
                    self._mine_local(
                        job, local_shard, local_attempt, local_mine
                    )
        except BaseException:
            with self._cond:
                self._jobs.pop(job_id, None)
            raise
        with self._cond:
            self._jobs.pop(job_id, None)
            nodes_total, clusters_total = self._progress_locked(job)
        self._report_progress(
            progress_callback, reported, nodes_total, clusters_total
        )
        return job.outcome(), job.provenance_dict()

    @staticmethod
    def _progress_locked(job: _FleetJob) -> Tuple[int, int]:
        shards = job.all_shards()
        nodes = sum(
            int(shard[2].get("nodes_expanded", 0)) for shard in shards
        )
        clusters = sum(len(shard[1]) for shard in shards)
        return nodes, clusters

    @staticmethod
    def _report_progress(
        progress_callback: Optional[ProgressCallback],
        reported: Dict[str, int],
        nodes_total: int,
        clusters_total: int,
    ) -> None:
        if progress_callback is None or nodes_total == reported["nodes"]:
            return
        progress_callback("expanded", nodes_total)
        if clusters_total > reported["clusters"]:
            progress_callback("emitted", nodes_total)
        reported["nodes"] = nodes_total
        reported["clusters"] = clusters_total

    def _mine_local(
        self,
        job: _FleetJob,
        start: int,
        attempt: int,
        local_mine: Optional[Callable[[int, int], ShardResult]],
    ) -> None:
        """Mine one claimed shard on the coordinator (outside the lock)."""
        assert local_mine is not None
        try:
            shard = local_mine(start, attempt)
        except (MiningTimeout, MiningCancelled):
            # Cooperative interrupt mid-shard: release the claim so the
            # cleanup path (and any resubmission) sees the shard as
            # pending, then let run_job's except-clause tear down.
            with self._cond:
                job.leases.pop(start, None)
                job.pending.append(start)
                job.pending.sort()
            raise
        except Exception as error:  # reglint: disable=RL103
            # Organic or injected — either way it is one failed attempt
            # against the same budget remote failures are charged to.
            now = time.monotonic()
            with self._cond:
                self._fail_shard_locked(
                    job,
                    start,
                    f"{type(error).__name__}: {error}",
                    kind=getattr(
                        getattr(error, "kind", None), "value", None
                    ),
                    now=now,
                )
                self._cond.notify_all()
            return
        try:
            if job.on_shard_complete is not None:
                job.on_shard_complete(shard)
        except OSError:
            pass  # checkpointing is best-effort, never fatal
        now = time.monotonic()
        with self._cond:
            self._complete_shard_locked(
                job, start, shard, node="local", now=now
            )
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def active_nodes(self, now: Optional[float] = None) -> List[str]:
        """Nodes heard from within the last lease TTL."""
        now = time.monotonic() if now is None else now
        with self._cond:
            return sorted(
                node_id
                for node_id, node in self._nodes.items()
                if now - node.last_seen <= self.lease_ttl
            )

    def queue_depth(self) -> int:
        """Shards currently waiting to be leased, across all jobs."""
        with self._cond:
            return sum(len(job.pending) for job in self._jobs.values())

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly view of the queue (``GET /fleet/status``)."""
        now = time.monotonic()
        with self._cond:
            held: Dict[str, int] = {}
            for job in self._jobs.values():
                for lease in job.leases.values():
                    held[lease.node_id] = held.get(lease.node_id, 0) + 1
            return {
                "lease_ttl": self.lease_ttl,
                "local_mining": self.local_mining,
                "queue_depth": sum(
                    len(job.pending) for job in self._jobs.values()
                ),
                "jobs": {
                    job_id: {
                        "pending": len(job.pending),
                        "leased": len(job.leases),
                        "completed": len(job.results) + len(job.resumed),
                        "missing": len(job.missing),
                    }
                    for job_id, job in self._jobs.items()
                },
                "nodes": {
                    node_id: {
                        "active": now - node.last_seen <= self.lease_ttl,
                        "last_seen_s": round(now - node.last_seen, 3),
                        "kernels": len(node.kernels),
                        "leases_held": held.get(node_id, 0),
                        "shards_completed": node.shards_completed,
                        "shards_failed": node.shards_failed,
                    }
                    for node_id, node in self._nodes.items()
                },
            }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Plain numbers for the ``repro_fleet_*`` collector."""
        now = time.monotonic()
        with self._cond:
            return {
                "queue_depth": sum(
                    len(job.pending) for job in self._jobs.values()
                ),
                "nodes_active": sum(
                    1
                    for node in self._nodes.values()
                    if now - node.last_seen <= self.lease_ttl
                ),
                "leases_granted": self._stats.leases_granted,
                "leases_expired": self._stats.leases_expired,
                "shards_reclaimed": self._stats.shards_reclaimed,
                "affinity_hits": self._stats.affinity_hits,
                "affinity_misses": self._stats.affinity_misses,
                "heartbeats": self._stats.heartbeats,
                "completions_rejected": dict(
                    self._stats.completions_rejected
                ),
                "shards_completed": dict(self._stats.shards_completed),
            }


# ----------------------------------------------------------------------
# Worker-node daemon
# ----------------------------------------------------------------------

class FleetNode:
    """A worker node: lease shards, mine locally, post results.

    Parameters
    ----------
    coordinator_url:
        Base URL of the coordinator daemon (``reg-cluster serve
        --fleet``).
    node_id:
        Stable identity advertised to the coordinator; defaults to
        ``<hostname>-<pid>``.
    workers:
        Worker processes used to mine one lease's shards (the same
        knob as the daemon's ``--workers``).
    cache_dir:
        Directory of the node's own
        :class:`~repro.service.cache.ArtifactCache` (indexes, kernels)
        and fetched-trace scratch space.
    poll_interval:
        Seconds to sleep between empty lease polls.
    max_lease_shards:
        Upper bound on shards requested per lease.
    fault_plan:
        Chaos hook, defaulting to the plan named by ``REPRO_FAULTS`` —
        each node process reads its *own* environment, so a smoke test
        can slow down one node and not the other.
    """

    def __init__(
        self,
        coordinator_url: str,
        *,
        node_id: Optional[str] = None,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        poll_interval: float = 0.2,
        max_lease_shards: int = DEFAULT_LEASE_SHARDS,
        fault_plan: Optional[FaultPlan] = None,
        client: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.node_id = (
            node_id
            if node_id is not None
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        if client is None:
            # Imported here: http.py imports service.py which imports
            # this module, so a module-level import would be a cycle.
            from repro.service.http import ServiceClient

            # The node's id doubles as its tenant tag, so coordinator
            # admission metrics attribute fleet traffic per node.
            client = ServiceClient(coordinator_url, tenant=self.node_id)
        self.client = client
        self.workers = workers
        self.cache_dir = (
            Path(cache_dir)
            if cache_dir is not None
            else Path(f".reg-cluster-node-{os.getpid()}")
        )
        self.cache = ArtifactCache(self.cache_dir / "cache")
        self.poll_interval = poll_interval
        self.max_lease_shards = max_lease_shards
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self._matrices: Dict[str, ExpressionMatrix] = {}
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._lease_ttl = DEFAULT_LEASE_TTL
        self.leases_mined = 0
        self.shards_mined = 0

    # -- heartbeat ----------------------------------------------------

    def _heartbeat_interval(self) -> float:
        return min(5.0, max(0.2, self._lease_ttl / 3.0))

    def _heartbeat_loop(self) -> None:
        while not self._heartbeat_stop.wait(self._heartbeat_interval()):
            try:
                answer = self.client.fleet_heartbeat(
                    self.node_id, kernels=self.cache.kernel_keys()
                )
                self._lease_ttl = float(
                    answer.get("lease_ttl", self._lease_ttl)
                )
            except Exception as error:  # reglint: disable=RL103
                # A dead or restarting coordinator must not kill the
                # heartbeat thread; the next beat retries.
                _LOG.warning(
                    "fleet.node.heartbeat_failed",
                    node=self.node_id,
                    error=f"{type(error).__name__}: {error}",
                )

    def start_heartbeat(self) -> None:
        if (
            self._heartbeat_thread is not None
            and self._heartbeat_thread.is_alive()
        ):
            return
        self._heartbeat_stop.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"fleet-heartbeat-{self.node_id}",
            daemon=True,
        )
        self._heartbeat_thread.start()

    def stop_heartbeat(self) -> None:
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5.0)
            self._heartbeat_thread = None

    # -- artifacts ----------------------------------------------------

    def _matrix(self, digest: str) -> ExpressionMatrix:
        matrix = self._matrices.get(digest)
        if matrix is not None:
            return matrix
        raw = self.client.fetch_matrix(digest)
        with np.load(io.BytesIO(raw), allow_pickle=False) as data:
            matrix = ExpressionMatrix(
                data["values"],
                [str(name) for name in data["gene_names"]],
                [str(name) for name in data["condition_names"]],
            )
        if matrix_digest(matrix) != digest:
            raise ValueError(
                f"fetched matrix does not hash to {digest} — refusing to "
                f"mine corrupted data"
            )
        self._matrices[digest] = matrix
        return matrix

    def _index_for(
        self, matrix: ExpressionMatrix, digest: str, gamma: float
    ) -> Tuple[RWaveIndex, bool]:
        """The RWave index with its kernel attached when available.

        Kernel acquisition order: own cache, then the coordinator's
        artifact endpoint, then lazily built by the miner (and cached
        afterwards, flipping future affinity routing to a hit).
        Returns ``(index, had_kernel)``.
        """
        index = self.cache.get_index(digest, gamma)
        if index is None:
            index = RWaveIndex(matrix, gamma)
            try:
                self.cache.put_index(digest, gamma, index)
            except OSError:
                pass
        kernel = self.cache.get_kernel(digest, gamma)
        if kernel is None:
            raw = self.client.fetch_kernel(digest, gamma)
            if raw is not None:
                try:
                    self.cache.put_kernel_bytes(digest, gamma, raw)
                except OSError:
                    pass
                kernel = self.cache.get_kernel(digest, gamma)
        had_kernel = kernel is not None
        if kernel is not None:
            index.attach_kernel(kernel)
        return index, had_kernel

    # -- mining -------------------------------------------------------

    def step(self) -> bool:
        """One poll: lease, mine, report.  ``True`` when work was done."""
        lease = self.client.fleet_lease(
            self.node_id,
            kernels=self.cache.kernel_keys(),
            max_shards=self.max_lease_shards,
        )
        if lease is None:
            return False
        self._lease_ttl = float(lease.get("ttl", self._lease_ttl))
        try:
            self._mine_lease(lease)
        except Exception as error:  # reglint: disable=RL103
            # A broken lease (unfetchable matrix, bad payload) fails
            # every shard back to the coordinator so its retry budget —
            # not a silent lease expiry — decides the shards' fate.
            message = f"{type(error).__name__}: {error}"
            _LOG.error(
                "fleet.node.lease_failed",
                node=self.node_id,
                job_id=lease.get("job_id"),
                error=message,
            )
            for start in lease.get("shards", []):
                self._post_complete({
                    "node_id": self.node_id,
                    "lease_id": lease["lease_id"],
                    "job_id": lease["job_id"],
                    "shard": int(start),
                    "status": "failed",
                    "error": message,
                })
        return True

    def _post_complete(self, payload: Dict[str, Any]) -> None:
        try:
            answer = self.client.fleet_complete(payload)
        except Exception as error:  # reglint: disable=RL103
            # The coordinator reclaims the lease on its own; nothing
            # useful to do but log and move on.
            _LOG.warning(
                "fleet.node.complete_failed",
                node=self.node_id,
                shard=payload.get("shard"),
                error=f"{type(error).__name__}: {error}",
            )
            return
        if not answer.get("accepted", False):
            _LOG.info(
                "fleet.node.complete_rejected",
                node=self.node_id,
                shard=payload.get("shard"),
                reason=answer.get("reason"),
            )

    def _mine_lease(self, lease: Mapping[str, Any]) -> None:
        job_id = str(lease["job_id"])
        lease_id = str(lease["lease_id"])
        digest = str(lease["matrix_digest"])
        params = parameters_from_dict(dict(lease["parameters"]))
        shards = [int(start) for start in lease["shards"]]
        matrix = self._matrix(digest)
        index, had_kernel = self._index_for(matrix, digest, params.gamma)
        trace = lease.get("trace")
        tracer: Tracer = NULL_TRACER
        trace_parent: Optional[SpanContext] = None
        trace_path: Optional[Path] = None
        shipped: Set[str] = set()
        if isinstance(trace, dict):
            # Spans are written to a scratch JSONL (the same sink both
            # the in-process and pool drivers know how to share), then
            # shipped back inside each complete payload.
            trace_path = (
                self.cache_dir / "traces" / f"lease-{lease_id}.jsonl"
            )
            tracer = Tracer(
                trace_path,
                trace_id=str(trace["trace_id"]),
                overwrite=True,
            )
            trace_parent = SpanContext(
                trace_id=str(trace["trace_id"]),
                span_id=str(trace["span_id"]),
            )

        def collect_new_spans() -> List[Dict[str, Any]]:
            if trace_path is None or not trace_path.exists():
                return []
            fresh = [
                span
                for span in load_spans(trace_path)
                if span.get("span_id") not in shipped
            ]
            shipped.update(str(span.get("span_id")) for span in fresh)
            return fresh

        def on_shard(shard: ShardResult) -> None:
            payload = shard_to_wire(shard)
            payload.update({
                "node_id": self.node_id,
                "lease_id": lease_id,
                "job_id": job_id,
                "shard": shard[0],
                "status": "ok",
                "spans": collect_new_spans(),
            })
            self._post_complete(payload)
            self.shards_mined += 1

        try:
            outcome = mine_sharded_outcome(
                matrix,
                params,
                n_workers=min(self.workers, max(1, len(shards))),
                index=index,
                shards=shards,
                retry=None,  # the coordinator owns the retry budget
                fault_plan=self.fault_plan,
                on_shard_complete=on_shard,
                tracer=tracer,
                trace_parent=trace_parent,
            )
        finally:
            tracer.close()
            if trace_path is not None:
                try:
                    trace_path.unlink()
                except OSError:
                    pass
        for start in outcome.missing_shards:
            self._post_complete({
                "node_id": self.node_id,
                "lease_id": lease_id,
                "job_id": job_id,
                "shard": start,
                "status": "failed",
                "error": outcome.shard_errors.get(start, "shard failed"),
                "spans": collect_new_spans(),
            })
        if not had_kernel and index.has_kernel:
            try:
                self.cache.put_kernel(digest, params.gamma, index.kernel)
            except OSError:
                pass
        self.leases_mined += 1
        _LOG.info(
            "fleet.node.lease_mined",
            node=self.node_id,
            job_id=job_id,
            shards=shards,
            missing=outcome.missing_shards,
            affinity_hit=bool(lease.get("affinity_hit")),
        )

    def run(
        self,
        *,
        stop: Optional[threading.Event] = None,
        max_idle_polls: Optional[int] = None,
    ) -> None:
        """Heartbeat + lease loop until ``stop`` (or idle exhaustion).

        ``max_idle_polls`` bounds consecutive empty polls — handy for
        tests and one-shot tooling; ``None`` (the daemon default) polls
        forever.
        """
        self.start_heartbeat()
        idle = 0
        try:
            while stop is None or not stop.is_set():
                try:
                    worked = self.step()
                except Exception as error:  # reglint: disable=RL103
                    # Lease polls against a restarting coordinator fail
                    # transiently; keep polling.
                    _LOG.warning(
                        "fleet.node.poll_failed",
                        node=self.node_id,
                        error=f"{type(error).__name__}: {error}",
                    )
                    worked = False
                if worked:
                    idle = 0
                    continue
                idle += 1
                if max_idle_polls is not None and idle >= max_idle_polls:
                    return
                if stop is not None:
                    stop.wait(self.poll_interval)
                else:
                    time.sleep(self.poll_interval)
        finally:
            self.stop_heartbeat()
