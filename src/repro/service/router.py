"""Transport-independent request routing for the mining service.

The HTTP surface of the daemon lives here as plain functions over
:class:`Request` / :class:`Response` values, with no socket, thread or
``http.server`` machinery attached — the selector-based front door
(:mod:`repro.service.frontdoor`) parses bytes into a :class:`Request`,
and :meth:`ServiceRouter.handle` turns it into a :class:`Response` to
serialize back.  Keeping routing transport-free is what lets the front
door change (threads yesterday, selectors today) without touching the
wire protocol the clients and smokes pin down.

Routes (see ``docs/service.md`` for payloads):

* ``POST /jobs`` — submit (idempotent); the body may carry a
  ``priority`` (``high`` / ``normal`` / ``low``) and the
  ``X-Repro-Tenant`` header tags the job's tenant.
* ``GET /jobs`` — list all records.
* ``GET /jobs/<id>[?wait=<s>[&state=<seen>]]`` — one record; with
  ``wait`` the request long-polls until the state leaves ``state``
  (default: its current state), the wait times out, or the daemon
  stops.
* ``GET /jobs/<id>/result[?offset=<n>&limit=<n>]`` — the completed
  ``reg-cluster/v1`` document, optionally one ``clusters`` page with a
  ``page`` descriptor.
* ``DELETE /jobs/<id>`` — cancel active / delete terminal.
* ``GET /healthz``, ``GET /metrics`` — observability; answered before
  fault injection so chaos cannot blind the probes.
* ``POST /fleet/lease|complete|heartbeat``, ``GET /fleet/status``,
  ``GET /artifacts/...`` — the distributed work queue
  (``docs/distributed.md``; 404 unless the daemon runs ``--fleet``).
* ``POST /matrices/<digest>/revisions`` — record a typed delta against
  a stored matrix and submit the delta-aware child job
  (``docs/incremental.md``).
* ``POST /sweeps``, ``GET /sweeps[/<id>[/results]]`` — batched
  gamma/epsilon parameter sweeps over one matrix.
"""

from __future__ import annotations

import json
import re
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.incremental.delta import delta_from_dict
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.io import load_expression_matrix, parse_expression_text
from repro.obs.log import get_logger
from repro.service.jobs import ACTIVE_STATES, JobState, parameters_from_dict
from repro.service.resilience import FaultKind, FaultPlan
from repro.service.service import MAX_LONGPOLL_SECONDS, MiningService

_LOG = get_logger("repro.service.http")

__all__ = [
    "MAX_BODY_BYTES",
    "Request",
    "RequestError",
    "Response",
    "ServiceRouter",
    "matrix_from_payload",
]

_JOB_PATH = re.compile(r"^/jobs/(?P<job_id>[A-Za-z0-9_-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/(?P<job_id>[A-Za-z0-9_-]+)/result$")
_MATRIX_ARTIFACT_PATH = re.compile(
    r"^/artifacts/matrix/(?P<digest>[0-9a-f]{64})$"
)
_KERNEL_ARTIFACT_PATH = re.compile(
    r"^/artifacts/kernel/(?P<digest>[0-9a-f]{64})/(?P<gamma>[0-9.eE+-]+)$"
)
_REVISION_PATH = re.compile(
    r"^/matrices/(?P<digest>[0-9a-f]{64})/revisions$"
)
_SWEEP_PATH = re.compile(r"^/sweeps/(?P<sweep_id>sweep-[0-9a-f]{16})$")
_SWEEP_RESULTS_PATH = re.compile(
    r"^/sweeps/(?P<sweep_id>sweep-[0-9a-f]{16})/results$"
)

#: Refuse request bodies beyond this size (64 MiB covers the paper's
#: yeast matrix inline with two orders of magnitude to spare).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: The tenant a request without an ``X-Repro-Tenant`` header bills to.
DEFAULT_TENANT = "default"


class RequestError(ValueError):
    """A client error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One fully-parsed HTTP request (transport already stripped)."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> Dict[str, str]:
        if "?" not in self.target:
            return {}
        raw = self.target.split("?", 1)[1]
        return {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(
                raw, keep_blank_values=True
            ).items()
        }

    @property
    def tenant(self) -> str:
        """The tenant this request bills to (header or the default)."""
        value = self.headers.get("x-repro-tenant", "").strip()
        return value or DEFAULT_TENANT


@dataclass
class Response:
    """One response, ready for the transport to serialize."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: seconds this request *intentionally* parked (long-poll wait) —
    #: subtracted from the latency histogram so p99 measures service
    #: time, not requested sleeps
    waited: float = 0.0

    @classmethod
    def json(
        cls, status: int, payload: Dict[str, Any], **headers: str
    ) -> "Response":
        return cls(
            status,
            json.dumps(payload).encode("utf-8"),
            headers=dict(headers),
        )


def matrix_from_payload(payload: Any) -> ExpressionMatrix:
    """Build a matrix from the ``matrix`` member of a POST body."""
    if not isinstance(payload, dict):
        raise RequestError(400, "matrix must be a JSON object")
    kinds = [k for k in ("values", "text", "path") if k in payload]
    if len(kinds) != 1:
        raise RequestError(
            400,
            "matrix must supply exactly one of 'values', 'text', 'path'",
        )
    if "values" in payload:
        return ExpressionMatrix(
            payload["values"],
            payload.get("gene_names"),
            payload.get("condition_names"),
        )
    if "text" in payload:
        return parse_expression_text(payload["text"])
    return load_expression_matrix(payload["path"])


class ServiceRouter:
    """Routes :class:`Request` values onto one :class:`MiningService`."""

    def __init__(
        self,
        service: MiningService,
        *,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.service = service
        # One plan drives the whole stack: unless overridden, the HTTP
        # layer shares the service's plan, so ``http-5xx`` specs in a
        # ``REPRO_FAULTS`` plan reach the front end too.
        self.fault_plan = (
            fault_plan if fault_plan is not None else service.fault_plan
        )

    # -- plumbing ------------------------------------------------------

    def _read_body(self, request: Request) -> Dict[str, Any]:
        if not request.body:
            raise RequestError(400, "request body required")
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise RequestError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        return payload

    def handle(self, request: Request) -> Response:
        """Dispatch one request; never raises (errors become JSON)."""
        service = self.service
        method = request.method
        path = request.path
        # Observability endpoints answer before fault injection: chaos
        # must not blind the probes watching it.
        if method == "GET" and path == "/healthz":
            return Response.json(200, service.health())
        if method == "GET" and path == "/metrics":
            return Response(
                200,
                service.metrics.render().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        plan = self.fault_plan
        if plan is not None and plan.fire(FaultKind.HTTP_5XX):
            service.metrics.counter(
                "repro_faults_injected_total",
                "Chaos faults that actually fired, by kind.",
                labelnames=("kind",),
            ).labels(kind=FaultKind.HTTP_5XX.value).inc()
            _LOG.warning(
                "fault.injected", kind=FaultKind.HTTP_5XX.value, path=path
            )
            return Response.json(
                503,
                {"error": f"injected {FaultKind.HTTP_5XX.value} fault"},
            )
        try:
            return self._route(request, service)
        except RequestError as error:
            return Response.json(error.status, {"error": str(error)})
        except KeyError as error:
            message = error.args[0] if error.args else str(error)
            return Response.json(404, {"error": str(message)})
        except ValueError as error:
            return Response.json(400, {"error": str(error)})

    def _route(self, request: Request, service: MiningService) -> Response:
        method, path = request.method, request.path
        if method == "POST" and path == "/fleet/lease":
            return self._fleet_lease(request, service)
        if method == "POST" and path == "/fleet/complete":
            fleet = self._fleet(service)
            return Response.json(
                200, fleet.complete(self._read_body(request))
            )
        if method == "POST" and path == "/fleet/heartbeat":
            return self._fleet_heartbeat(request, service)
        if method == "GET" and path == "/fleet/status":
            return Response.json(200, self._fleet(service).snapshot())
        match = _MATRIX_ARTIFACT_PATH.match(path)
        if method == "GET" and match:
            return self._get_matrix_artifact(service, match.group("digest"))
        match = _KERNEL_ARTIFACT_PATH.match(path)
        if method == "GET" and match:
            return self._get_kernel_artifact(
                service, match.group("digest"), match.group("gamma")
            )
        match = _REVISION_PATH.match(path)
        if method == "POST" and match:
            return self._post_revision(request, service, match.group("digest"))
        if method == "POST" and path == "/sweeps":
            return self._post_sweep(request, service)
        if method == "GET" and path == "/sweeps":
            return Response.json(
                200,
                {
                    "sweeps": [
                        batch.to_dict()
                        for batch in service.sweeps.list_sweeps()
                    ]
                },
            )
        match = _SWEEP_RESULTS_PATH.match(path)
        if method == "GET" and match:
            return Response.json(
                200, service.sweep_results(match.group("sweep_id"))
            )
        match = _SWEEP_PATH.match(path)
        if method == "GET" and match:
            return Response.json(
                200, service.sweep_status(match.group("sweep_id"))
            )
        if method == "POST" and path == "/jobs":
            return self._post_job(request, service)
        if method == "GET" and path == "/jobs":
            return Response.json(
                200,
                {"jobs": [r.to_dict() for r in service.list_jobs()]},
            )
        match = _RESULT_PATH.match(path)
        if method == "GET" and match:
            return self._get_result(request, service, match.group("job_id"))
        match = _JOB_PATH.match(path)
        if method in ("GET", "DELETE") and match:
            job_id = match.group("job_id")
            if method == "GET":
                return self._get_job(request, service, job_id)
            return self._delete_job(service, job_id)
        raise RequestError(404, f"no route {method} {path}")

    # -- fleet handlers ------------------------------------------------

    def _fleet(self, service: MiningService) -> Any:
        fleet = service.fleet
        if fleet is None:
            raise RequestError(
                404, "fleet mode is disabled on this daemon (use --fleet)"
            )
        return fleet

    def _fleet_lease(
        self, request: Request, service: MiningService
    ) -> Response:
        fleet = self._fleet(service)
        body = self._read_body(request)
        node_id = str(body.get("node_id") or "")
        if not node_id:
            raise RequestError(400, "lease request must name a node_id")
        kernels = body.get("kernels") or []
        if not isinstance(kernels, list):
            raise RequestError(400, "kernels must be a list of cache keys")
        max_shards = body.get("max_shards")
        lease = fleet.lease(
            node_id,
            kernels=[str(key) for key in kernels],
            max_shards=None if max_shards is None else int(max_shards),
        )
        return Response.json(200, {"lease": lease})

    def _fleet_heartbeat(
        self, request: Request, service: MiningService
    ) -> Response:
        fleet = self._fleet(service)
        body = self._read_body(request)
        node_id = str(body.get("node_id") or "")
        if not node_id:
            raise RequestError(400, "heartbeat must name a node_id")
        kernels = body.get("kernels") or []
        if not isinstance(kernels, list):
            raise RequestError(400, "kernels must be a list of cache keys")
        return Response.json(
            200,
            fleet.heartbeat(node_id, kernels=[str(k) for k in kernels]),
        )

    def _get_matrix_artifact(
        self, service: MiningService, digest: str
    ) -> Response:
        data = service.matrix_artifact_bytes(digest)
        if data is None:
            raise RequestError(404, f"no stored matrix with digest {digest}")
        return Response(200, data, content_type="application/octet-stream")

    def _get_kernel_artifact(
        self, service: MiningService, digest: str, gamma: str
    ) -> Response:
        try:
            gamma_value = float(gamma)
        except ValueError:
            raise RequestError(400, f"bad gamma {gamma!r}") from None
        data = service.kernel_artifact_bytes(digest, gamma_value)
        if data is None:
            raise RequestError(
                404, f"no cached kernel for {digest} at gamma={gamma}"
            )
        return Response(200, data, content_type="application/octet-stream")

    # -- job handlers --------------------------------------------------

    def _post_job(self, request: Request, service: MiningService) -> Response:
        body = self._read_body(request)
        if "parameters" not in body or "matrix" not in body:
            raise RequestError(
                400, "body must contain 'matrix' and 'parameters'"
            )
        params = parameters_from_dict(body["parameters"])
        matrix = matrix_from_payload(body["matrix"])
        priority = body.get("priority")
        if priority is not None and not isinstance(priority, str):
            raise RequestError(400, "priority must be a string")
        tenant = request.headers.get("x-repro-tenant", "").strip() or None
        record = service.submit(
            matrix, params, priority=priority, tenant=tenant
        )
        status = 200 if record.started_at is not None else 202
        return Response.json(status, {"job": record.to_dict()})

    # -- incremental handlers (docs/incremental.md) --------------------

    def _post_revision(
        self, request: Request, service: MiningService, digest: str
    ) -> Response:
        body = self._read_body(request)
        if "delta" not in body or "parameters" not in body:
            raise RequestError(
                400, "body must contain 'delta' and 'parameters'"
            )
        params = parameters_from_dict(body["parameters"])
        try:
            delta = delta_from_dict(body["delta"])
        except ValueError as error:
            raise RequestError(400, str(error)) from None
        priority = body.get("priority")
        if priority is not None and not isinstance(priority, str):
            raise RequestError(400, "priority must be a string")
        tenant = request.headers.get("x-repro-tenant", "").strip() or None
        revision, record = service.submit_revision(
            digest, delta, params, priority=priority, tenant=tenant
        )
        status = 200 if record.started_at is not None else 202
        return Response.json(
            status,
            {"revision": revision.to_dict(), "job": record.to_dict()},
        )

    def _post_sweep(
        self, request: Request, service: MiningService
    ) -> Response:
        body = self._read_body(request)
        for key in ("matrix", "parameters", "gammas", "epsilons"):
            if key not in body:
                raise RequestError(
                    400,
                    "body must contain 'matrix', 'parameters', "
                    "'gammas' and 'epsilons'",
                )
        params = parameters_from_dict(body["parameters"])
        matrix = matrix_from_payload(body["matrix"])
        gammas = body["gammas"]
        epsilons = body["epsilons"]
        if not isinstance(gammas, list) or not isinstance(epsilons, list):
            raise RequestError(400, "gammas and epsilons must be lists")
        priority = body.get("priority")
        if priority is not None and not isinstance(priority, str):
            raise RequestError(400, "priority must be a string")
        tenant = request.headers.get("x-repro-tenant", "").strip() or None
        batch = service.submit_sweep(
            matrix,
            params,
            gammas=gammas,
            epsilons=epsilons,
            priority=priority,
            tenant=tenant,
        )
        return Response.json(202, {"sweep": batch.to_dict()})

    def _get_job(
        self, request: Request, service: MiningService, job_id: str
    ) -> Response:
        query = request.query
        if "wait" not in query:
            return Response.json(
                200, {"job": service.status(job_id).to_dict()}
            )
        try:
            wait_s = float(query["wait"])
        except ValueError:
            raise RequestError(
                400, f"bad wait value {query['wait']!r}"
            ) from None
        if wait_s < 0.0:
            raise RequestError(400, "wait must be >= 0")
        seen: Optional[JobState] = None
        if "state" in query:
            try:
                seen = JobState(query["state"])
            except ValueError:
                raise RequestError(
                    400, f"unknown state {query['state']!r}"
                ) from None
        started = time.monotonic()
        record = service.wait_for_change(
            job_id, seen_state=seen, timeout=wait_s
        )
        response = Response.json(200, {"job": record.to_dict()})
        response.waited = time.monotonic() - started
        # Tell the client how much of its wait the server honored (the
        # server caps at MAX_LONGPOLL_SECONDS; clients just poll again).
        response.headers["X-Repro-Waited"] = f"{response.waited:.3f}"
        response.headers["X-Repro-Wait-Cap"] = f"{MAX_LONGPOLL_SECONDS:g}"
        return response

    def _get_result(
        self, request: Request, service: MiningService, job_id: str
    ) -> Response:
        query = request.query
        try:
            if "offset" in query or "limit" in query:
                try:
                    offset = int(query.get("offset", "0"))
                    limit = (
                        int(query["limit"]) if "limit" in query else None
                    )
                except ValueError:
                    raise RequestError(
                        400, "offset/limit must be integers"
                    ) from None
                payload = service.result_page(
                    job_id, offset=offset, limit=limit
                )
            else:
                payload = service.result(job_id)
        except ValueError as error:
            raise RequestError(
                400 if "must be" in str(error) else 409, str(error)
            ) from None
        return Response.json(200, payload)

    def _delete_job(self, service: MiningService, job_id: str) -> Response:
        record = service.status(job_id)
        if record.state in ACTIVE_STATES:
            updated = service.cancel(job_id)
            return Response.json(200, {"job": updated.to_dict()})
        service.delete(job_id)
        return Response.json(200, {"deleted": job_id})
