"""Sharded mining: partition the Fig. 5 search across worker processes.

The top level of the miner's depth-first enumeration iterates over the
first condition of the representative chain.  Chains starting from
different conditions are disjoint — every deeper node carries its start
as the chain prefix — so the search decomposes exactly into one
independent shard per first condition.  Each shard is mined by
:meth:`repro.core.miner.RegClusterMiner.mine` with ``start_conditions``
restricted to that shard, in its own worker process, and the shard
outputs are merged back deterministically:

1. concatenate shard cluster lists in ascending start order (the same
   order the single-process loop visits starts), preserving each
   shard's internal depth-first emission order;
2. re-run the maximality/redundancy post-processing — the emitted-key
   deduplication of pruning (3b) — over the merged list, now with the
   *global* set of emitted keys (a safety net: keys contain the chain,
   whose first element identifies the shard, so cross-shard duplicates
   cannot occur by construction);
3. apply the ``max_clusters`` cap to the merged list, matching the
   single-process early exit.

Steps 1–3 make the merged output *bit-identical* to single-process
mining for any worker count — the shard-merge equivalence guarantee the
test suite asserts.  Search statistics are summed across shards
(``max_depth`` takes the maximum); they equal the single-process
counters exactly when ``max_clusters`` is unset (with a cap, the
single-process search stops mid-enumeration while shards run to
completion, so merged counters are an upper bound).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import fields
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.cluster import RegCluster
from repro.core.miner import (
    MiningCancelled,
    MiningResult,
    PhaseTimers,
    ProgressCallback,
    PruningConfig,
    RegClusterMiner,
    SearchStatistics,
)
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.matrix.expression import ExpressionMatrix

__all__ = ["mine_sharded", "merge_shard_results", "ShardResult"]

#: One shard's output: (start condition, clusters in DFS order, stats).
#: The stats mapping carries the integer counters of
#: :meth:`SearchStatistics.as_dict` plus the ``time_``-prefixed phase
#: timer floats of :meth:`PhaseTimers.prefixed`.
ShardResult = Tuple[int, List[RegCluster], Dict[str, float]]

# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

#: Per-worker miner, built once by the pool initializer so the RWave
#: index is constructed (or unpickled) once per process, not per shard.
_WORKER_MINER: Optional[RegClusterMiner] = None


def _init_worker(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    prunings: Optional[PruningConfig],
    index: Optional[RWaveIndex],
) -> None:
    global _WORKER_MINER
    _WORKER_MINER = RegClusterMiner(
        matrix, params, prunings=prunings, index=index
    )


def _mine_start(start: int) -> ShardResult:
    miner = _WORKER_MINER
    assert miner is not None, "worker pool initializer did not run"
    result = miner.mine(start_conditions=[start])
    stats: Dict[str, float] = dict(result.statistics.as_dict())
    stats.update(result.statistics.timers.prefixed())
    return start, result.clusters, stats


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------

def merge_shard_results(
    shards: Sequence[ShardResult], params: MiningParameters
) -> MiningResult:
    """Merge per-start shard outputs into one single-process-equivalent
    result (ordering, global redundancy re-check, ``max_clusters`` cap).
    """
    ordered = sorted(shards, key=lambda shard: shard[0])
    statistics = SearchStatistics()
    # The ``timers`` field is a dataclass, not a counter — its floats
    # travel under ``time_``-prefixed keys and are summed separately.
    counter_names = [
        f.name for f in fields(SearchStatistics) if f.name != "timers"
    ]
    timer_names = [f.name for f in fields(PhaseTimers)]
    emitted: set[Tuple[Tuple[int, ...], FrozenSet[int]]] = set()
    clusters: List[RegCluster] = []
    truncated = False
    for __, shard_clusters, shard_stats in ordered:
        for name in counter_names:
            value = int(shard_stats.get(name, 0))
            if name == "max_depth":
                statistics.max_depth = max(statistics.max_depth, value)
            else:
                setattr(statistics, name, getattr(statistics, name) + value)
        for name in timer_names:
            setattr(
                statistics.timers,
                name,
                getattr(statistics.timers, name)
                + float(shard_stats.get(f"time_{name}", 0.0)),
            )
        if truncated:
            continue
        for cluster in shard_clusters:
            key = (cluster.chain, frozenset(cluster.genes))
            if key in emitted:
                # Pruning (3b) re-run globally; a no-op across shards by
                # construction, but kept so the merged set carries the
                # same maximality guarantee as one search.
                continue
            emitted.add(key)
            clusters.append(cluster)
            if (
                params.max_clusters is not None
                and len(clusters) >= params.max_clusters
            ):
                truncated = True
                break
    statistics.clusters_emitted = len(clusters)
    return MiningResult(
        clusters=clusters, statistics=statistics, parameters=params
    )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _pool_context(
    start_method: Optional[str],
) -> multiprocessing.context.BaseContext:
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork shares the parent's page cache with copy-on-write (fast shard
    # startup); fall back to spawn where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def mine_sharded(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    n_workers: int = 1,
    prunings: Optional[PruningConfig] = None,
    index: Optional[RWaveIndex] = None,
    progress_callback: Optional[ProgressCallback] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    start_method: Optional[str] = None,
) -> MiningResult:
    """Mine a matrix with a sharded worker pool.

    Results are bit-identical to
    :func:`repro.core.miner.mine_reg_clusters` for any ``n_workers``
    (see the module docstring for the equivalence argument).

    Parameters
    ----------
    n_workers:
        Worker processes.  ``1`` mines in-process — no pool, and both
        ``progress_callback`` and ``should_stop`` observe every search
        node.  With a pool, progress is reported per completed shard and
        cancellation is honoured between shard completions.
    index:
        Optional prebuilt RWave index (e.g. from the artifact cache);
        shipped to each worker so no process rebuilds it.
    should_stop:
        Cooperative cancellation probe; raises
        :class:`~repro.core.miner.MiningCancelled` when it fires.
    start_method:
        ``multiprocessing`` start method override (default: ``fork``
        where available, else ``spawn``).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    n_workers = min(n_workers, max(1, matrix.n_conditions))
    if n_workers == 1:
        miner = RegClusterMiner(
            matrix,
            params,
            prunings=prunings,
            index=index,
            progress_callback=progress_callback,
            should_stop=should_stop,
        )
        return miner.mine()

    context = _pool_context(start_method)
    shards: List[ShardResult] = []
    nodes_so_far = 0
    with context.Pool(
        processes=n_workers,
        initializer=_init_worker,
        initargs=(matrix, params, prunings, index),
    ) as pool:
        pending = pool.imap_unordered(
            _mine_start, range(matrix.n_conditions)
        )
        for shard in pending:
            if should_stop is not None and should_stop():
                pool.terminate()
                raise MiningCancelled(
                    f"sharded search cancelled after {len(shards)} of "
                    f"{matrix.n_conditions} shards"
                )
            shards.append(shard)
            nodes_so_far += int(shard[2].get("nodes_expanded", 0))
            if progress_callback is not None:
                progress_callback("expanded", nodes_so_far)
                if shard[1]:
                    progress_callback("emitted", nodes_so_far)
    if should_stop is not None and should_stop():
        raise MiningCancelled(
            "sharded search cancelled after the final shard"
        )
    return merge_shard_results(shards, params)
