"""Sharded mining: partition the Fig. 5 search across worker processes.

The top level of the miner's depth-first enumeration iterates over the
first condition of the representative chain.  Chains starting from
different conditions are disjoint — every deeper node carries its start
as the chain prefix — so the search decomposes exactly into one
independent shard per first condition.  Each shard is mined by
:meth:`repro.core.miner.RegClusterMiner.mine` with ``start_conditions``
restricted to that shard, in its own worker process, and the shard
outputs are merged back deterministically:

1. concatenate shard cluster lists in ascending start order (the same
   order the single-process loop visits starts), preserving each
   shard's internal depth-first emission order;
2. re-run the maximality/redundancy post-processing — the emitted-key
   deduplication of pruning (3b) — over the merged list, now with the
   *global* set of emitted keys (a safety net: keys contain the chain,
   whose first element identifies the shard, so cross-shard duplicates
   cannot occur by construction);
3. apply the ``max_clusters`` cap to the merged list, matching the
   single-process early exit.

Steps 1–3 make the merged output *bit-identical* to single-process
mining for any worker count — the shard-merge equivalence guarantee the
test suite asserts.  Search statistics are summed across shards
(``max_depth`` takes the maximum); they equal the single-process
counters exactly when ``max_clusters`` is unset (with a cap, the
single-process search stops mid-enumeration while shards run to
completion, so merged counters are an upper bound).

Fault tolerance
---------------
Shard independence also makes the search *recoverable* — the merge does
not care how many times a shard was attempted, on which process it
finally succeeded, or whether it was answered from a checkpoint of an
earlier daemon run.  :func:`mine_sharded_outcome` layers the recovery
machinery on top of the plain sharded driver (``docs/robustness.md``):

* **per-shard retry** — a shard whose worker raises (or whose process
  dies, breaking the pool) is resubmitted up to
  :attr:`~repro.service.resilience.RetryPolicy.max_retries` times with
  exponential backoff and deterministic jitter; the pool is rebuilt
  after a hard worker death;
* **wall-clock timeout** — a deadline cooperatively cancels the search
  (:class:`~repro.core.miner.MiningTimeout`), at node granularity
  in-process and shard granularity under a pool;
* **checkpoint resume** — already-completed shard results passed via
  ``completed`` are merged without re-mining, and ``on_shard_complete``
  fires after every fresh shard so callers (the service's
  :class:`~repro.service.jobs.JobStore`) can persist incremental
  progress;
* **graceful degradation** — shards whose retry budget is exhausted are
  reported in :attr:`ShardedOutcome.missing_shards` instead of sinking
  the whole job; the surviving shards still merge deterministically.

Fault *injection* (the chaos harness exercising all of the above) is
driven by a seeded :class:`~repro.service.resilience.FaultPlan`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.cluster import RegCluster
from repro.core.miner import (
    MiningCancelled,
    MiningResult,
    MiningTimeout,
    PhaseTimers,
    ProgressCallback,
    PruningConfig,
    RegClusterMiner,
    SearchStatistics,
)
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.matrix.expression import ExpressionMatrix
from repro.obs.log import get_logger
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    SpanContext,
    Tracer,
    TraceWorkerConfig,
)
from repro.service.resilience import FaultInjected, FaultKind, FaultPlan, RetryPolicy

_LOG = get_logger("repro.service.executor")

__all__ = [
    "mine_sharded",
    "mine_sharded_outcome",
    "merge_shard_results",
    "make_local_shard_miner",
    "ShardResult",
    "ShardedOutcome",
    "ShardFailure",
]

#: One shard's output: (start condition, clusters in DFS order, stats).
#: The stats mapping carries the integer counters of
#: :meth:`SearchStatistics.as_dict` plus the ``time_``-prefixed phase
#: timer floats of :meth:`PhaseTimers.prefixed`.
ShardResult = Tuple[int, List[RegCluster], Dict[str, float]]


class ShardFailure(RuntimeError):
    """Raised by strict :func:`mine_sharded` when shards are lost.

    Carries which shards exhausted their retry budget and the last
    error each one saw, so a caller that *can* live with partial output
    knows to switch to :func:`mine_sharded_outcome`.
    """

    def __init__(
        self, message: str, missing_shards: List[int],
        shard_errors: Dict[int, str],
    ) -> None:
        super().__init__(message)
        self.missing_shards = missing_shards
        self.shard_errors = shard_errors


@dataclass
class ShardedOutcome:
    """What a resilient sharded run actually delivered.

    Attributes
    ----------
    result:
        The merged mining result over every shard that completed.  With
        no missing shards this is bit-identical to single-process
        mining; with missing shards it is the deterministic merge of
        the survivors (each surviving shard's clusters are exactly its
        fault-free clusters).
    missing_shards:
        Start conditions whose shards exhausted the retry budget,
        ascending.  Empty on a fully successful run.
    shard_errors:
        The last error message seen per missing shard.
    failed_attempts:
        How many attempts failed per shard (only shards that failed at
        least once appear; a retried-then-successful shard is counted
        here too).
    resumed_shards:
        Start conditions answered from the caller-provided ``completed``
        checkpoints instead of being mined, ascending.
    fault_injections:
        Injected faults observed by the driver, counted per
        :class:`~repro.service.resilience.FaultKind` value.  Only
        faults that surface as a catchable :class:`FaultInjected`
        appear (a hard ``kill-worker`` manifests as a broken pool and
        cannot be attributed).
    """

    result: MiningResult
    missing_shards: List[int] = field(default_factory=list)
    shard_errors: Dict[int, str] = field(default_factory=dict)
    failed_attempts: Dict[int, int] = field(default_factory=dict)
    resumed_shards: List[int] = field(default_factory=list)
    fault_injections: Dict[str, int] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Did the run lose at least one shard?"""
        return bool(self.missing_shards)


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

#: Per-worker miner, built once by the pool initializer so the RWave
#: index is constructed (or unpickled) once per process, not per shard.
_WORKER_MINER: Optional[RegClusterMiner] = None
#: Per-worker fault plan (chaos testing only; ``None`` in production).
_WORKER_FAULTS: Optional[FaultPlan] = None
#: Per-worker trace hand-off (``None`` when the job is untraced).
_WORKER_TRACE: Optional[TraceWorkerConfig] = None
#: Lazily built worker-side tracer appending to the shared trace file.
_WORKER_TRACER: Optional[Tracer] = None


def _init_worker(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    prunings: Optional[PruningConfig],
    index: Optional[RWaveIndex],
    fault_plan: Optional[FaultPlan] = None,
    trace_config: Optional[TraceWorkerConfig] = None,
) -> None:
    global _WORKER_MINER, _WORKER_FAULTS, _WORKER_TRACE, _WORKER_TRACER
    _WORKER_MINER = RegClusterMiner(
        matrix, params, prunings=prunings, index=index
    )
    _WORKER_FAULTS = fault_plan
    _WORKER_TRACE = trace_config
    _WORKER_TRACER = None


def _worker_tracer() -> Tuple[Tracer, Optional[SpanContext]]:
    """The worker's tracer and the parent context to stitch under."""
    global _WORKER_TRACER
    if _WORKER_TRACE is None:
        return NULL_TRACER, None
    if _WORKER_TRACER is None:
        _WORKER_TRACER = _WORKER_TRACE.tracer()
    return _WORKER_TRACER, _WORKER_TRACE.parent


def _shard_result(start: int, result: MiningResult) -> ShardResult:
    stats: Dict[str, float] = dict(result.statistics.as_dict())
    stats.update(result.statistics.timers.prefixed())
    return start, result.clusters, stats


def _apply_shard_faults(
    plan: Optional[FaultPlan], shard: int, attempt: int, *, in_process: bool
) -> None:
    """Fire an active fault plan's shard faults for this attempt.

    Delays are applied before crashes so a ``delay-shard`` +
    ``crash-shard`` combination simulates a hung-then-dead worker.
    ``kill-worker`` hard-exits the process (breaking a worker pool);
    mined in-process it downgrades to a clean :class:`FaultInjected`
    (killing the only process would be un-testable).
    """
    if plan is None:
        return
    crash: Optional[FaultKind] = None
    for spec in plan.shard_faults(shard, attempt):
        if spec.kind is FaultKind.DELAY_SHARD:
            if spec.delay > 0.0:
                time.sleep(spec.delay)
        elif spec.kind is FaultKind.CRASH_SHARD:
            crash = spec.kind
        elif spec.kind is FaultKind.KILL_WORKER:
            if in_process:
                crash = spec.kind
            else:  # pragma: no cover - exercised in a child process
                os._exit(13)
    if crash is not None:
        raise FaultInjected(
            f"injected {crash.value} on shard {shard} (attempt {attempt})",
            kind=crash,
        )


def _annotate_shard_span(span: Span, shard: ShardResult) -> None:
    """Stamp a successful shard attempt's span with its statistics."""
    __, clusters, stats = shard
    span.set_attributes(
        {
            "outcome": "ok",
            "nodes_expanded": int(stats.get("nodes_expanded", 0)),
            "clusters_emitted": len(clusters),
        }
    )
    span.set_attributes(
        {key: value for key, value in stats.items()
         if key.startswith("time_")}
    )


def _mine_start(start: int, attempt: int = 0) -> ShardResult:
    miner = _WORKER_MINER
    assert miner is not None, "worker pool initializer did not run"
    tracer, parent = _worker_tracer()
    with tracer.span(
        "shard",
        parent=parent,
        attributes={"shard": start, "attempt": attempt},
    ) as span:
        _apply_shard_faults(_WORKER_FAULTS, start, attempt, in_process=False)
        shard = _shard_result(start, miner.mine(start_conditions=[start]))
        _annotate_shard_span(span, shard)
        return shard


def make_local_shard_miner(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    prunings: Optional[PruningConfig] = None,
    index: Optional[RWaveIndex] = None,
    fault_plan: Optional[FaultPlan] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    tracer: Optional[Tracer] = None,
    trace_parent: Optional[SpanContext] = None,
) -> Callable[[int, int], ShardResult]:
    """A ``(shard, attempt) -> ShardResult`` closure mining in-process.

    The fleet coordinator's local-mining seam
    (:mod:`repro.service.fleet`): one miner is built lazily on the
    first call (so a job fully served by remote nodes never pays for
    it) and reused across shards, exactly like a pool worker.  Each
    call mines one shard under a ``shard`` span tagged
    ``node="local"``, applying the fault plan's shard faults with
    in-process semantics (``kill-worker`` downgrades to a clean
    failure — there is no worker process to kill).
    """
    active_tracer = tracer if tracer is not None else NULL_TRACER
    box: Dict[str, RegClusterMiner] = {}

    def mine_one(shard: int, attempt: int) -> ShardResult:
        miner = box.get("miner")
        if miner is None:
            miner = RegClusterMiner(
                matrix,
                params,
                prunings=prunings,
                index=index,
                should_stop=should_stop,
            )
            box["miner"] = miner
        with active_tracer.span(
            "shard",
            parent=trace_parent,
            attributes={"shard": shard, "attempt": attempt,
                        "node": "local"},
        ) as span:
            _apply_shard_faults(fault_plan, shard, attempt, in_process=True)
            result = miner.mine(start_conditions=[shard])
            out = _shard_result(shard, result)
            _annotate_shard_span(span, out)
            return out

    return mine_one


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------

def merge_shard_results(
    shards: Sequence[ShardResult], params: MiningParameters
) -> MiningResult:
    """Merge per-start shard outputs into one single-process-equivalent
    result (ordering, global redundancy re-check, ``max_clusters`` cap).
    """
    ordered = sorted(shards, key=lambda shard: shard[0])
    statistics = SearchStatistics()
    # The ``timers`` field is a dataclass, not a counter — its floats
    # travel under ``time_``-prefixed keys and are summed separately.
    counter_names = [
        f.name for f in fields(SearchStatistics) if f.name != "timers"
    ]
    timer_names = [f.name for f in fields(PhaseTimers)]
    emitted: set[Tuple[Tuple[int, ...], FrozenSet[int]]] = set()
    clusters: List[RegCluster] = []
    truncated = False
    for __, shard_clusters, shard_stats in ordered:
        for name in counter_names:
            value = int(shard_stats.get(name, 0))
            if name == "max_depth":
                statistics.max_depth = max(statistics.max_depth, value)
            else:
                setattr(statistics, name, getattr(statistics, name) + value)
        for name in timer_names:
            setattr(
                statistics.timers,
                name,
                getattr(statistics.timers, name)
                + float(shard_stats.get(f"time_{name}", 0.0)),
            )
        if truncated:
            continue
        for cluster in shard_clusters:
            key = (cluster.chain, frozenset(cluster.genes))
            if key in emitted:
                # Pruning (3b) re-run globally; a no-op across shards by
                # construction, but kept so the merged set carries the
                # same maximality guarantee as one search.
                continue
            emitted.add(key)
            clusters.append(cluster)
            if (
                params.max_clusters is not None
                and len(clusters) >= params.max_clusters
            ):
                truncated = True
                break
    statistics.clusters_emitted = len(clusters)
    return MiningResult(
        clusters=clusters, statistics=statistics, parameters=params
    )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _pool_context(
    start_method: Optional[str],
) -> multiprocessing.context.BaseContext:
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork shares the parent's page cache with copy-on-write (fast shard
    # startup); fall back to spawn where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _ShardDriver:
    """Shared bookkeeping of the resilient in-process and pool drivers."""

    def __init__(
        self,
        matrix: ExpressionMatrix,
        params: MiningParameters,
        *,
        retry: Optional[RetryPolicy],
        timeout: Optional[float],
        completed: Optional[Mapping[int, ShardResult]],
        on_shard_complete: Optional[Callable[[ShardResult], None]],
        progress_callback: Optional[ProgressCallback],
        should_stop: Optional[Callable[[], bool]],
        tracer: Optional[Tracer] = None,
        trace_parent: Optional[SpanContext] = None,
        shards: Optional[Sequence[int]] = None,
        completed_origin: Optional[Mapping[int, str]] = None,
    ) -> None:
        self.params = params
        self.retry = retry
        self.max_retries = 0 if retry is None else retry.max_retries
        self.deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        self.timeout = timeout
        self.on_shard_complete = on_shard_complete
        self.progress_callback = progress_callback
        self.should_stop = should_stop
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_parent = trace_parent
        self.fault_injections: Dict[str, int] = {}
        # The shard universe: every first-chain-condition by default, or
        # an explicit subset (the fleet node mines only its leased
        # shards — see repro.service.fleet).
        if shards is None:
            universe = list(range(matrix.n_conditions))
        else:
            universe = sorted({int(start) for start in shards})
        for start in universe:
            if not 0 <= start < matrix.n_conditions:
                raise ValueError(
                    f"shard {start} out of range for a matrix with "
                    f"{matrix.n_conditions} conditions"
                )
        self.resumed: Dict[int, ShardResult] = {}
        for start, shard in (completed or {}).items():
            start = int(start)
            if not 0 <= start < matrix.n_conditions:
                raise ValueError(
                    f"checkpointed shard {start} out of range for a matrix "
                    f"with {matrix.n_conditions} conditions"
                )
            if shards is not None and start not in universe:
                continue  # a checkpoint outside the leased subset
            self.resumed[start] = shard
        self.pending: List[int] = [
            start for start in universe if start not in self.resumed
        ]
        self.shards: List[ShardResult] = list(self.resumed.values())
        self.missing: Dict[int, str] = {}
        self.failed_attempts: Dict[int, int] = {}
        self.nodes_so_far = sum(
            int(shard[2].get("nodes_expanded", 0))
            for shard in self.resumed.values()
        )
        self.clusters_so_far = sum(
            len(shard[1]) for shard in self.resumed.values()
        )
        origins = dict(completed_origin or {})
        for start in sorted(self.resumed):
            __, clusters, stats = self.resumed[start]
            # Shards handed in from a *parent* job's result (revision
            # stitching, docs/incremental.md) trace as "shard.reused"
            # with their origin; ordinary checkpoints of this job keep
            # tracing as "shard.resumed".
            origin = origins.get(start)
            span = self.tracer.span(
                "shard.reused" if origin is not None else "shard.resumed",
                parent=self.trace_parent,
                attributes={
                    "shard": start,
                    "outcome": "reused" if origin is not None else "resumed",
                    **({"origin": origin} if origin is not None else {}),
                    "nodes_expanded": int(stats.get("nodes_expanded", 0)),
                    "clusters_emitted": len(clusters),
                    **{key: value for key, value in stats.items()
                       if key.startswith("time_")},
                },
            )
            span.end()

    # -- shared plumbing ----------------------------------------------

    def partial_clusters(self) -> List[RegCluster]:
        """Clusters recoverable right now (merged completed shards)."""
        return merge_shard_results(self.shards, self.params).clusters

    def check_interrupts(self, where: str) -> None:
        """Raise the appropriate cooperative-cancellation signal."""
        if self.should_stop is not None and self.should_stop():
            raise MiningCancelled(
                f"sharded search cancelled {where}",
                partial_clusters=self.partial_clusters(),
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise MiningTimeout(
                f"sharded search exceeded its {self.timeout:g}s budget "
                f"{where}",
                partial_clusters=self.partial_clusters(),
            )

    def record_shard(self, shard: ShardResult) -> None:
        self.shards.append(shard)
        self.nodes_so_far += int(shard[2].get("nodes_expanded", 0))
        self.clusters_so_far += len(shard[1])
        if self.on_shard_complete is not None:
            with self.tracer.span(
                "checkpoint",
                parent=self.trace_parent,
                attributes={"shard": shard[0]},
            ):
                self.on_shard_complete(shard)
        if self.progress_callback is not None:
            self.progress_callback("expanded", self.nodes_so_far)
            if shard[1]:
                self.progress_callback("emitted", self.nodes_so_far)

    def record_failure(self, start: int, error: BaseException) -> bool:
        """Count one failed attempt; ``True`` if the shard may retry."""
        tries = self.failed_attempts.get(start, 0) + 1
        self.failed_attempts[start] = tries
        kind = getattr(error, "kind", None)
        if isinstance(kind, FaultKind):
            self.fault_injections[kind.value] = (
                self.fault_injections.get(kind.value, 0) + 1
            )
        will_retry = tries <= self.max_retries
        if will_retry:
            _LOG.warning(
                "shard.failed",
                shard=start,
                attempt=tries - 1,
                error=f"{type(error).__name__}: {error}",
                will_retry=True,
                backoff_s=(
                    0.0 if self.retry is None
                    else self.retry.backoff(start, tries - 1)
                ),
            )
        else:
            self.missing[start] = f"{type(error).__name__}: {error}"
            _LOG.error(
                "shard.lost",
                shard=start,
                attempts=tries,
                error=self.missing[start],
            )
        return will_retry

    def outcome(self) -> ShardedOutcome:
        return ShardedOutcome(
            result=merge_shard_results(self.shards, self.params),
            missing_shards=sorted(self.missing),
            shard_errors=dict(self.missing),
            failed_attempts=dict(self.failed_attempts),
            resumed_shards=sorted(self.resumed),
            fault_injections=dict(self.fault_injections),
        )


def _drive_in_process(
    driver: _ShardDriver,
    matrix: ExpressionMatrix,
    params: MiningParameters,
    prunings: Optional[PruningConfig],
    index: Optional[RWaveIndex],
    fault_plan: Optional[FaultPlan],
) -> ShardedOutcome:
    """Mine shard-by-shard on the calling thread (``n_workers=1``).

    Progress and cancellation keep node granularity: the miner's own
    hooks are wrapped to offset node counts by the shards already done
    (including checkpointed ones), so observers see one monotonically
    increasing count across the whole job.
    """

    def probe() -> bool:
        if driver.should_stop is not None and driver.should_stop():
            return True
        return (
            driver.deadline is not None
            and time.monotonic() > driver.deadline
        )

    def on_node(event: str, nodes: int) -> None:
        if driver.progress_callback is not None:
            driver.progress_callback(event, driver.nodes_so_far + nodes)

    miner = RegClusterMiner(
        matrix,
        params,
        prunings=prunings,
        index=index,
        progress_callback=(
            on_node if driver.progress_callback is not None else None
        ),
        should_stop=probe if (
            driver.should_stop is not None or driver.deadline is not None
        ) else None,
    )
    for start in driver.pending:
        # Ascending starts + the merge cap make stopping here exact: the
        # single-process search would not have visited later starts
        # either once the cap is reached.
        if (
            params.max_clusters is not None
            and driver.clusters_so_far >= params.max_clusters
        ):
            break
        attempt = 0
        while True:
            driver.check_interrupts(f"before shard {start}")
            try:
                with driver.tracer.span(
                    "shard",
                    parent=driver.trace_parent,
                    attributes={"shard": start, "attempt": attempt},
                ) as span:
                    _apply_shard_faults(
                        fault_plan, start, attempt, in_process=True
                    )
                    result = miner.mine(start_conditions=[start])
                    shard = _shard_result(start, result)
                    _annotate_shard_span(span, shard)
            except MiningTimeout:
                raise
            except MiningCancelled as error:
                # The miner's probe fired mid-shard: classify it.  An
                # external stop wins over a deadline that raced it.
                partials = (
                    driver.partial_clusters() + error.partial_clusters
                )
                if driver.should_stop is not None and driver.should_stop():
                    raise MiningCancelled(
                        str(error), partial_clusters=partials
                    ) from None
                raise MiningTimeout(
                    f"shard {start} exceeded the job's "
                    f"{driver.timeout:g}s budget",
                    partial_clusters=partials,
                ) from None
            except FaultInjected as error:
                if not driver.record_failure(start, error):
                    break
                if driver.retry is not None:
                    driver.retry.sleep_before_retry(start, attempt)
                attempt += 1
                continue
            driver.record_shard(shard)
            break
    return driver.outcome()


def _drive_pool(
    driver: _ShardDriver,
    matrix: ExpressionMatrix,
    params: MiningParameters,
    prunings: Optional[PruningConfig],
    index: Optional[RWaveIndex],
    fault_plan: Optional[FaultPlan],
    n_workers: int,
    start_method: Optional[str],
) -> ShardedOutcome:
    """Mine shards on a worker pool, surviving worker death.

    A clean shard failure (an exception out of the worker) costs only
    that shard an attempt.  A hard worker death breaks the whole
    :class:`~concurrent.futures.ProcessPoolExecutor`; the driver then
    salvages every future that finished before the break, charges one
    attempt to every shard that was in flight (the killer cannot be
    told apart from its victims), rebuilds the pool and resubmits.
    Cancellation/timeout are honoured between shard completions (a
    worker cannot be interrupted mid-shard cooperatively).
    """
    context = _pool_context(start_method)
    trace_config = (
        None if driver.trace_parent is None
        else driver.tracer.worker_config(driver.trace_parent)
    )

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                matrix, params, prunings, index, fault_plan, trace_config,
            ),
        )

    ready: List[int] = list(driver.pending)
    retry_at: Dict[int, float] = {}
    futures: Dict["Future[ShardResult]", int] = {}
    pool = make_pool()
    try:
        while ready or retry_at or futures:
            now = time.monotonic()
            for start in [s for s, at in retry_at.items() if at <= now]:
                del retry_at[start]
                ready.append(start)
            for start in ready:
                attempt = driver.failed_attempts.get(start, 0)
                futures[pool.submit(_mine_start, start, attempt)] = start
            ready.clear()
            driver.check_interrupts(
                f"after {len(driver.shards)} of "
                f"{matrix.n_conditions} shards"
            )
            if not futures:
                # Everything is waiting out a backoff; nap until the
                # earliest retry is due, staying responsive to stops.
                time.sleep(
                    min(0.05, max(0.0, min(retry_at.values()) - now))
                )
                continue
            done, _ = wait(
                list(futures), timeout=0.05, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                start = futures.pop(future)
                try:
                    shard = future.result()
                except BrokenProcessPool as error:
                    broken = True
                    if driver.record_failure(start, error):
                        retry_at[start] = _retry_time(driver, start)
                except FaultInjected as error:
                    if driver.record_failure(start, error):
                        retry_at[start] = _retry_time(driver, start)
                except Exception as error:  # reglint: disable=RL103
                    # Any organic worker failure is retried the same
                    # way as an injected one; an exhausted budget
                    # surfaces it in the outcome's shard_errors.
                    if driver.record_failure(start, error):
                        retry_at[start] = _retry_time(driver, start)
                else:
                    driver.record_shard(shard)
            if broken:
                # The executor is unusable: salvage finished futures,
                # charge the in-flight shards one attempt, start over.
                for future, start in list(futures.items()):
                    try:
                        shard = future.result(timeout=0)
                    except Exception as error:  # reglint: disable=RL103
                        if driver.record_failure(start, error):
                            retry_at[start] = _retry_time(driver, start)
                    else:
                        driver.record_shard(shard)
                futures.clear()
                _LOG.warning(
                    "pool.rebuild",
                    completed_shards=len(driver.shards),
                    pending_retries=len(retry_at),
                )
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return driver.outcome()


def _retry_time(driver: _ShardDriver, start: int) -> float:
    attempt = driver.failed_attempts[start] - 1
    delay = (
        0.0 if driver.retry is None
        else driver.retry.backoff(start, attempt)
    )
    return time.monotonic() + delay


def mine_sharded_outcome(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    n_workers: int = 1,
    prunings: Optional[PruningConfig] = None,
    index: Optional[RWaveIndex] = None,
    progress_callback: Optional[ProgressCallback] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    start_method: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    completed: Optional[Mapping[int, ShardResult]] = None,
    on_shard_complete: Optional[Callable[[ShardResult], None]] = None,
    tracer: Optional[Tracer] = None,
    trace_parent: Optional[SpanContext] = None,
    shards: Optional[Sequence[int]] = None,
    completed_origin: Optional[Mapping[int, str]] = None,
) -> ShardedOutcome:
    """Mine a matrix shard-by-shard with full recovery machinery.

    The degradation-tolerant core of :func:`mine_sharded` — see the
    module docstring for the recovery semantics.  Returns a
    :class:`ShardedOutcome`; a run that lost no shards carries a result
    bit-identical to single-process mining.

    Parameters
    ----------
    retry:
        Per-shard retry budget and backoff.  ``None`` disables retries
        (any shard failure immediately loses the shard).
    fault_plan:
        Chaos-testing fault injection; ``None`` (production) adds zero
        overhead.
    timeout:
        Per-call wall-clock budget in seconds; raises
        :class:`~repro.core.miner.MiningTimeout` (with partial clusters
        attached) when exceeded.
    completed:
        Already-finished shard results keyed by start condition — the
        checkpoint-resume seam.  They are merged without re-mining.
    completed_origin:
        Optional provenance per ``completed`` shard (e.g. ``"parent"``
        for shards stitched from a revision's parent job).  Shards with
        an origin trace as ``shard.reused`` instead of
        ``shard.resumed`` (docs/incremental.md).
    on_shard_complete:
        Invoked with every freshly mined :data:`ShardResult` the moment
        it completes (checkpoint-persistence seam).  Not called for
        ``completed`` shards.
    tracer / trace_parent:
        Optional :class:`~repro.obs.trace.Tracer` plus the span context
        to stitch shard spans under (typically the caller's "mine"
        span).  Worker processes join the same trace file; untraced
        runs pay only a null-tracer check per shard.
    shards:
        Restrict the run to this subset of start conditions instead of
        mining every first chain condition.  The merged result then
        covers exactly those shards — the fleet node's way of mining
        only its leased shards (:mod:`repro.service.fleet`).  ``None``
        (default) mines the full universe.

    Raises
    ------
    MiningCancelled
        When ``should_stop`` fires; partial clusters from completed
        shards are attached.
    MiningTimeout
        When the deadline fires; partial clusters attached likewise.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    universe_size = (
        matrix.n_conditions if shards is None else len(set(shards))
    )
    n_workers = min(n_workers, max(1, universe_size))
    driver = _ShardDriver(
        matrix,
        params,
        retry=retry,
        timeout=timeout,
        completed=completed,
        on_shard_complete=on_shard_complete,
        progress_callback=progress_callback,
        should_stop=should_stop,
        tracer=tracer,
        trace_parent=trace_parent,
        shards=shards,
        completed_origin=completed_origin,
    )
    if n_workers == 1:
        return _drive_in_process(
            driver, matrix, params, prunings, index, fault_plan
        )
    return _drive_pool(
        driver, matrix, params, prunings, index, fault_plan,
        n_workers, start_method,
    )


def mine_sharded(
    matrix: ExpressionMatrix,
    params: MiningParameters,
    *,
    n_workers: int = 1,
    prunings: Optional[PruningConfig] = None,
    index: Optional[RWaveIndex] = None,
    progress_callback: Optional[ProgressCallback] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    start_method: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
) -> MiningResult:
    """Mine a matrix with a sharded worker pool (all-or-nothing).

    Results are bit-identical to
    :func:`repro.core.miner.mine_reg_clusters` for any ``n_workers``
    (see the module docstring for the equivalence argument).

    Parameters
    ----------
    n_workers:
        Worker processes.  ``1`` mines in-process — no pool, and both
        ``progress_callback`` and ``should_stop`` observe every search
        node.  With a pool, progress is reported per completed shard and
        cancellation is honoured between shard completions.
    index:
        Optional prebuilt RWave index (e.g. from the artifact cache);
        shipped to each worker so no process rebuilds it.
    should_stop:
        Cooperative cancellation probe; raises
        :class:`~repro.core.miner.MiningCancelled` when it fires.
    start_method:
        ``multiprocessing`` start method override (default: ``fork``
        where available, else ``spawn``).
    retry / fault_plan / timeout:
        Recovery and chaos knobs shared with
        :func:`mine_sharded_outcome`.

    Raises
    ------
    ShardFailure
        When any shard exhausts its retry budget — this strict wrapper
        refuses partial results; callers that accept degraded output
        use :func:`mine_sharded_outcome`.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if (
        n_workers == 1
        and retry is None
        and fault_plan is None
        and timeout is None
    ):
        # The classic in-process fast path: one full mine() call, exact
        # single-process semantics (including the max_clusters early
        # exit and per-node statistics under a cluster cap).
        miner = RegClusterMiner(
            matrix,
            params,
            prunings=prunings,
            index=index,
            progress_callback=progress_callback,
            should_stop=should_stop,
        )
        return miner.mine()
    outcome = mine_sharded_outcome(
        matrix,
        params,
        n_workers=n_workers,
        prunings=prunings,
        index=index,
        progress_callback=progress_callback,
        should_stop=should_stop,
        start_method=start_method,
        retry=retry,
        fault_plan=fault_plan,
        timeout=timeout,
    )
    if outcome.missing_shards:
        details = "; ".join(
            f"shard {start}: {outcome.shard_errors[start]}"
            for start in outcome.missing_shards
        )
        raise ShardFailure(
            f"{len(outcome.missing_shards)} shard(s) exhausted the retry "
            f"budget: {details}",
            outcome.missing_shards,
            outcome.shard_errors,
        )
    return outcome.result
