"""JSON-over-HTTP front end for the mining service (stdlib only).

Endpoints
---------
``POST /jobs``
    Submit a job.  Body: ``{"matrix": <matrix>, "parameters":
    {"min_genes": ..., "min_conditions": ..., "gamma": ...,
    "epsilon": ..., "max_clusters": ...}}`` where ``<matrix>`` is one of

    * ``{"values": [[...], ...], "gene_names": [...],
      "condition_names": [...]}`` (names optional) — inline data;
    * ``{"text": "..."}`` — a tab-delimited expression table;
    * ``{"path": "..."}`` — a server-side file path.

    The body may also carry ``"priority"`` (``high`` / ``normal`` /
    ``low`` — weighted-fair executor share, ``docs/service.md``), and
    an ``X-Repro-Tenant`` header tags the job's tenant for admission
    accounting.  Responds ``202`` with ``{"job": {...}}`` (``200``
    when the job already exists — submission is idempotent on
    content + parameters).
``GET /jobs``
    ``{"jobs": [{...}, ...]}`` — every job record, oldest first.
``GET /jobs/<id>``
    One job record, including live progress counters.  With
    ``?wait=<s>`` the request long-polls: it answers as soon as the
    job's state changes (from ``&state=<seen>``, or from its current
    state), or after ``wait`` seconds (capped server-side), whichever
    comes first — replacing tight status polling.
``GET /jobs/<id>/result``
    The completed result as a ``reg-cluster/v1`` document
    (``409`` while the job is neither ``done`` nor ``degraded``; a
    degraded job serves its surviving shards' merged clusters, and its
    record lists the ``missing_shards``).  ``?offset=<n>&limit=<n>``
    pages the ``clusters`` list and adds a ``page`` descriptor with
    ``next_offset`` for cursoring large clusterings.
``DELETE /jobs/<id>``
    Cancel an active job (cooperative, via the miner's ``should_stop``
    hook); delete a terminal job's record and cached result.
``GET /healthz``
    Liveness: ``{"status": "ok", ...}`` with uptime, per-priority
    queue depths and per-state job counts (``docs/observability.md``).
``GET /metrics``
    The service's :class:`~repro.obs.metrics.MetricsRegistry` in
    Prometheus text exposition format.

Incremental endpoints (``docs/incremental.md``):

``POST /matrices/<digest>/revisions``
    Record a typed delta (``append_conditions`` / ``append_genes`` /
    ``drop_genes``) against a stored matrix and submit the delta-aware
    child job.  Body: ``{"delta": {...}, "parameters": {...}}``;
    responds ``{"revision": {...}, "job": {...}}``.
``POST /sweeps``
    Submit a gamma/epsilon grid over one matrix as a batch.  Body:
    ``{"matrix": <matrix>, "parameters": {...}, "gammas": [...],
    "epsilons": [...]}``; responds ``202`` with ``{"sweep": {...}}``.
``GET /sweeps`` / ``GET /sweeps/<id>`` / ``GET /sweeps/<id>/results``
    List batches, one batch's per-point states, or per-point results
    (``null`` for unfinished points).

Fleet endpoints (``404`` unless the daemon runs with ``--fleet``; see
``docs/distributed.md`` for the full protocol):

``POST /fleet/lease``
    Body ``{"node_id": ..., "kernels": [...], "max_shards": ...}``;
    responds ``{"lease": {...}}`` with a shard lease, or
    ``{"lease": null}`` when the queue is idle.
``POST /fleet/complete``
    One shard result (or failure report) under a lease; responds
    ``{"accepted": bool, ...}`` — late/duplicate completions are
    rejected idempotently, never erred.
``POST /fleet/heartbeat``
    Node liveness beacon; extends the node's leases.
``GET /fleet/status``
    The coordinator's queue/node snapshot.
``GET /artifacts/matrix/<digest>``
    Content-addressed matrix fetch: the stored ``.npz`` bytes of the
    matrix whose :func:`~repro.matrix.summary.matrix_digest` is
    ``<digest>``.
``GET /artifacts/kernel/<digest>/<gamma>``
    The cached pickled RWave^gamma kernel for (matrix, gamma), ``404``
    when not (yet) built.

``/healthz`` and ``/metrics`` are answered inline by the event loop,
before fault injection and outside admission control — observability
must stay up while chaos or overload is running.

Errors are JSON: ``{"error": "..."}`` with a 4xx status.  Requests
shed by admission control get ``429`` with a ``Retry-After`` header
(``docs/service.md``).

The server is the selector-based
:class:`~repro.service.frontdoor.FrontDoorServer` — a non-blocking
accept/parse event loop feeding a bounded worker pool, with
connection/queue caps and optional per-tenant token-bucket rate
limits and in-flight quotas.  Job execution itself stays on the
service's single background thread, so the HTTP workers only ever do
cheap store/cache reads (and long-poll parks).  Every request is
counted and timed into the service registry, and — unless ``quiet`` —
emitted as a structured ``http.access`` log event.

:class:`ServiceClient` is the matching urllib-based client used by the
``reg-cluster submit`` / ``status`` CLI subcommands and the smoke
tests.  The client retries connection failures and 5xx responses with
exponential backoff (``connect_retries`` attempts), so callers racing
a daemon that is still binding its socket — or one running under an
``http-5xx`` chaos fault (``docs/robustness.md``) — see one clean
answer, not a stack trace.  A ``429`` shed is retried honoring the
server's ``Retry-After`` hint; when retries run out it surfaces as
:class:`ServiceBusy` (a :class:`ServiceError` subclass carrying
``retry_after``), so callers can tell "you are the problem" (4xx)
from "come back later" apart.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.matrix.expression import ExpressionMatrix
from repro.service.frontdoor import FrontDoorServer
from repro.service.resilience import FaultPlan
from repro.service.router import (  # noqa: F401 — re-exported surface
    MAX_BODY_BYTES,
    RequestError as _RequestError,
    matrix_from_payload,
)
from repro.service.service import MiningService

__all__ = [
    "ServiceHTTPServer",
    "ServiceClient",
    "ServiceError",
    "ServiceBusy",
    "matrix_from_payload",
    "serve",
]

#: The selector-based front door, under the name the rest of the code
#: base (and downstream users) imported the threading server as.
ServiceHTTPServer = FrontDoorServer


def serve(
    service: MiningService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    max_connections: Optional[int] = None,
    queue_depth: Optional[int] = None,
    http_workers: Optional[int] = None,
    tenant_rate: Optional[float] = None,
    tenant_burst: Optional[float] = None,
    tenant_quota: Optional[int] = None,
    idle_timeout: Optional[float] = None,
) -> FrontDoorServer:
    """Bind (but do not run) the HTTP front end; port 0 = ephemeral.

    The caller runs ``server.serve_forever()`` (typically on the main
    thread) and is responsible for ``service.start()``.  ``fault_plan``
    overrides the service's plan for the HTTP layer only (chaos tests).
    Admission knobs default to the front door's generous limits;
    tenant rate/quota accounting stays off unless configured
    (``docs/service.md``).
    """
    options: Dict[str, Any] = {}
    if max_connections is not None:
        options["max_connections"] = max_connections
    if queue_depth is not None:
        options["queue_depth"] = queue_depth
    if http_workers is not None:
        options["http_workers"] = http_workers
    if tenant_rate is not None:
        options["tenant_rate"] = tenant_rate
    if tenant_burst is not None:
        options["tenant_burst"] = tenant_burst
    if tenant_quota is not None:
        options["tenant_quota"] = tenant_quota
    if idle_timeout is not None:
        # 0 (or negative) from the CLI means "disable the sweep".
        options["idle_timeout"] = (
            idle_timeout if idle_timeout > 0 else None
        )
    return FrontDoorServer(
        (host, port), service, quiet=quiet, fault_plan=fault_plan,
        **options,
    )


class ServiceError(RuntimeError):
    """An HTTP error reported by the service, with its status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServiceBusy(ServiceError):
    """A 429 shed by admission control that survived client retries.

    ``retry_after`` carries the server's ``Retry-After`` hint in
    seconds (the last one seen), so callers can back off precisely
    instead of guessing.
    """

    def __init__(
        self, message: str, *, retry_after: float = 1.0
    ) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServiceClient:
    """Minimal urllib client for the endpoints above.

    Transient failures are retried with exponential backoff: connection
    errors (daemon not yet listening — ``URLError``), mid-request
    socket resets (``ConnectionResetError``, which covers
    ``http.client.RemoteDisconnected`` — typical when a server drops a
    keep-alive connection under load or restart) and 5xx responses get
    up to ``connect_retries`` extra attempts, sleeping
    ``retry_backoff * 2**attempt`` seconds between them.  A ``429``
    shed retries too, but honors the server's ``Retry-After`` hint
    when it is longer than the backoff, and exhausting retries raises
    :class:`ServiceBusy`.  Other 4xx responses raise
    :class:`ServiceError` immediately — they are the caller's fault,
    and submission is idempotent so retrying them cannot help.

    ``tenant`` stamps every request with an ``X-Repro-Tenant`` header
    for the server's per-tenant admission accounting.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        connect_retries: int = 5,
        retry_backoff: float = 0.2,
        tenant: Optional[str] = None,
    ) -> None:
        if connect_retries < 0:
            raise ValueError(
                f"connect_retries must be >= 0, got {connect_retries}"
            )
        if retry_backoff < 0.0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff
        self.tenant = tenant

    def _build(self, method: str, path: str) -> urllib.request.Request:
        request = urllib.request.Request(
            self.base_url + path, method=method
        )
        if self.tenant:
            request.add_header("X-Repro-Tenant", self.tenant)
        return request

    @staticmethod
    def _http_error_details(
        error: urllib.error.HTTPError,
    ) -> Tuple[str, float]:
        """(message, retry_after_seconds) from an error response."""
        try:
            message = json.loads(error.read().decode("utf-8")).get(
                "error", error.reason
            )
        except (json.JSONDecodeError, UnicodeDecodeError):
            message = str(error.reason)
        try:
            retry_after = float(error.headers.get("Retry-After") or 1.0)
        except (TypeError, ValueError):
            retry_after = 1.0
        return str(message), max(0.0, retry_after)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        for attempt in range(self.connect_retries + 1):
            request = self._build(method, path)
            if payload is not None:
                data = json.dumps(payload).encode("utf-8")
                request.add_header("Content-Type", "application/json")
            try:
                with urllib.request.urlopen(
                    request,
                    data=data,
                    timeout=self.timeout if timeout is None else timeout,
                ) as response:
                    return dict(json.loads(response.read().decode("utf-8")))
            except urllib.error.HTTPError as error:
                # Before URLError: HTTPError is a URLError subclass.
                message, retry_after = self._http_error_details(error)
                if error.code == 429:
                    # Shed by admission control: honor the server's
                    # Retry-After hint (but never sleep less than the
                    # regular backoff would).
                    if attempt < self.connect_retries:
                        time.sleep(
                            max(
                                retry_after,
                                self.retry_backoff * (2.0 ** attempt),
                            )
                        )
                        continue
                    raise ServiceBusy(
                        message, retry_after=retry_after
                    ) from None
                if error.code >= 500 and attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise ServiceError(error.code, message) from None
            except urllib.error.URLError:
                # Connection refused/reset — typical while the daemon is
                # still binding its socket after a (re)start.
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
            except ConnectionResetError:
                # Raised *outside* urllib's URLError wrapping when an
                # established connection dies mid-request (includes
                # http.client.RemoteDisconnected, its subclass) — e.g.
                # the server dropped a keep-alive socket between our
                # send and its response.  Just as transient as a
                # refused connect, so it gets the same backoff.
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
        raise AssertionError("unreachable: the retry loop returns or raises")

    def _request_bytes(self, path: str) -> bytes:
        """GET a binary artifact with the same retry policy as JSON."""
        for attempt in range(self.connect_retries + 1):
            try:
                with urllib.request.urlopen(
                    self._build("GET", path), timeout=self.timeout
                ) as response:
                    return bytes(response.read())
            except urllib.error.HTTPError as error:
                message, retry_after = self._http_error_details(error)
                if error.code == 429:
                    if attempt < self.connect_retries:
                        time.sleep(
                            max(
                                retry_after,
                                self.retry_backoff * (2.0 ** attempt),
                            )
                        )
                        continue
                    raise ServiceBusy(
                        message, retry_after=retry_after
                    ) from None
                if error.code >= 500 and attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise ServiceError(error.code, message) from None
            except (urllib.error.URLError, ConnectionResetError):
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
        raise AssertionError("unreachable: the retry loop returns or raises")

    # -- endpoints -----------------------------------------------------

    def submit_matrix(
        self,
        matrix: ExpressionMatrix,
        parameters: Dict[str, Any],
        *,
        priority: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit inline matrix data; returns the job record dict."""
        body: Dict[str, Any] = {
            "matrix": {
                "values": [list(map(float, row)) for row in matrix.values],
                "gene_names": list(matrix.gene_names),
                "condition_names": list(matrix.condition_names),
            },
            "parameters": parameters,
        }
        if priority is not None:
            body["priority"] = priority
        return dict(self._request("POST", "/jobs", body)["job"])

    def submit_text(
        self,
        text: str,
        parameters: Dict[str, Any],
        *,
        priority: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a tab-delimited expression table as text."""
        body: Dict[str, Any] = {
            "matrix": {"text": text},
            "parameters": parameters,
        }
        if priority is not None:
            body["priority"] = priority
        return dict(self._request("POST", "/jobs", body)["job"])

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` liveness payload (retries like any
        request, so it doubles as a readiness poll after a daemon
        start)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw ``GET /metrics`` Prometheus text exposition."""
        for attempt in range(self.connect_retries + 1):
            try:
                with urllib.request.urlopen(
                    self._build("GET", "/metrics"), timeout=self.timeout
                ) as response:
                    return str(response.read().decode("utf-8"))
            except (urllib.error.URLError, ConnectionResetError):
                # ConnectionResetError covers RemoteDisconnected: a
                # dropped keep-alive socket mid-scrape retries too.
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
        raise AssertionError("unreachable: the retry loop returns or raises")

    def status(self, job_id: str) -> Dict[str, Any]:
        return dict(self._request("GET", f"/jobs/{job_id}")["job"])

    def wait_for_change(
        self,
        job_id: str,
        *,
        wait: float,
        seen_state: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Long-poll one record: ``GET /jobs/<id>?wait=<s>``.

        Answers as soon as the state differs from ``seen_state`` (or
        from its state at request time), or after ``wait`` seconds
        (server-capped), whichever is first.
        """
        query = f"/jobs/{job_id}?wait={wait:g}"
        if seen_state is not None:
            query += f"&state={seen_state}"
        # The HTTP timeout must outlast the requested park time.
        return dict(
            self._request(
                "GET", query, timeout=self.timeout + wait
            )["job"]
        )

    def list_jobs(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/jobs")["jobs"])

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def result_page(
        self,
        job_id: str,
        *,
        offset: int = 0,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One page of the result's ``clusters`` plus a ``page``
        descriptor (``next_offset`` is ``None`` on the last page)."""
        query = f"/jobs/{job_id}/result?offset={int(offset)}"
        if limit is not None:
            query += f"&limit={int(limit)}"
        return self._request("GET", query)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Wait until the job leaves the active states; returns its
        record.

        Uses server-side long-polling (``?wait=``), so state changes
        answer immediately instead of on the next poll tick;
        ``poll_interval`` survives as the pause between long-poll
        rounds for very long waits.  Raises :class:`TimeoutError` if
        the job stays active past ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        record = self.status(job_id)
        while True:
            if record["state"] not in ("submitted", "running"):
                return record
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout:g}s"
                )
            record = self.wait_for_change(
                job_id,
                wait=min(remaining, 30.0),
                seen_state=str(record["state"]),
            )
            if (
                record["state"] in ("submitted", "running")
                and poll_interval > 0.0
            ):
                time.sleep(min(poll_interval, 0.05))

    # -- incremental endpoints (docs/incremental.md) -------------------

    def submit_revision(
        self,
        parent_digest: str,
        delta: Dict[str, Any],
        parameters: Dict[str, Any],
        *,
        priority: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Evolve a stored matrix by one typed delta and mine the child.

        ``delta`` is the JSON delta form (``{"kind":
        "append_conditions" | "append_genes" | "drop_genes", ...}``,
        see ``docs/incremental.md``).  Returns ``{"revision": {...},
        "job": {...}}``.
        """
        body: Dict[str, Any] = {
            "delta": dict(delta),
            "parameters": parameters,
        }
        if priority is not None:
            body["priority"] = priority
        return self._request(
            "POST", f"/matrices/{parent_digest}/revisions", body
        )

    def submit_sweep(
        self,
        matrix: ExpressionMatrix,
        parameters: Dict[str, Any],
        *,
        gammas: List[float],
        epsilons: List[float],
        priority: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a gamma/epsilon grid batch; returns the sweep dict."""
        body: Dict[str, Any] = {
            "matrix": {
                "values": [list(map(float, row)) for row in matrix.values],
                "gene_names": list(matrix.gene_names),
                "condition_names": list(matrix.condition_names),
            },
            "parameters": parameters,
            "gammas": [float(g) for g in gammas],
            "epsilons": [float(e) for e in epsilons],
        }
        if priority is not None:
            body["priority"] = priority
        return dict(self._request("POST", "/sweeps", body)["sweep"])

    def sweep_status(self, sweep_id: str) -> Dict[str, Any]:
        """The per-point state envelope of one sweep batch."""
        return self._request("GET", f"/sweeps/{sweep_id}")

    def sweep_results(self, sweep_id: str) -> Dict[str, Any]:
        """Per-point results (``None`` for unfinished points)."""
        return self._request("GET", f"/sweeps/{sweep_id}/results")

    def list_sweeps(self) -> List[Dict[str, Any]]:
        """Every recorded sweep batch, oldest first."""
        return list(self._request("GET", "/sweeps")["sweeps"])

    # -- fleet endpoints (docs/distributed.md) -------------------------

    def fleet_lease(
        self,
        node_id: str,
        *,
        kernels: Optional[List[str]] = None,
        max_shards: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """Request a shard lease; ``None`` when the queue is idle.

        ``kernels`` advertises the node's cached kernel artifacts for
        affinity routing.
        """
        body: Dict[str, Any] = {
            "node_id": node_id,
            "kernels": list(kernels or []),
        }
        if max_shards is not None:
            body["max_shards"] = int(max_shards)
        lease = self._request("POST", "/fleet/lease", body).get("lease")
        return None if lease is None else dict(lease)

    def fleet_complete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Report one shard completion (or failure) under a lease."""
        return self._request("POST", "/fleet/complete", dict(payload))

    def fleet_heartbeat(
        self, node_id: str, *, kernels: Optional[List[str]] = None
    ) -> Dict[str, Any]:
        """Beacon node liveness; extends the node's active leases."""
        return self._request(
            "POST",
            "/fleet/heartbeat",
            {"node_id": node_id, "kernels": list(kernels or [])},
        )

    def fleet_status(self) -> Dict[str, Any]:
        """The coordinator's queue/node snapshot."""
        return self._request("GET", "/fleet/status")

    def fetch_matrix(self, digest: str) -> bytes:
        """The stored ``.npz`` bytes of the matrix with this digest."""
        return self._request_bytes(f"/artifacts/matrix/{digest}")

    def fetch_kernel(self, digest: str, gamma: float) -> Optional[bytes]:
        """The pickled kernel for (digest, gamma); ``None`` if unbuilt."""
        try:
            return self._request_bytes(
                f"/artifacts/kernel/{digest}/{float(gamma)!r}"
            )
        except ServiceError as error:
            if error.status == 404:
                return None
            raise
