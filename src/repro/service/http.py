"""JSON-over-HTTP front end for the mining service (stdlib only).

Endpoints
---------
``POST /jobs``
    Submit a job.  Body: ``{"matrix": <matrix>, "parameters":
    {"min_genes": ..., "min_conditions": ..., "gamma": ...,
    "epsilon": ..., "max_clusters": ...}}`` where ``<matrix>`` is one of

    * ``{"values": [[...], ...], "gene_names": [...],
      "condition_names": [...]}`` (names optional) — inline data;
    * ``{"text": "..."}`` — a tab-delimited expression table;
    * ``{"path": "..."}`` — a server-side file path.

    Responds ``202`` with ``{"job": {...}}`` (``200`` when the job
    already exists — submission is idempotent on content + parameters).
``GET /jobs``
    ``{"jobs": [{...}, ...]}`` — every job record, oldest first.
``GET /jobs/<id>``
    One job record, including live progress counters.
``GET /jobs/<id>/result``
    The completed result as a ``reg-cluster/v1`` document
    (``409`` while the job is neither ``done`` nor ``degraded``; a
    degraded job serves its surviving shards' merged clusters, and its
    record lists the ``missing_shards``).
``DELETE /jobs/<id>``
    Cancel an active job (cooperative, via the miner's ``should_stop``
    hook); delete a terminal job's record and cached result.
``GET /healthz``
    Liveness: ``{"status": "ok", ...}`` with uptime, queue depth and
    per-state job counts (``docs/observability.md``).
``GET /metrics``
    The service's :class:`~repro.obs.metrics.MetricsRegistry` in
    Prometheus text exposition format.

Fleet endpoints (``404`` unless the daemon runs with ``--fleet``; see
``docs/distributed.md`` for the full protocol):

``POST /fleet/lease``
    Body ``{"node_id": ..., "kernels": [...], "max_shards": ...}``;
    responds ``{"lease": {...}}`` with a shard lease, or
    ``{"lease": null}`` when the queue is idle.
``POST /fleet/complete``
    One shard result (or failure report) under a lease; responds
    ``{"accepted": bool, ...}`` — late/duplicate completions are
    rejected idempotently, never erred.
``POST /fleet/heartbeat``
    Node liveness beacon; extends the node's leases.
``GET /fleet/status``
    The coordinator's queue/node snapshot.
``GET /artifacts/matrix/<digest>``
    Content-addressed matrix fetch: the stored ``.npz`` bytes of the
    matrix whose :func:`~repro.matrix.summary.matrix_digest` is
    ``<digest>``.
``GET /artifacts/kernel/<digest>/<gamma>``
    The cached pickled RWave^gamma kernel for (matrix, gamma), ``404``
    when not (yet) built.

``/healthz`` and ``/metrics`` are answered before fault injection —
observability must stay up while chaos is running.

Errors are JSON: ``{"error": "..."}`` with a 4xx status.  The server is
a :class:`http.server.ThreadingHTTPServer`; job execution itself stays
on the service's single background thread, so the HTTP pool only ever
does cheap store/cache reads.  Every request is counted and timed into
the service registry, and — unless ``quiet`` — emitted as a structured
``http.access`` log event.

:class:`ServiceClient` is the matching urllib-based client used by the
``reg-cluster submit`` / ``status`` CLI subcommands and the smoke
tests.  The client retries connection failures and 5xx responses with
exponential backoff (``connect_retries`` attempts), so callers racing a
daemon that is still binding its socket — or one running under an
``http-5xx`` chaos fault (``docs/robustness.md``) — see one clean
answer, not a stack trace.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.matrix.expression import ExpressionMatrix
from repro.matrix.io import load_expression_matrix, parse_expression_text
from repro.obs.log import get_logger
from repro.service.jobs import ACTIVE_STATES, parameters_from_dict
from repro.service.resilience import FaultKind, FaultPlan
from repro.service.service import MiningService

_LOG = get_logger("repro.service.http")

__all__ = [
    "ServiceHTTPServer",
    "ServiceClient",
    "ServiceError",
    "matrix_from_payload",
    "serve",
]

_JOB_PATH = re.compile(r"^/jobs/(?P<job_id>[A-Za-z0-9_-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/(?P<job_id>[A-Za-z0-9_-]+)/result$")
_MATRIX_ARTIFACT_PATH = re.compile(
    r"^/artifacts/matrix/(?P<digest>[0-9a-f]{64})$"
)
_KERNEL_ARTIFACT_PATH = re.compile(
    r"^/artifacts/kernel/(?P<digest>[0-9a-f]{64})/(?P<gamma>[0-9.eE+-]+)$"
)

#: Refuse request bodies beyond this size (64 MiB covers the paper's
#: yeast matrix inline with two orders of magnitude to spare).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _RequestError(ValueError):
    """A client error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def matrix_from_payload(payload: Any) -> ExpressionMatrix:
    """Build a matrix from the ``matrix`` member of a POST body."""
    if not isinstance(payload, dict):
        raise _RequestError(400, "matrix must be a JSON object")
    kinds = [k for k in ("values", "text", "path") if k in payload]
    if len(kinds) != 1:
        raise _RequestError(
            400,
            "matrix must supply exactly one of 'values', 'text', 'path'",
        )
    if "values" in payload:
        return ExpressionMatrix(
            payload["values"],
            payload.get("gene_names"),
            payload.get("condition_names"),
        )
    if "text" in payload:
        return parse_expression_text(payload["text"])
    return load_expression_matrix(payload["path"])


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ServiceHTTPServer`."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        # The stock per-response line is replaced by the timed
        # ``http.access`` event that ``_dispatch`` emits.
        pass

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            _LOG.info(
                "http.server",
                message=format % args,
                client=self.client_address[0],
            )

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/octet-stream",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_metrics(self, service: MiningService) -> None:
        body = service.metrics.render().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = 200

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _RequestError(400, "request body required")
        if length > MAX_BODY_BYTES:
            raise _RequestError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _RequestError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        started = time.perf_counter()
        #: last status actually written; 500 if the handler died before
        #: sending anything (the connection just drops in that case).
        self._status = 500
        try:
            self._route(method, service)
        finally:
            elapsed = time.perf_counter() - started
            self.server.observe_request(method, self._status, elapsed)
            if not self.server.quiet:
                _LOG.info(
                    "http.access",
                    method=method,
                    path=self.path,
                    status=self._status,
                    duration_ms=round(elapsed * 1000.0, 3),
                    client=self.client_address[0],
                )

    def _route(self, method: str, service: MiningService) -> None:
        # Observability endpoints answer before fault injection: chaos
        # must not blind the probes watching it.
        if method == "GET" and self.path == "/healthz":
            self._send_json(200, service.health())
            return
        if method == "GET" and self.path == "/metrics":
            self._send_metrics(service)
            return
        plan = self.server.fault_plan
        if plan is not None and plan.fire(FaultKind.HTTP_5XX):
            service.metrics.counter(
                "repro_faults_injected_total",
                "Chaos faults that actually fired, by kind.",
                labelnames=("kind",),
            ).labels(kind=FaultKind.HTTP_5XX.value).inc()
            _LOG.warning(
                "fault.injected", kind=FaultKind.HTTP_5XX.value,
                path=self.path,
            )
            self._send_json(
                503,
                {"error": f"injected {FaultKind.HTTP_5XX.value} fault"},
            )
            return
        try:
            if method == "POST" and self.path == "/fleet/lease":
                self._fleet_lease(service)
            elif method == "POST" and self.path == "/fleet/complete":
                self._fleet_complete(service)
            elif method == "POST" and self.path == "/fleet/heartbeat":
                self._fleet_heartbeat(service)
            elif method == "GET" and self.path == "/fleet/status":
                self._send_json(200, self._fleet(service).snapshot())
            elif method == "GET" and _MATRIX_ARTIFACT_PATH.match(self.path):
                match = _MATRIX_ARTIFACT_PATH.match(self.path)
                assert match is not None
                self._get_matrix_artifact(service, match.group("digest"))
            elif method == "GET" and _KERNEL_ARTIFACT_PATH.match(self.path):
                match = _KERNEL_ARTIFACT_PATH.match(self.path)
                assert match is not None
                self._get_kernel_artifact(
                    service, match.group("digest"), match.group("gamma")
                )
            elif method == "POST" and self.path == "/jobs":
                self._post_job(service)
            elif method == "GET" and self.path == "/jobs":
                self._send_json(
                    200,
                    {"jobs": [r.to_dict() for r in service.list_jobs()]},
                )
            elif method == "GET" and _RESULT_PATH.match(self.path):
                match = _RESULT_PATH.match(self.path)
                assert match is not None
                self._get_result(service, match.group("job_id"))
            elif method in ("GET", "DELETE") and _JOB_PATH.match(self.path):
                match = _JOB_PATH.match(self.path)
                assert match is not None
                job_id = match.group("job_id")
                if method == "GET":
                    self._send_json(
                        200, {"job": service.status(job_id).to_dict()}
                    )
                else:
                    self._delete_job(service, job_id)
            else:
                raise _RequestError(404, f"no route {method} {self.path}")
        except _RequestError as error:
            self._send_json(error.status, {"error": str(error)})
        except KeyError as error:
            message = error.args[0] if error.args else str(error)
            self._send_json(404, {"error": str(message)})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})

    # -- fleet handlers ------------------------------------------------

    def _fleet(self, service: MiningService) -> Any:
        fleet = service.fleet
        if fleet is None:
            raise _RequestError(
                404, "fleet mode is disabled on this daemon (use --fleet)"
            )
        return fleet

    def _fleet_lease(self, service: MiningService) -> None:
        fleet = self._fleet(service)
        body = self._read_body()
        node_id = str(body.get("node_id") or "")
        if not node_id:
            raise _RequestError(400, "lease request must name a node_id")
        kernels = body.get("kernels") or []
        if not isinstance(kernels, list):
            raise _RequestError(400, "kernels must be a list of cache keys")
        max_shards = body.get("max_shards")
        lease = fleet.lease(
            node_id,
            kernels=[str(key) for key in kernels],
            max_shards=None if max_shards is None else int(max_shards),
        )
        self._send_json(200, {"lease": lease})

    def _fleet_complete(self, service: MiningService) -> None:
        fleet = self._fleet(service)
        self._send_json(200, fleet.complete(self._read_body()))

    def _fleet_heartbeat(self, service: MiningService) -> None:
        fleet = self._fleet(service)
        body = self._read_body()
        node_id = str(body.get("node_id") or "")
        if not node_id:
            raise _RequestError(400, "heartbeat must name a node_id")
        kernels = body.get("kernels") or []
        if not isinstance(kernels, list):
            raise _RequestError(400, "kernels must be a list of cache keys")
        self._send_json(
            200,
            fleet.heartbeat(node_id, kernels=[str(k) for k in kernels]),
        )

    def _get_matrix_artifact(
        self, service: MiningService, digest: str
    ) -> None:
        data = service.matrix_artifact_bytes(digest)
        if data is None:
            raise _RequestError(404, f"no stored matrix with digest {digest}")
        self._send_bytes(200, data)

    def _get_kernel_artifact(
        self, service: MiningService, digest: str, gamma: str
    ) -> None:
        try:
            gamma_value = float(gamma)
        except ValueError:
            raise _RequestError(400, f"bad gamma {gamma!r}") from None
        data = service.kernel_artifact_bytes(digest, gamma_value)
        if data is None:
            raise _RequestError(
                404, f"no cached kernel for {digest} at gamma={gamma}"
            )
        self._send_bytes(200, data)

    # -- handlers ------------------------------------------------------

    def _post_job(self, service: MiningService) -> None:
        body = self._read_body()
        if "parameters" not in body or "matrix" not in body:
            raise _RequestError(
                400, "body must contain 'matrix' and 'parameters'"
            )
        params = parameters_from_dict(body["parameters"])
        matrix = matrix_from_payload(body["matrix"])
        record = service.submit(matrix, params)
        status = 200 if record.started_at is not None else 202
        self._send_json(status, {"job": record.to_dict()})

    def _get_result(self, service: MiningService, job_id: str) -> None:
        try:
            payload = service.result(job_id)
        except ValueError as error:
            raise _RequestError(409, str(error)) from None
        self._send_json(200, payload)

    def _delete_job(self, service: MiningService, job_id: str) -> None:
        record = service.status(job_id)
        if record.state in ACTIVE_STATES:
            updated = service.cancel(job_id)
            self._send_json(200, {"job": updated.to_dict()})
        else:
            service.delete(job_id)
            self._send_json(200, {"deleted": job_id})

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MiningService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: MiningService,
        *,
        quiet: bool = True,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        # One plan drives the whole stack: unless overridden, the HTTP
        # layer shares the service's plan, so ``http-5xx`` specs in a
        # ``REPRO_FAULTS`` plan reach the front end too.
        self.fault_plan = (
            fault_plan if fault_plan is not None else service.fault_plan
        )
        self._m_requests = service.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method and status.",
            labelnames=("method", "status"),
        )
        self._m_latency = service.metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency in seconds, by method.",
            labelnames=("method",),
        )

    def observe_request(
        self, method: str, status: int, elapsed: float
    ) -> None:
        """Count and time one finished request (called per dispatch)."""
        self._m_requests.labels(method=method, status=str(status)).inc()
        self._m_latency.labels(method=method).observe(elapsed)


def serve(
    service: MiningService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
    fault_plan: Optional[FaultPlan] = None,
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP front end; port 0 = ephemeral.

    The caller runs ``server.serve_forever()`` (typically on the main
    thread) and is responsible for ``service.start()``.  ``fault_plan``
    overrides the service's plan for the HTTP layer only (chaos tests).
    """
    return ServiceHTTPServer(
        (host, port), service, quiet=quiet, fault_plan=fault_plan
    )


class ServiceError(RuntimeError):
    """An HTTP error reported by the service, with its status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal urllib client for the endpoints above.

    Transient failures are retried with exponential backoff: connection
    errors (daemon not yet listening — ``URLError``), mid-request
    socket resets (``ConnectionResetError``, which covers
    ``http.client.RemoteDisconnected`` — typical when a threading
    server drops a keep-alive connection under load or restart) and
    5xx responses get up to ``connect_retries`` extra attempts,
    sleeping ``retry_backoff * 2**attempt`` seconds between them.  4xx
    responses raise :class:`ServiceError` immediately — they are the
    caller's fault, and submission is idempotent so retrying them
    cannot help.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        connect_retries: int = 5,
        retry_backoff: float = 0.2,
    ) -> None:
        if connect_retries < 0:
            raise ValueError(
                f"connect_retries must be >= 0, got {connect_retries}"
            )
        if retry_backoff < 0.0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        for attempt in range(self.connect_retries + 1):
            request = urllib.request.Request(
                self.base_url + path, method=method
            )
            if payload is not None:
                data = json.dumps(payload).encode("utf-8")
                request.add_header("Content-Type", "application/json")
            try:
                with urllib.request.urlopen(
                    request, data=data, timeout=self.timeout
                ) as response:
                    return dict(json.loads(response.read().decode("utf-8")))
            except urllib.error.HTTPError as error:
                # Before URLError: HTTPError is a URLError subclass.
                try:
                    message = json.loads(error.read().decode("utf-8")).get(
                        "error", error.reason
                    )
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = str(error.reason)
                if error.code >= 500 and attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise ServiceError(error.code, message) from None
            except urllib.error.URLError:
                # Connection refused/reset — typical while the daemon is
                # still binding its socket after a (re)start.
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
            except ConnectionResetError:
                # Raised *outside* urllib's URLError wrapping when an
                # established connection dies mid-request (includes
                # http.client.RemoteDisconnected, its subclass) — e.g.
                # the server dropped a keep-alive socket between our
                # send and its response.  Just as transient as a
                # refused connect, so it gets the same backoff.
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
        raise AssertionError("unreachable: the retry loop returns or raises")

    def _request_bytes(self, path: str) -> bytes:
        """GET a binary artifact with the same retry policy as JSON."""
        for attempt in range(self.connect_retries + 1):
            try:
                with urllib.request.urlopen(
                    urllib.request.Request(
                        self.base_url + path, method="GET"
                    ),
                    timeout=self.timeout,
                ) as response:
                    return bytes(response.read())
            except urllib.error.HTTPError as error:
                try:
                    message = json.loads(error.read().decode("utf-8")).get(
                        "error", error.reason
                    )
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = str(error.reason)
                if error.code >= 500 and attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise ServiceError(error.code, message) from None
            except (urllib.error.URLError, ConnectionResetError):
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
        raise AssertionError("unreachable: the retry loop returns or raises")

    # -- endpoints -----------------------------------------------------

    def submit_matrix(
        self,
        matrix: ExpressionMatrix,
        parameters: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Submit inline matrix data; returns the job record dict."""
        body = {
            "matrix": {
                "values": [list(map(float, row)) for row in matrix.values],
                "gene_names": list(matrix.gene_names),
                "condition_names": list(matrix.condition_names),
            },
            "parameters": parameters,
        }
        return dict(self._request("POST", "/jobs", body)["job"])

    def submit_text(
        self, text: str, parameters: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Submit a tab-delimited expression table as text."""
        body = {"matrix": {"text": text}, "parameters": parameters}
        return dict(self._request("POST", "/jobs", body)["job"])

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` liveness payload (retries like any
        request, so it doubles as a readiness poll after a daemon
        start)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw ``GET /metrics`` Prometheus text exposition."""
        for attempt in range(self.connect_retries + 1):
            try:
                with urllib.request.urlopen(
                    urllib.request.Request(
                        self.base_url + "/metrics", method="GET"
                    ),
                    timeout=self.timeout,
                ) as response:
                    return str(response.read().decode("utf-8"))
            except (urllib.error.URLError, ConnectionResetError):
                # ConnectionResetError covers RemoteDisconnected: a
                # dropped keep-alive socket mid-scrape retries too.
                if attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2.0 ** attempt))
                    continue
                raise
        raise AssertionError("unreachable: the retry loop returns or raises")

    def status(self, job_id: str) -> Dict[str, Any]:
        return dict(self._request("GET", f"/jobs/{job_id}")["job"])

    def list_jobs(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/jobs")["jobs"])

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job leaves the active states; returns its record.

        Raises :class:`TimeoutError` if it stays active past ``timeout``
        seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] not in ("submitted", "running"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_interval)

    # -- fleet endpoints (docs/distributed.md) -------------------------

    def fleet_lease(
        self,
        node_id: str,
        *,
        kernels: Optional[List[str]] = None,
        max_shards: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """Request a shard lease; ``None`` when the queue is idle.

        ``kernels`` advertises the node's cached kernel artifacts for
        affinity routing.
        """
        body: Dict[str, Any] = {
            "node_id": node_id,
            "kernels": list(kernels or []),
        }
        if max_shards is not None:
            body["max_shards"] = int(max_shards)
        lease = self._request("POST", "/fleet/lease", body).get("lease")
        return None if lease is None else dict(lease)

    def fleet_complete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Report one shard completion (or failure) under a lease."""
        return self._request("POST", "/fleet/complete", dict(payload))

    def fleet_heartbeat(
        self, node_id: str, *, kernels: Optional[List[str]] = None
    ) -> Dict[str, Any]:
        """Beacon node liveness; extends the node's active leases."""
        return self._request(
            "POST",
            "/fleet/heartbeat",
            {"node_id": node_id, "kernels": list(kernels or [])},
        )

    def fleet_status(self) -> Dict[str, Any]:
        """The coordinator's queue/node snapshot."""
        return self._request("GET", "/fleet/status")

    def fetch_matrix(self, digest: str) -> bytes:
        """The stored ``.npz`` bytes of the matrix with this digest."""
        return self._request_bytes(f"/artifacts/matrix/{digest}")

    def fetch_kernel(self, digest: str, gamma: float) -> Optional[bytes]:
        """The pickled kernel for (digest, gamma); ``None`` if unbuilt."""
        try:
            return self._request_bytes(
                f"/artifacts/kernel/{digest}/{float(gamma)!r}"
            )
        except ServiceError as error:
            if error.status == 404:
                return None
            raise
