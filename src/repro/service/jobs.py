"""The job engine: persistent, deterministic mining jobs.

A *job* is one request to mine a matrix at one parameter setting.  Its
identity is a pure function of the work — the matrix content digest (see
:func:`repro.matrix.summary.matrix_digest`) plus the
:class:`~repro.core.params.MiningParameters` — so resubmitting identical
work lands on the same job id and can be answered from the completed
result instead of re-mining.  Worker count is deliberately *excluded*
from the identity: the sharded executor guarantees results independent
of it (see :mod:`repro.service.executor`).

Job records move through a small state machine::

    submitted ──> running ──> done
        │            ├──────> failed
        └────────────┴──────> cancelled

and are persisted as one JSON file per job (atomic replace), so a
restarted service sees every job it ever accepted.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.params import MiningParameters

__all__ = [
    "JobState",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobStore",
    "compute_job_id",
    "parameters_to_dict",
    "parameters_from_dict",
]


class JobState(str, Enum):
    """Lifecycle states of a mining job."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States in which a job still owns (or awaits) compute.
ACTIVE_STATES = frozenset({JobState.SUBMITTED, JobState.RUNNING})
#: States a job can never leave.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})

_JOB_ID_PATTERN = re.compile(r"^job-[0-9a-f]{16}$")


def parameters_to_dict(params: MiningParameters) -> Dict[str, Any]:
    """The canonical JSON form of a parameter bundle (sorted keys)."""
    return {
        "min_genes": params.min_genes,
        "min_conditions": params.min_conditions,
        "gamma": params.gamma,
        "epsilon": params.epsilon,
        "max_clusters": params.max_clusters,
    }


def parameters_from_dict(payload: Dict[str, Any]) -> MiningParameters:
    """Inverse of :func:`parameters_to_dict` (re-validated on build)."""
    known = {"min_genes", "min_conditions", "gamma", "epsilon", "max_clusters"}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"unknown mining parameter(s): {', '.join(sorted(unknown))}"
        )
    missing = {"min_genes", "min_conditions", "gamma", "epsilon"} - set(payload)
    if missing:
        raise ValueError(
            f"missing mining parameter(s): {', '.join(sorted(missing))}"
        )
    return MiningParameters(
        min_genes=int(payload["min_genes"]),
        min_conditions=int(payload["min_conditions"]),
        gamma=float(payload["gamma"]),
        epsilon=float(payload["epsilon"]),
        max_clusters=(
            None if payload.get("max_clusters") is None
            else int(payload["max_clusters"])
        ),
    )


def compute_job_id(matrix_digest: str, params: MiningParameters) -> str:
    """Deterministic job id from (matrix digest, parameters).

    >>> from repro.core.params import MiningParameters
    >>> p = MiningParameters(min_genes=3, min_conditions=5,
    ...                      gamma=0.15, epsilon=0.1)
    >>> compute_job_id("abc123", p) == compute_job_id("abc123", p)
    True
    >>> compute_job_id("abc123", p) == compute_job_id(
    ...     "abc123", p.with_overrides(epsilon=0.2))
    False
    >>> compute_job_id("abc123", p).startswith("job-")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(b"reg-cluster-job/v1")
    hasher.update(matrix_digest.encode("ascii"))
    hasher.update(
        json.dumps(parameters_to_dict(params), sort_keys=True).encode("ascii")
    )
    return f"job-{hasher.hexdigest()[:16]}"


@dataclass(frozen=True)
class JobRecord:
    """One job's persisted metadata (everything but the result payload)."""

    job_id: str
    state: JobState
    matrix_digest: str
    parameters: Dict[str, Any]
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: live counters: ``nodes_expanded``, ``clusters_emitted``
    progress: Dict[str, int] = field(default_factory=dict)
    #: was the RWave index served from the artifact cache? (``None``
    #: until the job reaches the index-acquisition step)
    index_cache_hit: Optional[bool] = None
    #: was the regulation kernel served from the artifact cache?
    #: (``None`` until the job reaches the kernel-acquisition step)
    kernel_cache_hit: Optional[bool] = None
    #: was the whole result served from the artifact cache?
    result_cache_hit: Optional[bool] = None
    #: wall-clock seconds per search phase (candidates / windows /
    #: emit), summed across shards; set when the job completes
    phase_timers: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["state"] = self.state.value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        data = dict(payload)
        data["state"] = JobState(data["state"])
        return cls(**data)


class JobStore:
    """Crash-safe job-record storage: one JSON file per job.

    Writes go through a temp file + :func:`os.replace`, so a record on
    disk is always a complete JSON document.  All mutation happens under
    one lock, making the store safe to share between the HTTP threads
    and the execution worker.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _path(self, job_id: str) -> Path:
        if not _JOB_ID_PATTERN.match(job_id):
            raise KeyError(f"malformed job id {job_id!r}")
        return self.root / f"{job_id}.json"

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def save(self, record: JobRecord) -> JobRecord:
        """Persist (create or overwrite) one record atomically."""
        path = self._path(record.job_id)
        with self._lock:
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return record

    def exists(self, job_id: str) -> bool:
        try:
            return self._path(job_id).exists()
        except KeyError:
            return False

    def get(self, job_id: str) -> JobRecord:
        """Load one record; raises :class:`KeyError` for unknown ids."""
        path = self._path(job_id)
        with self._lock:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                raise KeyError(f"unknown job {job_id!r}") from None
        return JobRecord.from_dict(payload)

    def update(self, job_id: str, **changes: Any) -> JobRecord:
        """Read-modify-write one record under the store lock."""
        with self._lock:
            record = replace(self.get(job_id), **changes)
            return self.save(record)

    def delete(self, job_id: str) -> None:
        """Remove one record; raises :class:`KeyError` for unknown ids."""
        path = self._path(job_id)
        with self._lock:
            try:
                path.unlink()
            except FileNotFoundError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def list_records(self) -> List[JobRecord]:
        """Every stored record, oldest submission first."""
        with self._lock:
            records = [
                JobRecord.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
                for path in sorted(self.root.glob("job-*.json"))
            ]
        records.sort(key=lambda r: (r.submitted_at, r.job_id))
        return records
