"""The job engine: persistent, deterministic mining jobs.

A *job* is one request to mine a matrix at one parameter setting.  Its
identity is a pure function of the work — the matrix content digest (see
:func:`repro.matrix.summary.matrix_digest`) plus the
:class:`~repro.core.params.MiningParameters` — so resubmitting identical
work lands on the same job id and can be answered from the completed
result instead of re-mining.  Worker count is deliberately *excluded*
from the identity: the sharded executor guarantees results independent
of it (see :mod:`repro.service.executor`).

Job records move through a small state machine::

    submitted ──> running ──> done
        │            ├──────> degraded
        │            ├──────> failed
        └────────────┴──────> cancelled

and are persisted as one JSON file per job (atomic replace), so a
restarted service sees every job it ever accepted.  ``degraded`` is the
graceful-degradation terminal state (``docs/robustness.md``): the job
finished with the merged clusters of its surviving shards, and its
record lists the ``missing_shards`` that exhausted their retry budget.

Beside the records, the store persists **shard checkpoints**: one JSON
file per completed shard of a running job (:meth:`JobStore.save_shard`).
A daemon killed mid-job resumes from them — completed shards are merged
without re-mining (the deterministic shard merge makes the resumed
result bit-identical to an uninterrupted run).
"""

# The store's lock exists precisely to serialize record/checkpoint file
# I/O against concurrent readers; RL303's blocking-I/O-under-lock
# warning is this class's design, not a defect (docs/robustness.md,
# "Concurrency model").
# reglint: disable-file=RL303

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.cluster import RegCluster
from repro.core.params import MiningParameters

__all__ = [
    "JobState",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "RESULT_STATES",
    "JobRecord",
    "JobStore",
    "StoredShard",
    "compute_job_id",
    "parameters_to_dict",
    "parameters_from_dict",
]

#: A checkpointed shard: (start condition, clusters, stats) — the same
#: shape as :data:`repro.service.executor.ShardResult` (kept structural
#: to avoid a layering cycle).
StoredShard = Tuple[int, List[RegCluster], Dict[str, float]]


class JobState(str, Enum):
    """Lifecycle states of a mining job."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    DONE = "done"
    #: Finished with partial output: the retry budget ran out on at
    #: least one shard, and the result merges the surviving shards
    #: (the record's ``missing_shards`` lists the losses).
    DEGRADED = "degraded"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States in which a job still owns (or awaits) compute.
ACTIVE_STATES = frozenset({JobState.SUBMITTED, JobState.RUNNING})
#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.DEGRADED, JobState.FAILED, JobState.CANCELLED}
)
#: Terminal states whose jobs carry a result payload.
RESULT_STATES = frozenset({JobState.DONE, JobState.DEGRADED})

_JOB_ID_PATTERN = re.compile(r"^job-[0-9a-f]{16}$")


def parameters_to_dict(params: MiningParameters) -> Dict[str, Any]:
    """The canonical JSON form of a parameter bundle (sorted keys)."""
    return {
        "min_genes": params.min_genes,
        "min_conditions": params.min_conditions,
        "gamma": params.gamma,
        "epsilon": params.epsilon,
        "max_clusters": params.max_clusters,
    }


def parameters_from_dict(payload: Dict[str, Any]) -> MiningParameters:
    """Inverse of :func:`parameters_to_dict` (re-validated on build)."""
    known = {"min_genes", "min_conditions", "gamma", "epsilon", "max_clusters"}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"unknown mining parameter(s): {', '.join(sorted(unknown))}"
        )
    missing = {"min_genes", "min_conditions", "gamma", "epsilon"} - set(payload)
    if missing:
        raise ValueError(
            f"missing mining parameter(s): {', '.join(sorted(missing))}"
        )
    return MiningParameters(
        min_genes=int(payload["min_genes"]),
        min_conditions=int(payload["min_conditions"]),
        gamma=float(payload["gamma"]),
        epsilon=float(payload["epsilon"]),
        max_clusters=(
            None if payload.get("max_clusters") is None
            else int(payload["max_clusters"])
        ),
    )


def compute_job_id(matrix_digest: str, params: MiningParameters) -> str:
    """Deterministic job id from (matrix digest, parameters).

    >>> from repro.core.params import MiningParameters
    >>> p = MiningParameters(min_genes=3, min_conditions=5,
    ...                      gamma=0.15, epsilon=0.1)
    >>> compute_job_id("abc123", p) == compute_job_id("abc123", p)
    True
    >>> compute_job_id("abc123", p) == compute_job_id(
    ...     "abc123", p.with_overrides(epsilon=0.2))
    False
    >>> compute_job_id("abc123", p).startswith("job-")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(b"reg-cluster-job/v1")
    hasher.update(matrix_digest.encode("ascii"))
    hasher.update(
        json.dumps(parameters_to_dict(params), sort_keys=True).encode("ascii")
    )
    return f"job-{hasher.hexdigest()[:16]}"


@dataclass(frozen=True)
class JobRecord:
    """One job's persisted metadata (everything but the result payload)."""

    job_id: str
    state: JobState
    matrix_digest: str
    parameters: Dict[str, Any]
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: live counters: ``nodes_expanded``, ``clusters_emitted``
    progress: Dict[str, int] = field(default_factory=dict)
    #: was the RWave index served from the artifact cache? (``None``
    #: until the job reaches the index-acquisition step)
    index_cache_hit: Optional[bool] = None
    #: was the regulation kernel served from the artifact cache?
    #: (``None`` until the job reaches the kernel-acquisition step)
    kernel_cache_hit: Optional[bool] = None
    #: was the whole result served from the artifact cache?
    result_cache_hit: Optional[bool] = None
    #: wall-clock seconds per search phase (candidates / windows /
    #: emit), summed across shards; set when the job completes
    phase_timers: Optional[Dict[str, float]] = None
    #: shards lost to an exhausted retry budget (``degraded`` jobs
    #: only; the result merges the surviving shards)
    missing_shards: Optional[List[int]] = None
    #: shards answered from checkpoints of an earlier (interrupted or
    #: degraded) run instead of being re-mined
    resumed_shards: Optional[List[int]] = None
    #: failed attempts per shard (as ``{"<start>": count}``), recorded
    #: when any shard needed a retry
    shard_failures: Optional[Dict[str, int]] = None
    #: who mined each shard (``{"<start>": {"node": <node id,
    #: "local", or "checkpoint">, "attempts": total attempts}}``) —
    #: set when the job finishes with a result; fleet jobs name the
    #: worker node, local jobs say ``local``, resumed shards say
    #: ``checkpoint`` (docs/distributed.md)
    shard_provenance: Optional[Dict[str, Any]] = None
    #: scheduling class (``high`` / ``normal`` / ``low``) — weighted-
    #: fair dequeue into the executor (docs/service.md).  Excluded from
    #: the job identity: resubmitting at a different priority re-ranks
    #: the same job, it does not fork a new one.
    priority: str = "normal"
    #: the ``X-Repro-Tenant`` this job was submitted under (``None``
    #: for direct/in-process submissions) — admission accounting only,
    #: never part of the job identity
    tenant: Optional[str] = None
    #: shards stitched verbatim from the parent job of a matrix
    #: revision instead of being mined (``None`` for ordinary jobs;
    #: docs/incremental.md)
    reused_shards: Optional[List[int]] = None
    #: the parent job a revision job reused shards from (``None`` for
    #: ordinary jobs or when the parent offered nothing to reuse)
    revision_parent: Optional[str] = None
    #: how this job's kernel was obtained: ``cached`` (artifact cache),
    #: ``delta`` (incrementally updated from the parent's kernel), or
    #: ``cold`` (packed from scratch); ``None`` until acquisition
    kernel_build: Optional[str] = None
    #: the sweep batch this job was submitted under (``None`` for
    #: individually submitted jobs)
    sweep_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["state"] = self.state.value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        data = dict(payload)
        data["state"] = JobState(data["state"])
        return cls(**data)


class JobStore:
    """Crash-safe job-record storage: one JSON file per job.

    Writes go through a temp file + :func:`os.replace`, so a record on
    disk is always a complete JSON document.  All mutation happens under
    one lock, making the store safe to share between the HTTP threads
    and the execution worker.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _path(self, job_id: str) -> Path:
        if not _JOB_ID_PATTERN.match(job_id):
            raise KeyError(f"malformed job id {job_id!r}")
        return self.root / f"{job_id}.json"

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def save(self, record: JobRecord) -> JobRecord:
        """Persist (create or overwrite) one record atomically."""
        path = self._path(record.job_id)
        with self._lock:
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(record.to_dict(), sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return record

    def exists(self, job_id: str) -> bool:
        try:
            return self._path(job_id).exists()
        except KeyError:
            return False

    def get(self, job_id: str) -> JobRecord:
        """Load one record; raises :class:`KeyError` for unknown ids."""
        path = self._path(job_id)
        with self._lock:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                raise KeyError(f"unknown job {job_id!r}") from None
        return JobRecord.from_dict(payload)

    def update(self, job_id: str, **changes: Any) -> JobRecord:
        """Read-modify-write one record under the store lock."""
        with self._lock:
            record = replace(self.get(job_id), **changes)
            return self.save(record)

    def delete(self, job_id: str) -> None:
        """Remove one record; raises :class:`KeyError` for unknown ids."""
        path = self._path(job_id)
        with self._lock:
            try:
                path.unlink()
            except FileNotFoundError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def list_records(self) -> List[JobRecord]:
        """Every stored record, oldest submission first."""
        with self._lock:
            records = [
                JobRecord.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
                for path in sorted(self.root.glob("job-*.json"))
            ]
        records.sort(key=lambda r: (r.submitted_at, r.job_id))
        return records

    # ------------------------------------------------------------------
    # Shard checkpoints
    # ------------------------------------------------------------------
    #
    # One JSON file per completed shard, written atomically the moment
    # the shard finishes — never read-modify-write, so a daemon killed
    # mid-checkpoint loses at most the shard being written.  A corrupt
    # or half-written file is simply skipped on load (the shard is
    # re-mined), keeping resume strictly safe.

    def _shards_dir(self, job_id: str) -> Path:
        if not _JOB_ID_PATTERN.match(job_id):
            raise KeyError(f"malformed job id {job_id!r}")
        return self.root / f"{job_id}.shards"

    def save_shard(self, job_id: str, shard: StoredShard) -> None:
        """Checkpoint one completed shard of a running job."""
        start, clusters, stats = shard
        directory = self._shards_dir(job_id)
        payload = {
            "start": int(start),
            "clusters": [
                {
                    "chain": list(cluster.chain),
                    "p_members": list(cluster.p_members),
                    "n_members": list(cluster.n_members),
                }
                for cluster in clusters
            ],
            "stats": {key: value for key, value in stats.items()},
        }
        with self._lock:
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"shard-{int(start):04d}.json"
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)

    def load_shards(self, job_id: str) -> Dict[int, StoredShard]:
        """Every readable shard checkpoint of a job, keyed by start.

        Unreadable or malformed checkpoint files are skipped — resuming
        re-mines those shards instead of trusting torn writes.
        """
        directory = self._shards_dir(job_id)
        shards: Dict[int, StoredShard] = {}
        with self._lock:
            paths = sorted(directory.glob("shard-*.json"))
            for path in paths:
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    start = int(payload["start"])
                    clusters = [
                        RegCluster(
                            chain=tuple(entry["chain"]),
                            p_members=tuple(entry["p_members"]),
                            n_members=tuple(entry["n_members"]),
                        )
                        for entry in payload["clusters"]
                    ]
                    stats = {
                        str(key): float(value)
                        for key, value in payload["stats"].items()
                    }
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError, OSError):
                    continue
                shards[start] = (start, clusters, stats)
        return shards

    def clear_shards(self, job_id: str) -> None:
        """Drop every shard checkpoint of a job (no-op when absent)."""
        directory = self._shards_dir(job_id)
        with self._lock:
            if not directory.is_dir():
                return
            for path in directory.glob("shard-*.json*"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            try:
                directory.rmdir()
            except OSError:
                pass
