"""The mining daemon: jobs + cache + sharded executor, wired together.

:class:`MiningService` is the long-lived object behind the HTTP front
end and the ``reg-cluster serve`` CLI.  It owns

* a :class:`~repro.service.jobs.JobStore` (persistent job records),
* an :class:`~repro.service.cache.ArtifactCache` (RWave indexes and
  completed results),
* a content-addressed matrix store (exact ``.npz`` round-trip, so the
  digest of a reloaded matrix is bit-identical to the submitted one),
* one background execution thread draining a FIFO of submitted jobs
  through :func:`~repro.service.executor.mine_sharded`.

Submission is idempotent: a job's id is a function of (matrix digest,
parameters), so resubmitting identical work returns the existing record
— and a completed job is answered straight from the result cache
without touching the index or the search.  Cancellation is cooperative:
``DELETE``-ing a running job flips a :class:`threading.Event` that the
miner's ``should_stop`` hook polls once per search node.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.miner import MiningCancelled
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.core.serialize import result_to_dict
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.summary import matrix_digest
from repro.service.cache import DEFAULT_MAX_BYTES, ArtifactCache
from repro.service.executor import mine_sharded
from repro.service.jobs import (
    ACTIVE_STATES,
    JobRecord,
    JobState,
    JobStore,
    compute_job_id,
    parameters_from_dict,
    parameters_to_dict,
)

__all__ = ["MiningService"]

#: Persist live progress counters every this-many search nodes (keeps
#: the on-disk record fresh without one fsync per node).
_PROGRESS_PERSIST_EVERY = 2048


class MiningService:
    """Job-oriented mining daemon (see module docstring).

    Parameters
    ----------
    store_dir:
        Root directory for job records, the matrix store and the
        artifact cache.  Created if absent; a service restarted on the
        same directory sees all previous jobs and cached artifacts.
    n_workers:
        Worker processes per job (see
        :func:`~repro.service.executor.mine_sharded`).  Results are
        identical for every value.
    max_cache_bytes:
        Artifact-cache size bound.
    progress_observer:
        Optional hook ``(job_id, event, nodes_expanded)`` invoked on
        every progress event of every job — used by tests and by
        verbose serving.
    """

    def __init__(
        self,
        store_dir: Union[str, Path],
        *,
        n_workers: int = 1,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        start_method: Optional[str] = None,
        progress_observer: Optional[Callable[[str, str, int], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.n_workers = n_workers
        self.start_method = start_method
        self.progress_observer = progress_observer
        self.jobs = JobStore(self.store_dir / "jobs")
        self.cache = ArtifactCache(
            self.store_dir / "cache", max_bytes=max_cache_bytes
        )
        self._matrix_dir = self.store_dir / "matrices"
        self._matrix_dir.mkdir(parents=True, exist_ok=True)
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._cancel_events: Dict[str, threading.Event] = {}
        self._lock = threading.RLock()
        self._thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        # Re-enqueue jobs that were submitted (or interrupted while
        # queued) before a restart, in original submission order.
        for record in self.jobs.list_records():
            if record.state is JobState.SUBMITTED:
                self._queue.put(record.job_id)

    # ------------------------------------------------------------------
    # Matrix store (content-addressed, exact round-trip)
    # ------------------------------------------------------------------

    def _matrix_path(self, digest: str) -> Path:
        return self._matrix_dir / f"{digest}.npz"

    def _save_matrix(self, matrix: ExpressionMatrix, digest: str) -> None:
        path = self._matrix_path(digest)
        if path.exists():
            return
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            np.savez(
                handle,
                values=matrix.values,
                gene_names=np.asarray(matrix.gene_names),
                condition_names=np.asarray(matrix.condition_names),
            )
        tmp.replace(path)

    def _load_matrix(self, digest: str) -> ExpressionMatrix:
        path = self._matrix_path(digest)
        if not path.exists():
            raise KeyError(f"no stored matrix with digest {digest}")
        with np.load(path, allow_pickle=False) as data:
            matrix = ExpressionMatrix(
                data["values"],
                [str(name) for name in data["gene_names"]],
                [str(name) for name in data["condition_names"]],
            )
        return matrix

    # ------------------------------------------------------------------
    # Public API: submit / status / result / cancel / delete
    # ------------------------------------------------------------------

    def submit(
        self, matrix: ExpressionMatrix, params: MiningParameters
    ) -> JobRecord:
        """Accept one mining job; idempotent on (matrix, parameters).

        Returns the (new or existing) job record.  A job that
        previously failed or was cancelled is re-armed and queued again.
        """
        digest = matrix_digest(matrix)
        job_id = compute_job_id(digest, params)
        with self._lock:
            if self.jobs.exists(job_id):
                record = self.jobs.get(job_id)
                if record.state in ACTIVE_STATES or (
                    record.state is JobState.DONE
                ):
                    return record
            # New submission (or re-arm after failed/cancelled).
            self._save_matrix(matrix, digest)
            record = JobRecord(
                job_id=job_id,
                state=JobState.SUBMITTED,
                matrix_digest=digest,
                parameters=parameters_to_dict(params),
                submitted_at=time.time(),
            )
            self.jobs.save(record)
            self._queue.put(job_id)
        return record

    def status(self, job_id: str) -> JobRecord:
        """The current record of one job (KeyError if unknown)."""
        return self.jobs.get(job_id)

    def list_jobs(self) -> List[JobRecord]:
        """All job records, oldest first."""
        return self.jobs.list_records()

    def result(self, job_id: str) -> Dict[str, Any]:
        """The ``reg-cluster/v1`` payload of a completed job.

        Raises :class:`KeyError` for unknown jobs and
        :class:`ValueError` for jobs that are not ``done``.
        """
        record = self.jobs.get(job_id)
        if record.state is not JobState.DONE:
            raise ValueError(
                f"job {job_id} is {record.state.value}, not done"
            )
        payload = self.cache.get_result(job_id)
        if payload is None:
            raise ValueError(
                f"result of job {job_id} is no longer cached; resubmit"
            )
        return payload

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a submitted or running job (no-op on terminal jobs)."""
        with self._lock:
            record = self.jobs.get(job_id)
            if record.state is JobState.SUBMITTED:
                return self.jobs.update(
                    job_id,
                    state=JobState.CANCELLED,
                    finished_at=time.time(),
                )
            if record.state is JobState.RUNNING:
                event = self._cancel_events.get(job_id)
                if event is not None:
                    event.set()
            return record

    def delete(self, job_id: str) -> None:
        """Remove a terminal job's record and cached result.

        Raises :class:`ValueError` when the job is still active (cancel
        it first) and :class:`KeyError` when unknown.
        """
        with self._lock:
            record = self.jobs.get(job_id)
            if record.state in ACTIVE_STATES:
                raise ValueError(
                    f"job {job_id} is {record.state.value}; cancel before "
                    f"deleting"
                )
            self.cache.drop_result(job_id)
            self.jobs.delete(job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background execution thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop_requested.clear()
            self._thread = threading.Thread(
                target=self._run_loop,
                name="reg-cluster-executor",
                daemon=True,
            )
            self._thread.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the execution thread; a running job is cancelled."""
        with self._lock:
            thread = self._thread
            self._stop_requested.set()
            for event in self._cancel_events.values():
                event.set()
            self._queue.put(None)
        if thread is not None:
            thread.join(timeout=timeout)
        with self._lock:
            self._thread = None

    def run_pending(self) -> int:
        """Synchronously drain the queue (no thread); returns jobs run.

        Used by tests and one-shot tooling; do not mix with a running
        background thread.
        """
        executed = 0
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return executed
            if job_id is None:
                continue
            if self._execute(job_id):
                executed += 1

    def _run_loop(self) -> None:
        while not self._stop_requested.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                continue
            self._execute(job_id)

    def _execute(self, job_id: str) -> bool:
        """Run one queued job; ``False`` when it was skipped (e.g. a job
        cancelled while still queued)."""
        record = self.jobs.get(job_id)
        if record.state is not JobState.SUBMITTED:
            return False  # cancelled (or re-run) while queued
        cancel_event = threading.Event()
        with self._lock:
            self._cancel_events[job_id] = cancel_event
            if self._stop_requested.is_set():
                cancel_event.set()
        self.jobs.update(
            job_id, state=JobState.RUNNING, started_at=time.time()
        )
        try:
            self._mine_job(job_id, record, cancel_event)
        except MiningCancelled:
            self.jobs.update(
                job_id,
                state=JobState.CANCELLED,
                finished_at=time.time(),
            )
        except (ValueError, KeyError, OSError, RuntimeError) as error:
            self.jobs.update(
                job_id,
                state=JobState.FAILED,
                error=f"{type(error).__name__}: {error}",
                finished_at=time.time(),
            )
        finally:
            with self._lock:
                self._cancel_events.pop(job_id, None)
        return True

    def _mine_job(
        self,
        job_id: str,
        record: JobRecord,
        cancel_event: threading.Event,
    ) -> None:
        # 1. Completed-result memoization: identical resubmission after a
        #    failed/cancelled re-arm, or a deleted record with a live
        #    cached result, finishes without touching matrix or index.
        cached = self.cache.get_result(job_id)
        if cached is not None:
            statistics = cached.get("statistics", {})
            self.jobs.update(
                job_id,
                state=JobState.DONE,
                finished_at=time.time(),
                result_cache_hit=True,
                progress={
                    "nodes_expanded": int(
                        statistics.get("nodes_expanded", 0)
                    ),
                    "clusters_emitted": len(cached.get("clusters", [])),
                },
            )
            return

        matrix = self._load_matrix(record.matrix_digest)
        params = parameters_from_dict(record.parameters)

        # 2. RWave^gamma index: cache hit or build-and-store.
        index = self.cache.get_index(record.matrix_digest, params.gamma)
        index_cache_hit = index is not None
        if index is None:
            index = RWaveIndex(matrix, params.gamma)
            self.cache.put_index(record.matrix_digest, params.gamma, index)

        # 2b. Regulation kernel: determined by the same (digest, gamma)
        #     key as the index.  On a hit the kernel is attached so the
        #     miner skips the packbits build; on a miss the miner builds
        #     it lazily and it is stored after the search.
        kernel = self.cache.get_kernel(record.matrix_digest, params.gamma)
        kernel_cache_hit = kernel is not None
        if kernel is not None:
            index.attach_kernel(kernel)
        self.jobs.update(
            job_id,
            index_cache_hit=index_cache_hit,
            kernel_cache_hit=kernel_cache_hit,
            result_cache_hit=False,
        )

        # 3. The sharded search, with live progress and cancellation.
        progress = {"nodes_expanded": 0, "clusters_emitted": 0}

        def on_progress(event: str, nodes_expanded: int) -> None:
            progress["nodes_expanded"] = nodes_expanded
            if event == "emitted":
                progress["clusters_emitted"] += 1
            if self.progress_observer is not None:
                self.progress_observer(job_id, event, nodes_expanded)
            if nodes_expanded % _PROGRESS_PERSIST_EVERY == 0:
                self.jobs.update(job_id, progress=dict(progress))

        try:
            result = mine_sharded(
                matrix,
                params,
                n_workers=self.n_workers,
                index=index,
                progress_callback=on_progress,
                should_stop=cancel_event.is_set,
                start_method=self.start_method,
            )
        except MiningCancelled:
            # Keep the last observed counters on the cancelled record.
            self.jobs.update(job_id, progress=dict(progress))
            raise

        # 4. Persist the result (serialize v1, names included) and close.
        #    A kernel the in-process miner built lazily is memoized for
        #    the next job on the same (matrix, gamma); worker pools build
        #    kernels in child processes, so there is nothing to store.
        if not kernel_cache_hit and index.has_kernel:
            self.cache.put_kernel(
                record.matrix_digest, params.gamma, index.kernel
            )
        payload = result_to_dict(result, matrix)
        self.cache.put_result(job_id, payload)
        progress["nodes_expanded"] = result.statistics.nodes_expanded
        progress["clusters_emitted"] = result.statistics.clusters_emitted
        self.jobs.update(
            job_id,
            state=JobState.DONE,
            finished_at=time.time(),
            progress=dict(progress),
            phase_timers=result.statistics.timers.as_dict(),
        )
