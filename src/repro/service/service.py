"""The mining daemon: jobs + cache + sharded executor, wired together.

:class:`MiningService` is the long-lived object behind the HTTP front
end and the ``reg-cluster serve`` CLI.  It owns

* a :class:`~repro.service.jobs.JobStore` (persistent job records),
* an :class:`~repro.service.cache.ArtifactCache` (RWave indexes and
  completed results),
* a content-addressed matrix store (exact ``.npz`` round-trip, so the
  digest of a reloaded matrix is bit-identical to the submitted one),
* one background execution thread draining a FIFO of submitted jobs
  through :func:`~repro.service.executor.mine_sharded`.

Submission is idempotent: a job's id is a function of (matrix digest,
parameters), so resubmitting identical work returns the existing record
— and a completed job is answered straight from the result cache
without touching the index or the search.  Cancellation is cooperative:
``DELETE``-ing a running job flips a :class:`threading.Event` that the
miner's ``should_stop`` hook polls once per search node.

Crash safety and degradation (``docs/robustness.md``)
-----------------------------------------------------
Execution runs through :func:`~repro.service.executor
.mine_sharded_outcome`, which layers recovery over the sharded search:

* every completed shard is **checkpointed** into the
  :class:`~repro.service.jobs.JobStore` the moment it finishes, and a
  daemon restarted over the same store re-queues jobs found ``running``
  (killed mid-flight) — the resumed run merges checkpointed shards
  without re-mining them, bit-identical to an uninterrupted run;
* shard failures are **retried** under the service's
  :class:`~repro.service.resilience.RetryPolicy`; a shard that
  exhausts the budget does not sink the job — it finishes
  ``degraded``, carrying the merged clusters of the surviving shards
  and an explicit ``missing_shards`` list (resubmitting a degraded job
  resumes its surviving shards and re-mines only the missing ones);
* an optional **per-job wall-clock timeout** cooperatively cancels
  runaway searches (the job fails with a timeout error; its
  checkpoints survive, so a resubmission picks up where it stopped);
* artifact-cache writes are **best-effort**: a failed write (e.g. disk
  full) never fails a job — a result that could not be cached is served
  from an in-process fallback until the daemon exits.

Chaos testing drives all of the above deterministically through a
seeded :class:`~repro.service.resilience.FaultPlan`, activated per
service (the ``fault_plan`` argument) or via the ``REPRO_FAULTS``
environment variable.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.cluster import RegCluster
from repro.core.miner import MiningCancelled, MiningTimeout
from repro.core.params import MiningParameters
from repro.core.rwave import RWaveIndex
from repro.core.serialize import cluster_from_dict, cluster_to_dict, result_to_dict
from repro.incremental.delta import (
    MatrixDelta,
    MatrixRevision,
    apply_delta,
    delta_to_dict,
)
from repro.incremental.lineage import RevisionStore
from repro.incremental.planner import DirtyShardPlanner
from repro.incremental.sweep import (
    SweepBatch,
    SweepPoint,
    SweepStore,
    compute_sweep_id,
    expand_grid,
)
from repro.incremental.update import update_index, update_kernel
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.summary import matrix_digest
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, render_family
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.service.cache import DEFAULT_MAX_BYTES, ArtifactCache
from repro.service.executor import (
    ShardResult,
    make_local_shard_miner,
    mine_sharded_outcome,
)
from repro.service.fleet import DEFAULT_LEASE_TTL, FleetState
from repro.service.jobs import (
    ACTIVE_STATES,
    RESULT_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobState,
    JobStore,
    StoredShard,
    compute_job_id,
    parameters_from_dict,
    parameters_to_dict,
)
from repro.service.resilience import FaultKind, FaultPlan, RetryPolicy
from repro.service.scheduling import FairJobQueue, normalize_priority

__all__ = ["MiningService", "MAX_LONGPOLL_SECONDS"]

#: Server-side cap on one long-poll wait (``GET /jobs/<id>?wait=``) —
#: a front-door worker parks for at most this long before answering
#: with the current record (clients simply poll again).
MAX_LONGPOLL_SECONDS = 30.0

_LOG = get_logger("repro.service.daemon")

#: Persist live progress counters every this-many search nodes (keeps
#: the on-disk record fresh without one fsync per node).
_PROGRESS_PERSIST_EVERY = 2048


class MiningService:
    """Job-oriented mining daemon (see module docstring).

    Parameters
    ----------
    store_dir:
        Root directory for job records, the matrix store and the
        artifact cache.  Created if absent; a service restarted on the
        same directory sees all previous jobs and cached artifacts.
    n_workers:
        Worker processes per job (see
        :func:`~repro.service.executor.mine_sharded`).  Results are
        identical for every value.
    max_cache_bytes:
        Artifact-cache size bound.
    job_timeout:
        Per-job wall-clock budget in seconds; ``None`` (default)
        disables timeouts.  A timed-out job fails with a timeout error
        but keeps its shard checkpoints, so resubmitting resumes it.
    retry:
        Per-shard :class:`~repro.service.resilience.RetryPolicy`;
        defaults to the service default (two retries with exponential
        backoff + jitter).  ``RetryPolicy(max_retries=0)`` disables
        retries.
    fault_plan:
        Chaos-testing :class:`~repro.service.resilience.FaultPlan`;
        defaults to the plan named by ``REPRO_FAULTS`` (usually unset —
        no plan, zero overhead).  Shared with the artifact cache so
        injected cache-write failures are coordinated.
    progress_observer:
        Optional hook ``(job_id, event, nodes_expanded)`` invoked on
        every progress event of every job — used by tests and by
        verbose serving.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` to publish
        into; a private registry is created when omitted.  The HTTP
        layer renders it at ``GET /metrics``
        (``docs/observability.md``).
    trace_dir:
        When set, every executed job writes a stitched span trace to
        ``<trace_dir>/<job_id>.trace.jsonl`` (re-running a job
        replaces its file).  ``None`` (default) disables tracing at
        null-tracer cost.
    fleet:
        Enable the distributed work queue: jobs are driven through
        :class:`~repro.service.fleet.FleetState` and worker nodes
        (``reg-cluster node``) can lease shards over the
        ``/fleet/...`` endpoints (``docs/distributed.md``).  Off by
        default — a non-fleet daemon mines exactly as before.
    lease_ttl:
        Fleet shard-lease time-to-live in seconds; an un-heartbeated
        lease past its TTL is reclaimed and its shards re-queued.
    fleet_local:
        When fleet mode is on, also mine unleased shards on the
        coordinator itself (default).  Turning this off leaves all
        mining to the nodes — useful for tests and dedicated
        coordinators, but a node-less fleet then only finishes jobs
        via the per-job timeout.
    """

    def __init__(
        self,
        store_dir: Union[str, Path],
        *,
        n_workers: int = 1,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        start_method: Optional[str] = None,
        job_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        progress_observer: Optional[Callable[[str, str, int], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_dir: Optional[Union[str, Path]] = None,
        fleet: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        fleet_local: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if job_timeout is not None and job_timeout <= 0.0:
            raise ValueError(
                f"job_timeout must be positive, got {job_timeout}"
            )
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.n_workers = n_workers
        self.start_method = start_method
        self.job_timeout = job_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self.progress_observer = progress_observer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_dir = None if trace_dir is None else Path(trace_dir)
        self._started_monotonic = time.monotonic()
        self._register_metrics()
        self.jobs = JobStore(self.store_dir / "jobs")
        self.cache = ArtifactCache(
            self.store_dir / "cache",
            max_bytes=max_cache_bytes,
            fault_plan=self.fault_plan,
            fault_observer=self._observe_fault,
        )
        self.metrics.register_collector(self._collect_cache_metrics)
        #: the distributed work queue, or ``None`` on a non-fleet daemon
        #: (docs/distributed.md)
        self.fleet: Optional[FleetState] = None
        if fleet:
            self.fleet = FleetState(
                lease_ttl=lease_ttl,
                retry=self.retry,
                local_mining=fleet_local,
            )
            self.metrics.register_collector(self._collect_fleet_metrics)
        self._matrix_dir = self.store_dir / "matrices"
        self._matrix_dir.mkdir(parents=True, exist_ok=True)
        #: matrix lineage: one revision record per evolved matrix, so
        #: any job on a child digest becomes delta-aware
        #: (docs/incremental.md)
        self.revisions = RevisionStore(self.store_dir / "revisions")
        #: submitted parameter-sweep batches (grid -> ordinary job ids)
        self.sweeps = SweepStore(self.store_dir / "sweeps")
        #: maps a delta to the shards it can influence; stateless, one
        #: shared instance
        self.planner = DirtyShardPlanner()
        #: weighted-fair submission queue: high/normal/low classes
        #: share the executor 4:2:1 under contention (docs/service.md)
        self._queue = FairJobQueue()
        #: notified on every job state change — the seam long-poll
        #: status requests (``GET /jobs/<id>?wait=``) block on
        self._state_cond = threading.Condition()
        self._cancel_events: Dict[str, threading.Event] = {}
        #: results whose cache write failed, served from memory instead
        #: of failing the job (best-effort cache, docs/robustness.md).
        self._result_fallback: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        # Crash recovery: re-enqueue jobs that were submitted (or
        # interrupted while queued) before a restart, in original
        # submission order — and re-arm jobs a killed daemon left
        # ``running``; their shard checkpoints make the re-run resume
        # instead of re-mining.
        for record in self.jobs.list_records():
            if record.state is JobState.SUBMITTED:
                self._queue.put(record.job_id, priority=record.priority)
            elif record.state is JobState.RUNNING:
                self.jobs.update(record.job_id, state=JobState.SUBMITTED)
                self._queue.put(record.job_id, priority=record.priority)
                _LOG.info("job.rearmed", job_id=record.job_id)
        for record in self.jobs.list_records():
            self._m_jobs_current.labels(state=record.state.value).inc()

    # ------------------------------------------------------------------
    # Observability (docs/observability.md)
    # ------------------------------------------------------------------

    def _register_metrics(self) -> None:
        registry = self.metrics
        self._m_submitted = registry.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted by submit(), including idempotent re-arms.",
        )
        self._m_jobs_total = registry.counter(
            "repro_jobs_total",
            "Jobs that reached a terminal state, by state.",
            labelnames=("state",),
        )
        self._m_jobs_current = registry.gauge(
            "repro_jobs_current",
            "Jobs currently in each lifecycle state.",
            labelnames=("state",),
        )
        self._m_job_seconds = registry.histogram(
            "repro_job_seconds",
            "Wall-clock seconds from job start to terminal state.",
        )
        self._m_timeouts = registry.counter(
            "repro_job_timeouts_total",
            "Jobs failed by the per-job wall-clock budget.",
        )
        self._m_nodes = registry.counter(
            "repro_mining_nodes_expanded_total",
            "Search nodes expanded across all jobs.",
        )
        self._m_clusters = registry.counter(
            "repro_mining_clusters_emitted_total",
            "Reg-clusters emitted across all jobs.",
        )
        self._m_retries = registry.counter(
            "repro_shard_retries_total",
            "Shard attempts that failed and were retried.",
        )
        self._m_lost = registry.counter(
            "repro_shards_lost_total",
            "Shards that exhausted their retry budget (degradation).",
        )
        self._m_resumed = registry.counter(
            "repro_shards_resumed_total",
            "Shards answered from checkpoints instead of re-mining.",
        )
        self._m_faults = registry.counter(
            "repro_faults_injected_total",
            "Chaos faults that actually fired, by kind.",
            labelnames=("kind",),
        )
        self._m_inc_revisions = registry.counter(
            "repro_incremental_revisions_total",
            "Matrix revisions accepted, by delta kind.",
            labelnames=("delta",),
        )
        self._m_inc_shards = registry.counter(
            "repro_incremental_shards_total",
            "Revision-job shards by source: stitched from the parent "
            "job (reused) or re-mined (mined).",
            labelnames=("source",),
        )
        self._m_inc_kernel_builds = registry.counter(
            "repro_incremental_kernel_builds_total",
            "Kernel acquisitions by mode: artifact-cache hit (cached), "
            "delta-updated from the parent matrix's kernel (delta), or "
            "packed from scratch (cold).",
            labelnames=("mode",),
        )
        self._m_inc_sweeps = registry.counter(
            "repro_incremental_sweeps_total",
            "Parameter-sweep batches accepted.",
        )
        self._m_inc_sweep_points = registry.counter(
            "repro_incremental_sweep_points_total",
            "Grid points submitted across all sweep batches.",
        )

    def _collect_cache_metrics(self) -> str:
        stats = self.cache.stats
        samples = []
        for artifact in ("index", "kernel", "result"):
            for event in ("hit", "miss", "store"):
                samples.append((
                    {"artifact": artifact, "event": event},
                    float(getattr(stats, f"{artifact}_{event}s"
                                  if event != "miss"
                                  else f"{artifact}_misses")),
                ))
        text = render_family(
            "repro_cache_events_total", "counter",
            "Artifact-cache lookups and stores, by artifact and event.",
            samples,
        )
        text += render_family(
            "repro_cache_evictions_total", "counter",
            "Artifact-cache LRU evictions.",
            [({}, float(stats.evictions))],
        )
        text += render_family(
            "repro_cache_bytes", "gauge",
            "Bytes currently held by the artifact cache.",
            [({}, float(self.cache.total_bytes()))],
        )
        return text

    def _collect_fleet_metrics(self) -> str:
        """The ``repro_fleet_*`` families (docs/distributed.md)."""
        assert self.fleet is not None
        snap = self.fleet.metrics_snapshot()
        text = render_family(
            "repro_fleet_queue_depth", "gauge",
            "Shards waiting to be leased, across all active jobs.",
            [({}, float(snap["queue_depth"]))],
        )
        text += render_family(
            "repro_fleet_nodes_active", "gauge",
            "Worker nodes heard from within the last lease TTL.",
            [({}, float(snap["nodes_active"]))],
        )
        text += render_family(
            "repro_fleet_leases_granted_total", "counter",
            "Shard leases granted to worker nodes.",
            [({}, float(snap["leases_granted"]))],
        )
        text += render_family(
            "repro_fleet_leases_expired_total", "counter",
            "Leases that outlived their TTL without a heartbeat.",
            [({}, float(snap["leases_expired"]))],
        )
        text += render_family(
            "repro_fleet_leases_reclaimed_total", "counter",
            "Shards reclaimed from expired leases and re-queued.",
            [({}, float(snap["shards_reclaimed"]))],
        )
        text += render_family(
            "repro_fleet_affinity_total", "counter",
            "Lease grants by kernel-affinity outcome.",
            [
                ({"outcome": "hit"}, float(snap["affinity_hits"])),
                ({"outcome": "miss"}, float(snap["affinity_misses"])),
            ],
        )
        text += render_family(
            "repro_fleet_shards_completed_total", "counter",
            "Shards completed through the fleet queue, by source.",
            [
                ({"source": source}, float(count))
                for source, count in sorted(
                    snap["shards_completed"].items()
                )
            ],
        )
        text += render_family(
            "repro_fleet_completions_rejected_total", "counter",
            "Late or duplicate completions rejected idempotently.",
            [
                ({"reason": reason}, float(count))
                for reason, count in sorted(
                    snap["completions_rejected"].items()
                )
            ],
        )
        text += render_family(
            "repro_fleet_heartbeats_total", "counter",
            "Node heartbeats received.",
            [({}, float(snap["heartbeats"]))],
        )
        return text

    def _observe_fault(self, kind: FaultKind) -> None:
        self._m_faults.labels(kind=kind.value).inc()
        _LOG.warning("fault.injected", kind=kind.value)

    def _transition(
        self, job_id: str, state: JobState, **changes: Any
    ) -> JobRecord:
        """State-changing :meth:`JobStore.update` with gauge/counter/log
        maintenance — the single seam every lifecycle change goes
        through."""
        previous = self.jobs.get(job_id).state
        record = self.jobs.update(job_id, state=state, **changes)
        if previous is not state:
            self._m_jobs_current.labels(state=previous.value).dec()
            self._m_jobs_current.labels(state=state.value).inc()
        if state in TERMINAL_STATES:
            self._m_jobs_total.labels(state=state.value).inc()
            if record.started_at is not None and record.finished_at is not None:
                self._m_job_seconds.observe(
                    max(0.0, record.finished_at - record.started_at)
                )
        _LOG.info(
            "job.state",
            job_id=job_id,
            state=state.value,
            previous=previous.value,
            **({"error": record.error} if record.error else {}),
        )
        # Wake every parked long-poll: the record just changed.
        with self._state_cond:
            self._state_cond.notify_all()
        return record

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` liveness payload."""
        with self._lock:
            thread = self._thread
            executor_alive = thread is not None and thread.is_alive()
        jobs = {
            state.value: int(
                self._m_jobs_current.labels(state=state.value).value
            )
            for state in JobState
        }
        payload = {
            "status": "ok",
            "uptime_seconds": round(
                time.monotonic() - self._started_monotonic, 3
            ),
            "n_workers": self.n_workers,
            "executor_alive": executor_alive,
            "queue_size": self._queue.qsize(),
            "queue_depths": self._queue.depths(),
            "jobs": jobs,
        }
        if self.fleet is not None:
            payload["fleet"] = self.fleet.snapshot()
        return payload

    # ------------------------------------------------------------------
    # Matrix store (content-addressed, exact round-trip)
    # ------------------------------------------------------------------

    def _matrix_path(self, digest: str) -> Path:
        return self._matrix_dir / f"{digest}.npz"

    def _save_matrix(self, matrix: ExpressionMatrix, digest: str) -> None:
        path = self._matrix_path(digest)
        if path.exists():
            return
        # Runs outside the service lock (see submit), so identical
        # submissions can race here.  The tmp name must be per-writer:
        # with a shared name, the loser's replace() finds its tmp file
        # already renamed away.  Racing writers produce byte-identical
        # content (the path is content-addressed), so whichever
        # replace() lands last is equally correct.
        tmp = path.with_suffix(f".npz.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    values=matrix.values,
                    gene_names=np.asarray(matrix.gene_names),
                    condition_names=np.asarray(matrix.condition_names),
                )
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)

    def _load_matrix(self, digest: str) -> ExpressionMatrix:
        path = self._matrix_path(digest)
        if not path.exists():
            raise KeyError(f"no stored matrix with digest {digest}")
        with np.load(path, allow_pickle=False) as data:
            matrix = ExpressionMatrix(
                data["values"],
                [str(name) for name in data["gene_names"]],
                [str(name) for name in data["condition_names"]],
            )
        return matrix

    # ------------------------------------------------------------------
    # Fleet artifact exchange (content-addressed; docs/distributed.md)
    # ------------------------------------------------------------------

    def matrix_artifact_bytes(self, digest: str) -> Optional[bytes]:
        """The stored ``.npz`` bytes for a matrix digest, or ``None``.

        Served verbatim over ``GET /artifacts/matrix/<digest>`` — the
        node re-hashes the reloaded matrix, so a corrupted transfer is
        rejected there, not silently mined.
        """
        path = self._matrix_path(digest)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def kernel_artifact_bytes(
        self, digest: str, gamma: float
    ) -> Optional[bytes]:
        """The cached pickled kernel for (digest, gamma), or ``None``."""
        return self.cache.get_kernel_bytes(digest, gamma)

    # ------------------------------------------------------------------
    # Public API: submit / status / result / cancel / delete
    # ------------------------------------------------------------------

    def submit(
        self,
        matrix: ExpressionMatrix,
        params: MiningParameters,
        *,
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> JobRecord:
        """Accept one mining job; idempotent on (matrix, parameters).

        Returns the (new or existing) job record.  A job that
        previously failed or was cancelled is re-armed and queued again.
        ``priority`` picks the scheduling class (``high`` / ``normal``
        / ``low``; weighted-fair dequeue, docs/service.md) and
        ``tenant`` tags the record with the submitting tenant — neither
        is part of the job identity.
        """
        chosen_priority = normalize_priority(priority)
        digest = matrix_digest(matrix)
        job_id = compute_job_id(digest, params)
        # Persist the matrix before taking the service lock: the .npz
        # write is the slowest part of a submission, and holding the
        # lock across it stalls every handler thread (status, health)
        # behind disk I/O (reglint RL303).  The store is
        # content-addressed and atomic, so writing outside the critical
        # section is idempotent even when submissions race.
        self._save_matrix(matrix, digest)
        with self._lock:
            previous: Optional[JobState] = None
            if self.jobs.exists(job_id):
                record = self.jobs.get(job_id)
                if record.state in ACTIVE_STATES or (
                    record.state is JobState.DONE
                ):
                    return record
                previous = record.state
            # New submission (or re-arm after failed/cancelled).
            record = JobRecord(
                job_id=job_id,
                state=JobState.SUBMITTED,
                matrix_digest=digest,
                parameters=parameters_to_dict(params),
                submitted_at=time.time(),
                priority=chosen_priority,
                tenant=tenant,
            )
            self.jobs.save(record)
            self._queue.put(job_id, priority=chosen_priority)
            self._m_submitted.inc()
            if previous is not None:
                self._m_jobs_current.labels(state=previous.value).dec()
            self._m_jobs_current.labels(state=JobState.SUBMITTED.value).inc()
            _LOG.info(
                "job.submitted",
                job_id=job_id,
                matrix_digest=digest,
                rearmed=previous.value if previous is not None else None,
            )
        # A (re-)submission is a state change too: wake long-polls.
        with self._state_cond:
            self._state_cond.notify_all()
        return record

    def submit_revision(
        self,
        parent_digest: str,
        delta: MatrixDelta,
        params: MiningParameters,
        *,
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> "tuple[MatrixRevision, JobRecord]":
        """Evolve a stored matrix by one delta and mine the child.

        The child matrix is derived by applying ``delta`` to the stored
        parent, persisted content-addressed, and the lineage edge is
        recorded — then the child is submitted as an ordinary job.  The
        executor consults the lineage store when it picks the job up,
        so the job delta-updates the parent's index/kernel artifacts
        and stitches clean shards from the parent's result instead of
        re-mining them (docs/incremental.md).

        Raises :class:`KeyError` when ``parent_digest`` is not stored
        and :class:`ValueError` when the delta does not fit the parent.
        """
        parent_matrix = self._load_matrix(parent_digest)
        child_matrix = apply_delta(parent_matrix, delta)
        child_digest = matrix_digest(child_matrix)
        revision = MatrixRevision(
            parent_digest=parent_digest,
            child_digest=child_digest,
            delta=delta_to_dict(delta),
            created_at=time.time(),
        )
        self.revisions.save(revision)
        self._m_inc_revisions.labels(delta=delta.kind).inc()
        _LOG.info(
            "revision.accepted",
            parent_digest=parent_digest,
            child_digest=child_digest,
            delta=delta.kind,
        )
        record = self.submit(
            child_matrix, params, priority=priority, tenant=tenant
        )
        return revision, record

    def submit_sweep(
        self,
        matrix: ExpressionMatrix,
        base_params: MiningParameters,
        gammas: List[float],
        epsilons: List[float],
        *,
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> SweepBatch:
        """Submit a gamma/epsilon grid over one matrix as a batch.

        Every grid point becomes an ordinary job (idempotent ids, fair
        queueing, caching — nothing sweep-specific downstream).  Points
        are enqueued gamma-major, so each distinct ``(matrix, gamma)``
        kernel is packed exactly once and every later point of that
        gamma is served from the artifact cache — asserted via the
        ``repro_incremental_kernel_builds_total`` metric family.
        """
        grid = expand_grid(gammas, epsilons)
        digest = matrix_digest(matrix)
        base = parameters_to_dict(base_params)
        sweep_id = compute_sweep_id(digest, base, gammas, epsilons)
        points = []
        for gamma, epsilon in grid:  # reglint: disable=RL106
            point_params = base_params.with_overrides(
                gamma=gamma, epsilon=epsilon
            )
            record = self.submit(
                matrix, point_params, priority=priority, tenant=tenant
            )
            # Tag the job with its (latest) batch — outside the job
            # identity, like priority/tenant.
            self.jobs.update(record.job_id, sweep_id=sweep_id)
            points.append(
                SweepPoint(
                    gamma=gamma, epsilon=epsilon, job_id=record.job_id
                )
            )
        batch = SweepBatch(
            sweep_id=sweep_id,
            matrix_digest=digest,
            base_parameters=base,
            points=tuple(points),
            created_at=time.time(),
        )
        self.sweeps.save(batch)
        self._m_inc_sweeps.inc()
        self._m_inc_sweep_points.inc(len(points))
        _LOG.info(
            "sweep.accepted",
            sweep_id=sweep_id,
            matrix_digest=digest,
            points=len(points),
        )
        return batch

    def sweep_status(self, sweep_id: str) -> Dict[str, Any]:
        """The status envelope of one sweep batch.

        Raises :class:`KeyError` for unknown sweep ids.
        """
        batch = self.sweeps.get(sweep_id)
        if batch is None:
            raise KeyError(f"unknown sweep {sweep_id!r}")
        points = []
        counts: Dict[str, int] = {}
        finished = True
        for point in batch.points:  # reglint: disable=RL106
            try:
                state = self.jobs.get(point.job_id).state
            except KeyError:
                # The job record was deleted out from under the batch.
                state = None
            label = state.value if state is not None else "unknown"
            counts[label] = counts.get(label, 0) + 1
            if state is None or state not in TERMINAL_STATES:
                finished = False
            entry = point.to_dict()
            entry["state"] = label
            points.append(entry)
        return {
            "sweep_id": batch.sweep_id,
            "matrix_digest": batch.matrix_digest,
            "base_parameters": dict(batch.base_parameters),
            "created_at": batch.created_at,
            "points": points,
            "counts": counts,
            "finished": finished,
        }

    def sweep_results(self, sweep_id: str) -> Dict[str, Any]:
        """Per-point results of one sweep batch.

        Points whose jobs have not (yet) produced a result carry
        ``"result": None`` next to their current state, so a partial
        sweep is streamable without special cases.  Raises
        :class:`KeyError` for unknown sweep ids.
        """
        envelope = self.sweep_status(sweep_id)
        for entry in envelope["points"]:  # reglint: disable=RL106
            payload: Optional[Dict[str, Any]] = None
            if entry["state"] in (
                JobState.DONE.value, JobState.DEGRADED.value
            ):
                try:
                    payload = self.result(entry["job_id"])
                except (KeyError, ValueError):
                    payload = None
            entry["result"] = payload
        return envelope

    def status(self, job_id: str) -> JobRecord:
        """The current record of one job (KeyError if unknown)."""
        return self.jobs.get(job_id)

    def list_jobs(self) -> List[JobRecord]:
        """All job records, oldest first."""
        return self.jobs.list_records()

    def result(self, job_id: str) -> Dict[str, Any]:
        """The ``reg-cluster/v1`` payload of a completed job.

        Served for ``done`` jobs and — with the surviving shards'
        merged clusters — for ``degraded`` ones (the record's
        ``missing_shards`` says what is absent).  Raises
        :class:`KeyError` for unknown jobs and :class:`ValueError` for
        jobs that are not finished with a result.
        """
        record = self.jobs.get(job_id)
        if record.state not in RESULT_STATES:
            raise ValueError(
                f"job {job_id} is {record.state.value}, not done"
            )
        payload = self.cache.get_result(job_id)
        if payload is None:
            # Degraded results and results whose cache write failed
            # live in the in-process fallback (docs/robustness.md);
            # it is mutated on the executor thread, so read under the
            # same lock that guards those writes.
            with self._lock:
                payload = self._result_fallback.get(job_id)
        if payload is None:
            raise ValueError(
                f"result of job {job_id} is no longer cached; resubmit"
            )
        return payload

    def result_page(
        self, job_id: str, *, offset: int = 0, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        """One page of a completed result's clusters.

        Pagination keeps huge clusterings streamable: the payload is
        the ordinary ``reg-cluster/v1`` document with ``clusters``
        sliced to ``[offset, offset + limit)`` plus a ``page`` member
        (``offset`` / ``limit`` / ``total_clusters`` / ``next_offset``,
        the latter ``None`` on the last page).  ``limit=None`` returns
        everything from ``offset`` on.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        payload = dict(self.result(job_id))
        clusters = payload.get("clusters", [])
        total = len(clusters)
        end = total if limit is None else min(total, offset + limit)
        payload["clusters"] = clusters[offset:end]
        payload["page"] = {
            "offset": offset,
            "limit": limit,
            "total_clusters": total,
            "next_offset": end if end < total else None,
        }
        return payload

    def wait_for_change(
        self,
        job_id: str,
        *,
        seen_state: Optional[JobState] = None,
        timeout: float = 0.0,
    ) -> JobRecord:
        """Long-poll one job: block until its state leaves ``seen_state``.

        Returns the current record as soon as the state differs from
        ``seen_state`` (default: the state at call time), immediately
        for terminal states (they never change again), and after
        ``timeout`` seconds — capped at :data:`MAX_LONGPOLL_SECONDS` —
        otherwise.  A daemon shutting down mid-wait wakes every waiter
        and answers with the record as-is, so parked clients get a
        clean response instead of a dropped socket
        (``docs/service.md``).
        """
        record = self.jobs.get(job_id)
        baseline = record.state if seen_state is None else seen_state
        budget = max(0.0, min(float(timeout), MAX_LONGPOLL_SECONDS))
        deadline = time.monotonic() + budget
        with self._state_cond:
            while (
                record.state is baseline
                and record.state not in TERMINAL_STATES
                and not self._stop_requested.is_set()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                self._state_cond.wait(remaining)
                # Store read under the condition so a notify between
                # check and wait cannot be lost; the record file read
                # is the price of one wake-up, not per-request work.
                record = self.jobs.get(job_id)  # reglint: disable=RL303
        return record

    def interrupt_waits(self) -> None:
        """Wake every parked :meth:`wait_for_change` (front-door
        shutdown path); waiters answer with the current record."""
        with self._state_cond:
            self._state_cond.notify_all()

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a submitted or running job (no-op on terminal jobs)."""
        with self._lock:
            record = self.jobs.get(job_id)
            if record.state is JobState.SUBMITTED:
                return self._transition(
                    job_id,
                    JobState.CANCELLED,
                    finished_at=time.time(),
                )
            if record.state is JobState.RUNNING:
                event = self._cancel_events.get(job_id)
                if event is not None:
                    event.set()
            return record

    def delete(self, job_id: str) -> None:
        """Remove a terminal job's record and cached result.

        Raises :class:`ValueError` when the job is still active (cancel
        it first) and :class:`KeyError` when unknown.
        """
        with self._lock:
            record = self.jobs.get(job_id)
            if record.state in ACTIVE_STATES:
                raise ValueError(
                    f"job {job_id} is {record.state.value}; cancel before "
                    f"deleting"
                )
            self.cache.drop_result(job_id)
            self.jobs.clear_shards(job_id)
            self._result_fallback.pop(job_id, None)
            self.jobs.delete(job_id)
            self._m_jobs_current.labels(state=record.state.value).dec()
            _LOG.info("job.deleted", job_id=job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background execution thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop_requested.clear()
            self._thread = threading.Thread(
                target=self._run_loop,
                name="reg-cluster-executor",
                daemon=True,
            )
            self._thread.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the execution thread; a running job is cancelled."""
        with self._lock:
            thread = self._thread
            self._stop_requested.set()
            for event in self._cancel_events.values():
                event.set()
            self._queue.put(None)
        # Long-polls must not outlive the daemon: wake them all so the
        # front door answers with the current record instead of holding
        # parked connections open (docs/service.md).
        self.interrupt_waits()
        if thread is not None:
            thread.join(timeout=timeout)
        with self._lock:
            self._thread = None

    def run_pending(self) -> int:
        """Synchronously drain the queue (no thread); returns jobs run.

        Used by tests and one-shot tooling; do not mix with a running
        background thread.
        """
        executed = 0
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return executed
            if job_id is None:
                continue
            if self._execute(job_id):
                executed += 1

    def _run_loop(self) -> None:
        while not self._stop_requested.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                continue
            self._execute(job_id)

    def _execute(self, job_id: str) -> bool:
        """Run one queued job; ``False`` when it was skipped (e.g. a job
        cancelled while still queued)."""
        record = self.jobs.get(job_id)
        if record.state is not JobState.SUBMITTED:
            return False  # cancelled (or re-run) while queued
        cancel_event = threading.Event()
        with self._lock:
            self._cancel_events[job_id] = cancel_event
            if self._stop_requested.is_set():
                cancel_event.set()
        self._transition(job_id, JobState.RUNNING, started_at=time.time())
        try:
            self._mine_job(job_id, record, cancel_event)
        except MiningTimeout as error:
            # A deadline, not a caller: the job *failed*, but its shard
            # checkpoints survive, so resubmitting resumes the search.
            self._m_timeouts.inc()
            self._transition(
                job_id,
                JobState.FAILED,
                error=f"{type(error).__name__}: {error}",
                finished_at=time.time(),
            )
        except MiningCancelled:
            self._transition(
                job_id,
                JobState.CANCELLED,
                finished_at=time.time(),
            )
        except (ValueError, KeyError, OSError, RuntimeError) as error:
            self._transition(
                job_id,
                JobState.FAILED,
                error=f"{type(error).__name__}: {error}",
                finished_at=time.time(),
            )
        finally:
            with self._lock:
                self._cancel_events.pop(job_id, None)
        return True

    def _job_tracer(self, job_id: str) -> Tracer:
        if self.trace_dir is None:
            return NULL_TRACER
        return Tracer(
            self.trace_dir / f"{job_id}.trace.jsonl", overwrite=True
        )

    def _mine_job(
        self,
        job_id: str,
        record: JobRecord,
        cancel_event: threading.Event,
    ) -> None:
        tracer = self._job_tracer(job_id)
        root = tracer.span(
            "job",
            attributes={
                "job_id": job_id,
                "matrix_digest": record.matrix_digest,
                "n_workers": self.n_workers,
            },
        )
        try:
            self._mine_job_traced(
                job_id, record, cancel_event, tracer, root
            )
        except BaseException as error:
            root.set_attributes(
                {
                    "outcome": "failed",
                    "error": f"{type(error).__name__}: {error}",
                }
            )
            raise
        finally:
            root.end()
            tracer.close()

    # ------------------------------------------------------------------
    # Revision-aware execution (docs/incremental.md)
    # ------------------------------------------------------------------

    def _revision_context(
        self, record: JobRecord
    ) -> Optional["tuple[MatrixRevision, ExpressionMatrix, MatrixDelta]"]:
        """The lineage of a job's matrix, or ``None`` for root matrices.

        A revision whose parent matrix is no longer stored (or whose
        stored delta fails validation) answers ``None`` — the job then
        mines from scratch, which is always correct.
        """
        revision = self.revisions.get(record.matrix_digest)
        if revision is None:
            return None
        try:
            parent_matrix = self._load_matrix(revision.parent_digest)
            delta = revision.typed_delta()
        except (KeyError, ValueError, OSError):
            return None
        return revision, parent_matrix, delta

    def _parent_reusable_shards(
        self,
        revision: MatrixRevision,
        parent_matrix: ExpressionMatrix,
        child_matrix: ExpressionMatrix,
        params: MiningParameters,
        clean_shards: "tuple[int, ...]",
    ) -> "tuple[str, Dict[int, StoredShard]]":
        """Clean shards recoverable from the parent's job, per source.

        A ``done`` parent serves from its cached result payload (the
        deterministic shard merge groups back exactly by first chain
        condition); a ``degraded`` parent serves from its surviving
        shard checkpoints, so its *missing* shards are mined — never
        trusted.  Cluster gene/condition membership is remapped by
        *name* into the child matrix, which keeps ids correct across
        ``drop_genes`` for free.  Anything unreadable simply drops out
        of the reuse set: re-mining is always sound.
        """
        parent_job_id = compute_job_id(revision.parent_digest, params)
        reusable: Dict[int, StoredShard] = {}
        try:
            parent_record = self.jobs.get(parent_job_id)
        except KeyError:
            return parent_job_id, reusable
        clean = set(clean_shards)
        if parent_record.state is JobState.DONE:
            payload = self.cache.get_result(parent_job_id)
            if payload is None:
                with self._lock:
                    payload = self._result_fallback.get(parent_job_id)
            if payload is None:
                return parent_job_id, reusable
            clusters = payload.get("clusters", [])
            if (
                params.max_clusters is not None
                and len(clusters) >= params.max_clusters
            ):
                # The payload may have been truncated by max_clusters:
                # per-shard grouping could silently miss clusters, so
                # nothing is reused (correctness over reuse).
                return parent_job_id, reusable
            grouped: Dict[int, List[RegCluster]] = {}
            try:
                for entry in clusters:  # reglint: disable=RL106
                    cluster = cluster_from_dict(entry, matrix=child_matrix)
                    grouped.setdefault(cluster.chain[0], []).append(cluster)
            except (KeyError, TypeError, ValueError):
                return parent_job_id, reusable
            for start in sorted(clean):  # reglint: disable=RL106
                # Reused-from-payload shards carry no per-shard search
                # statistics (the payload merges them); clusters are
                # identical to re-mining, statistics are not claimed.
                reusable[start] = (start, grouped.get(start, []), {})
            return parent_job_id, reusable
        if parent_record.state is JobState.DEGRADED:
            missing = set(parent_record.missing_shards or [])
            checkpoints = self.jobs.load_shards(parent_job_id)
            for start, shard in sorted(checkpoints.items()):  # reglint: disable=RL106
                if start not in clean or start in missing:
                    continue
                __, clusters, stats = shard
                try:
                    remapped = [
                        cluster_from_dict(
                            cluster_to_dict(cluster, parent_matrix),
                            matrix=child_matrix,
                        )
                        for cluster in clusters
                    ]
                except (IndexError, KeyError, TypeError, ValueError):
                    continue
                reusable[start] = (start, remapped, dict(stats))
        return parent_job_id, reusable

    def _mine_job_traced(
        self,
        job_id: str,
        record: JobRecord,
        cancel_event: threading.Event,
        tracer: Tracer,
        root: Span,
    ) -> None:
        # 1. Completed-result memoization: identical resubmission after a
        #    failed/cancelled re-arm, or a deleted record with a live
        #    cached result, finishes without touching matrix or index.
        cached = self.cache.get_result(job_id)
        if cached is not None:
            statistics = cached.get("statistics", {})
            root.set_attribute("outcome", "cached")
            self._transition(
                job_id,
                JobState.DONE,
                finished_at=time.time(),
                result_cache_hit=True,
                progress={
                    "nodes_expanded": int(
                        statistics.get("nodes_expanded", 0)
                    ),
                    "clusters_emitted": len(cached.get("clusters", [])),
                },
            )
            return

        with tracer.span("matrix.load", parent=root):
            matrix = self._load_matrix(record.matrix_digest)
        params = parameters_from_dict(record.parameters)

        # 1b. Lineage: a job on a revised matrix becomes delta-aware —
        #     index/kernel are delta-updated from the parent's cached
        #     artifacts and clean shards are stitched from the parent
        #     job.  Every reuse path is best-effort; losing the parent
        #     only loses speed, never correctness.
        lineage = self._revision_context(record)

        # 2. RWave^gamma index: cache hit, delta-update, or cold build.
        with tracer.span("index", parent=root) as index_span:
            index = self.cache.get_index(record.matrix_digest, params.gamma)
            index_cache_hit = index is not None
            index_build = "cached" if index_cache_hit else "cold"
            if index is None and lineage is not None:
                parent_index = self.cache.get_index(
                    lineage[0].parent_digest, params.gamma
                )
                if parent_index is not None:
                    try:
                        index = update_index(
                            parent_index, matrix, lineage[2]
                        ).index
                        index_build = "delta"
                    except (TypeError, ValueError):
                        index = None
            if index is None:
                index = RWaveIndex(matrix, params.gamma)
            if not index_cache_hit:
                try:
                    self.cache.put_index(
                        record.matrix_digest,
                        params.gamma,
                        index,
                        parent_digest=(
                            lineage[0].parent_digest
                            if index_build == "delta"
                            else None
                        ),
                    )
                except OSError:
                    pass  # best-effort: the in-memory index still serves
            index_span.set_attribute("cache_hit", index_cache_hit)
            index_span.set_attribute("build", index_build)

        # 2b. Regulation kernel: determined by the same (digest, gamma)
        #     key as the index.  On a hit the kernel is attached so the
        #     miner skips the packbits build; on a revision, the parent
        #     kernel is delta-updated (only new/changed planes rebuilt)
        #     and stored immediately; otherwise the miner builds it
        #     lazily and it is stored after the search.
        with tracer.span("kernel", parent=root) as kernel_span:
            kernel = self.cache.get_kernel(
                record.matrix_digest, params.gamma
            )
            kernel_cache_hit = kernel is not None
            kernel_build = "cached" if kernel_cache_hit else "cold"
            if kernel is None and lineage is not None:
                parent_kernel = self.cache.get_kernel(
                    lineage[0].parent_digest, params.gamma
                )
                if parent_kernel is not None:
                    try:
                        updated = update_kernel(
                            parent_kernel,
                            lineage[1],
                            matrix,
                            lineage[2],
                            gamma=params.gamma,
                        )
                    except (TypeError, ValueError):
                        updated = None
                    if updated is not None:
                        kernel = updated.kernel
                        kernel_build = "delta"
                        kernel_span.set_attribute(
                            "reused_planes", updated.reused_planes
                        )
                        kernel_span.set_attribute(
                            "rebuilt_planes", updated.rebuilt_planes
                        )
                        try:
                            self.cache.put_kernel(
                                record.matrix_digest,
                                params.gamma,
                                kernel,
                                parent_digest=lineage[0].parent_digest,
                            )
                        except OSError:
                            pass
            if kernel is None and lineage is not None:
                # No cached parent kernel to delta-update (worker pools
                # build kernels in child processes, so a pool-mined
                # parent leaves nothing behind).  Build the child's
                # kernel eagerly and store it: this one hop is cold,
                # but every later revision in the lineage delta-updates.
                kernel = index.kernel
                try:
                    self.cache.put_kernel(
                        record.matrix_digest, params.gamma, kernel
                    )
                except OSError:
                    pass
            if kernel is not None:
                index.attach_kernel(kernel)
            kernel_span.set_attribute("cache_hit", kernel_cache_hit)
            kernel_span.set_attribute("build", kernel_build)
        self._m_inc_kernel_builds.labels(mode=kernel_build).inc()
        self.jobs.update(
            job_id,
            index_cache_hit=index_cache_hit,
            kernel_cache_hit=kernel_cache_hit,
            result_cache_hit=False,
            kernel_build=kernel_build,
        )

        # 3. The sharded search, with live progress, cancellation,
        #    checkpoint resume and retry/degradation.  Checkpoints from a
        #    previous interrupted or degraded run are merged without
        #    re-mining; every newly completed shard is checkpointed the
        #    moment it finishes.
        completed = self.jobs.load_shards(job_id)

        # 3a. Shard revalidation: map the delta to dirty shards and
        #     stitch every clean shard from the parent job instead of
        #     re-mining it.  The job's own checkpoints take precedence
        #     over parent reuse (they are already exact for THIS job).
        completed_origin: Dict[int, str] = {}
        reused_list: List[int] = []
        revision_parent_job: Optional[str] = None
        if lineage is not None:
            revision, parent_matrix, delta = lineage
            with tracer.span("revision.plan", parent=root) as plan_span:
                try:
                    plan = self.planner.plan(
                        parent_matrix, matrix, delta, params.gamma
                    )
                except (TypeError, ValueError):
                    plan = None
                if plan is not None:
                    plan_span.set_attributes(
                        {
                            "delta": delta.kind,
                            "n_shards": plan.n_shards,
                            "dirty_shards": len(plan.dirty_shards),
                            "clean_shards": len(plan.clean_shards),
                        }
                    )
            if plan is not None and plan.clean_shards:
                parent_job_id, reusable = self._parent_reusable_shards(
                    revision, parent_matrix, matrix, params,
                    plan.clean_shards,
                )
                for start in sorted(reusable):  # reglint: disable=RL106
                    if start not in completed:
                        completed[start] = reusable[start]
                        completed_origin[start] = "parent"
                reused_list = sorted(completed_origin)
                if reused_list:
                    revision_parent_job = parent_job_id
            self._m_inc_shards.labels(source="reused").inc(len(reused_list))
            self._m_inc_shards.labels(source="mined").inc(
                matrix.n_conditions - len(completed)
            )
            if reused_list:
                _LOG.info(
                    "revision.reuse",
                    job_id=job_id,
                    parent_job=revision_parent_job,
                    reused=len(reused_list),
                    mined=matrix.n_conditions - len(completed),
                )

        progress = {"nodes_expanded": 0, "clusters_emitted": 0}
        # Checkpointed nodes were already counted by the run that mined
        # them (when it shared this process), so the counter tracks the
        # delta past the resumed offset only.
        nodes_counted = {
            "value": sum(
                int(shard[2].get("nodes_expanded", 0))
                for shard in completed.values()
            )
        }

        def on_progress(event: str, nodes_expanded: int) -> None:
            progress["nodes_expanded"] = nodes_expanded
            if event == "emitted":
                progress["clusters_emitted"] += 1
            delta = nodes_expanded - nodes_counted["value"]
            if delta > 0:
                self._m_nodes.inc(delta)
                nodes_counted["value"] = nodes_expanded
            if self.progress_observer is not None:
                self.progress_observer(job_id, event, nodes_expanded)
            if nodes_expanded % _PROGRESS_PERSIST_EVERY == 0:
                self.jobs.update(job_id, progress=dict(progress))

        def on_shard_complete(shard: ShardResult) -> None:
            try:
                self.jobs.save_shard(job_id, shard)
            except OSError:
                pass  # checkpointing is an optimization, never fatal

        mine_span = tracer.span("mine", parent=root)
        shard_provenance: Optional[Dict[str, Any]] = None
        try:
            if self.fleet is not None:
                # Fleet mode: the job is driven through the work queue —
                # nodes lease shards over HTTP while (optionally) the
                # coordinator mines unleased shards itself.  Remote and
                # local results land in the same checkpoints and the
                # same merge, so the outcome is bit-identical to the
                # non-fleet path below.
                local_mine = None
                if self.fleet.local_mining:
                    local_mine = make_local_shard_miner(
                        matrix,
                        params,
                        index=index,
                        fault_plan=self.fault_plan,
                        should_stop=cancel_event.is_set,
                        tracer=tracer,
                        trace_parent=mine_span.context,
                    )
                outcome, shard_provenance = self.fleet.run_job(
                    job_id,
                    matrix,
                    params,
                    matrix_digest=record.matrix_digest,
                    completed=completed,
                    on_shard_complete=on_shard_complete,
                    progress_callback=on_progress,
                    should_stop=cancel_event.is_set,
                    timeout=self.job_timeout,
                    tracer=tracer,
                    trace_parent=mine_span.context,
                    local_mine=local_mine,
                )
            else:
                outcome = mine_sharded_outcome(
                    matrix,
                    params,
                    n_workers=self.n_workers,
                    index=index,
                    progress_callback=on_progress,
                    should_stop=cancel_event.is_set,
                    start_method=self.start_method,
                    retry=self.retry,
                    fault_plan=self.fault_plan,
                    timeout=self.job_timeout,
                    completed=completed,
                    completed_origin=completed_origin or None,
                    on_shard_complete=on_shard_complete,
                    tracer=tracer,
                    trace_parent=mine_span.context,
                )
        except MiningCancelled as error:
            # Keep the last observed counters on the record; shard
            # checkpoints survive, so a resubmission resumes the search.
            mine_span.set_attributes(
                {"outcome": "failed", "error": type(error).__name__}
            )
            mine_span.end()
            self.jobs.update(job_id, progress=dict(progress))
            raise
        self._m_retries.inc(
            max(
                0,
                sum(outcome.failed_attempts.values())
                - len(outcome.missing_shards),
            )
        )
        self._m_lost.inc(len(outcome.missing_shards))
        # Parent-reused shards enter the driver through the same resume
        # seam as the job's own checkpoints; split them back apart so
        # "resumed" keeps meaning "this job's checkpoints".
        reused_set = set(reused_list)
        resumed_own = [
            s for s in outcome.resumed_shards if s not in reused_set
        ]
        self._m_resumed.inc(len(resumed_own))
        for kind, count in outcome.fault_injections.items():
            self._m_faults.labels(kind=kind).inc(count)
        mine_span.set_attributes(
            {
                "outcome": "degraded" if outcome.degraded else "ok",
                "nodes_expanded": outcome.result.statistics.nodes_expanded,
                "clusters_emitted": (
                    outcome.result.statistics.clusters_emitted
                ),
                "missing_shards": list(outcome.missing_shards),
                "resumed_shards": resumed_own,
                "reused_shards": reused_list,
            }
        )
        mine_span.set_attributes(
            outcome.result.statistics.timers.prefixed()
        )
        mine_span.end()

        # 4. Persist the result (serialize v1, names included) and close.
        #    A kernel the in-process miner built lazily is memoized for
        #    the next job on the same (matrix, gamma); worker pools build
        #    kernels in child processes, so there is nothing to store.
        #    All cache writes are best-effort: a full or flaky disk must
        #    not fail a job that mined successfully.
        if (
            not kernel_cache_hit
            and kernel_build == "cold"
            and lineage is None  # revision jobs stored theirs eagerly
            and index.has_kernel
        ):
            try:
                self.cache.put_kernel(
                    record.matrix_digest, params.gamma, index.kernel
                )
            except OSError:
                pass
        result = outcome.result
        payload = result_to_dict(result, matrix)
        progress["nodes_expanded"] = result.statistics.nodes_expanded
        progress["clusters_emitted"] = result.statistics.clusters_emitted
        self._m_clusters.inc(result.statistics.clusters_emitted)
        shard_failures = (
            {str(s): n for s, n in sorted(outcome.failed_attempts.items())}
            or None
        )
        if shard_provenance is None:
            # Non-fleet path: synthesize the same per-shard provenance
            # the fleet reports, so ``status --stats`` answers "who
            # mined shard N, in how many attempts" uniformly.
            resumed = set(outcome.resumed_shards)
            missing = set(outcome.missing_shards)
            shard_provenance = {}
            for start in range(matrix.n_conditions):
                if start in reused_set:
                    shard_provenance[str(start)] = {
                        "node": "parent", "attempts": 0,
                    }
                elif start in resumed:
                    shard_provenance[str(start)] = {
                        "node": "checkpoint", "attempts": 0,
                    }
                elif start in missing:
                    shard_provenance[str(start)] = {
                        "node": None,
                        "attempts": outcome.failed_attempts.get(start, 0),
                    }
                else:
                    shard_provenance[str(start)] = {
                        "node": "local",
                        "attempts": (
                            outcome.failed_attempts.get(start, 0) + 1
                        ),
                    }
        root.set_attributes(result.statistics.timers.prefixed())
        if outcome.degraded:
            # A degraded payload never enters the result cache: an
            # idempotent resubmission must re-mine the missing shards,
            # not be answered from a partial payload.  The surviving
            # shards' checkpoints are kept for exactly that resume.
            # The fallback dict is shared with handler threads
            # (result()) and delete(); every mutation holds the lock.
            with self._lock:
                self._result_fallback[job_id] = payload
            root.set_attribute("outcome", "degraded")
            _LOG.warning(
                "job.degraded",
                job_id=job_id,
                missing_shards=outcome.missing_shards,
                shard_errors={
                    str(s): outcome.shard_errors[s]
                    for s in outcome.missing_shards
                },
            )
            self._transition(
                job_id,
                JobState.DEGRADED,
                finished_at=time.time(),
                progress=dict(progress),
                phase_timers=result.statistics.timers.as_dict(),
                missing_shards=outcome.missing_shards,
                resumed_shards=resumed_own or None,
                reused_shards=reused_list or None,
                revision_parent=revision_parent_job,
                shard_failures=shard_failures,
                shard_provenance=shard_provenance,
                error="; ".join(
                    f"shard {s}: {outcome.shard_errors[s]}"
                    for s in outcome.missing_shards
                ),
            )
            return
        with tracer.span("result.persist", parent=root):
            try:
                self.cache.put_result(job_id, payload)
                with self._lock:
                    self._result_fallback.pop(job_id, None)
            except OSError:
                with self._lock:
                    self._result_fallback[job_id] = payload
            self.jobs.clear_shards(job_id)
        root.set_attribute("outcome", "done")
        self._transition(
            job_id,
            JobState.DONE,
            finished_at=time.time(),
            progress=dict(progress),
            phase_timers=result.statistics.timers.as_dict(),
            missing_shards=None,
            resumed_shards=resumed_own or None,
            reused_shards=reused_list or None,
            revision_parent=revision_parent_job,
            shard_failures=shard_failures,
            shard_provenance=shard_provenance,
        )
