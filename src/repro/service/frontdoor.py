"""Selector-based HTTP front door with admission control.

The daemon's old front end was a ``ThreadingHTTPServer`` — one OS
thread per connection, unbounded accept, no backpressure.  This module
replaces it with the classic single-loop design:

* one **event loop** (the thread that calls :meth:`serve_forever`)
  owns every socket: it accepts, reads, incrementally parses HTTP/1.1,
  and writes responses, all non-blocking under one
  :class:`selectors.DefaultSelector`;
* fully-parsed requests are handed to a small **bounded worker pool**
  that runs :class:`~repro.service.router.ServiceRouter` (store reads,
  submissions, long-polls) and posts finished responses back to the
  loop over a self-pipe;
* **admission control** happens in the loop, before any work is
  queued: a connection cap (shed at accept), a bounded request queue
  (shed on overflow), and optional per-tenant token-bucket rate limits
  and in-flight quotas keyed on the ``X-Repro-Tenant`` header.  Shed
  requests get ``429`` with a ``Retry-After`` hint instead of a thread
  pile-up — under overload the daemon degrades by refusing crisply,
  not by collapsing.

``/healthz`` and ``/metrics`` are answered inline by the loop itself —
never queued, never shed, never faulted — so observability stays up
exactly when admission control is busiest.  Internal cluster traffic
(``/fleet/*``, ``/artifacts/*``) bypasses tenant accounting but still
rides the bounded queue.

The public surface matches the old server where callers touched it:
``serve()`` returns an object with ``serve_forever()`` /
``shutdown()`` / ``server_close()`` / ``server_address``, and the
``repro_http_requests_total`` / ``repro_http_request_seconds``
families keep their names and labels.  New families are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import math
import queue
import selectors
import socket
import threading
import time
from collections import OrderedDict, deque
from http.client import responses as _STATUS_REASONS
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.log import get_logger
from repro.service.resilience import FaultPlan
from repro.service.router import (
    MAX_BODY_BYTES,
    Request,
    Response,
    ServiceRouter,
)
from repro.service.service import MiningService

_LOG = get_logger("repro.service.http")

__all__ = [
    "FrontDoorServer",
    "TokenBucket",
    "DEFAULT_MAX_CONNECTIONS",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_HTTP_WORKERS",
    "DEFAULT_IDLE_TIMEOUT",
]

#: Concurrent connections before accept-time shedding.
DEFAULT_MAX_CONNECTIONS = 512

#: Parsed requests waiting for a worker before queue shedding.
DEFAULT_QUEUE_DEPTH = 256

#: Worker threads running the router (store reads + long-poll parks).
DEFAULT_HTTP_WORKERS = 8

#: Close connections with no progress toward a complete request for
#: this many seconds — a socket that connects and never speaks (or
#: trickles a header byte at a time) must not hold a connection slot
#: until ``max_connections`` is exhausted.
DEFAULT_IDLE_TIMEOUT = 60.0

#: Refuse request heads (request line + headers) beyond this size.
MAX_HEAD_BYTES = 64 * 1024

#: Token buckets kept live at once; beyond this the least-recently
#: used bucket is dropped (its tenant starts a fresh burst on return —
#: bounded memory beats perfect enforcement against a client minting
#: random ``X-Repro-Tenant`` values).
MAX_TRACKED_TENANTS = 1024

#: Distinct tenant label values on ``repro_http_admitted_total``;
#: tenants beyond this collapse into the ``other`` label so a header
#: storm cannot grow Prometheus cardinality without bound.
MAX_TENANT_LABELS = 256

#: Tenant names are truncated to this many characters for accounting.
MAX_TENANT_NAME_CHARS = 64

#: Paths served inline by the event loop (never queued or shed).
_INLINE_PATHS = frozenset({"/healthz", "/metrics"})

#: Path prefixes exempt from tenant rate limits and quotas: cluster
#: traffic (fleet nodes, artifact pulls) is not billable user load.
_INTERNAL_PREFIXES = ("/fleet/", "/artifacts/")

_CANNED_429_BODY = b'{"error": "connection limit reached"}'
_CANNED_429 = (
    b"HTTP/1.1 429 Too Many Requests\r\n"
    b"Content-Type: application/json\r\n"
    b"Retry-After: 1\r\n"
    b"Content-Length: " + str(len(_CANNED_429_BODY)).encode("ascii")
    + b"\r\n"
    b"Connection: close\r\n"
    b"\r\n" + _CANNED_429_BODY
)


class TokenBucket:
    """A token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Used per tenant by the front door; only ever touched from the
    event-loop thread, so it carries no lock.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._stamp = time.monotonic()

    def try_take(self) -> bool:
        """Take one token if available (refilling lazily)."""
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when one does)."""
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class _Connection:
    """Per-socket parse/write state, owned by the event loop."""

    __slots__ = (
        "sock",
        "address",
        "inbuf",
        "outbuf",
        "busy",
        "close_after_flush",
        "last_activity",
        "interest",
    )

    def __init__(self, sock: socket.socket, address: Tuple[str, int]):
        self.sock = sock
        self.address = address
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        #: a request from this connection is queued or executing; no
        #: further pipelined requests are parsed until it flushes
        self.busy = False
        self.close_after_flush = False
        #: last byte received from or flushed to the client — the
        #: idle sweep reaps connections this stamp has gone stale on
        self.last_activity = time.monotonic()
        #: selector event mask currently registered for this socket
        self.interest = selectors.EVENT_READ


class _Task:
    """One admitted request travelling loop -> worker -> loop."""

    __slots__ = ("conn", "request", "started", "tenant", "quota_held")

    def __init__(
        self,
        conn: _Connection,
        request: Request,
        started: float,
        tenant: Optional[str],
        quota_held: bool,
    ) -> None:
        self.conn = conn
        self.request = request
        self.started = started
        #: tenant billed for this request (None = internal traffic)
        self.tenant = tenant
        #: True when this request holds one in-flight quota slot
        self.quota_held = quota_held


class FrontDoorServer:
    """The selector-based HTTP front end bound to one service.

    Drop-in for the old ``ServiceHTTPServer`` where callers touched
    it: construct, run :meth:`serve_forever` on a thread, stop with
    :meth:`shutdown` + :meth:`server_close`.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        service: MiningService,
        *,
        quiet: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        http_workers: int = DEFAULT_HTTP_WORKERS,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        tenant_quota: Optional[int] = None,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
    ) -> None:
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if http_workers < 1:
            raise ValueError(
                f"http_workers must be >= 1, got {http_workers}"
            )
        if tenant_rate is not None and tenant_rate <= 0.0:
            raise ValueError(f"tenant_rate must be > 0, got {tenant_rate}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        if idle_timeout is not None and idle_timeout <= 0.0:
            raise ValueError(
                f"idle_timeout must be > 0 or None, got {idle_timeout}"
            )
        self.service = service
        self.quiet = quiet
        self.fault_plan = (
            fault_plan if fault_plan is not None else service.fault_plan
        )
        self.router = ServiceRouter(service, fault_plan=self.fault_plan)
        self.max_connections = max_connections
        self.queue_depth = queue_depth
        self.http_workers = http_workers
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            float(tenant_burst)
            if tenant_burst is not None
            else (max(1.0, 2.0 * tenant_rate) if tenant_rate else None)
        )
        self.tenant_quota = tenant_quota
        self.idle_timeout = idle_timeout

        # -- sockets / loop state (loop thread only, after bind) ------
        self._listener = socket.create_server(
            address, backlog=min(1024, max_connections)
        )
        self._listener.setblocking(False)
        self.server_address: Tuple[str, int] = self._listener.getsockname()[
            :2
        ]
        self._selector = selectors.DefaultSelector()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._connections: Dict[int, _Connection] = {}
        self._tasks: "queue.Queue[Optional[_Task]]" = queue.Queue(
            maxsize=queue_depth
        )
        self._done: Deque[Tuple[_Task, Response]] = deque()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        # _inflight needs no cap of its own: entries are deleted when
        # a tenant's count hits zero, and the sum of counts is bounded
        # by queue_depth + http_workers requests in flight.
        self._inflight: Dict[str, int] = {}
        self._metric_tenants: set = set()
        self._workers: List[threading.Thread] = []
        self._shutdown_requested = threading.Event()
        self._loop_done = threading.Event()
        self._loop_done.set()
        self._closed = False

        # -- metrics (names pinned by tests and dashboards) -----------
        metrics = service.metrics
        self._m_requests = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method and status.",
            labelnames=("method", "status"),
        )
        self._m_latency = metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request latency in seconds, by method "
            "(long-poll park time excluded).",
            labelnames=("method",),
        )
        self._m_connections = metrics.gauge(
            "repro_http_connections_current",
            "Open HTTP connections right now.",
        )
        self._m_queue_depth = metrics.gauge(
            "repro_http_queue_depth",
            "Parsed requests waiting for a worker right now.",
        )
        self._m_shed = metrics.counter(
            "repro_http_shed_total",
            "Requests shed by admission control, by reason "
            "(connections, queue, rate, quota).",
            labelnames=("reason",),
        )
        self._m_admitted = metrics.counter(
            "repro_http_admitted_total",
            "Requests admitted past tenant accounting, by tenant.",
            labelnames=("tenant",),
        )
        self._m_longpoll = metrics.histogram(
            "repro_http_longpoll_wait_seconds",
            "Seconds long-poll requests spent parked before answering.",
        )
        self._m_idle_closed = metrics.counter(
            "repro_http_idle_closed_total",
            "Connections closed by the idle-timeout sweep.",
        )

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        self._loop_done.clear()
        self._start_workers()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._selector.register(
            self._wake_recv, selectors.EVENT_READ, "wake"
        )
        last_sweep = time.monotonic()
        try:
            while not self._shutdown_requested.is_set():
                events = self._selector.select(timeout=poll_interval)
                for key, mask in events:
                    try:
                        if key.fileobj is self._listener:
                            self._accept()
                        elif key.data == "wake":
                            self._drain_wake()
                        else:
                            conn = key.data
                            assert isinstance(conn, _Connection)
                            if mask & selectors.EVENT_READ:
                                self._readable(conn)
                            if (mask & selectors.EVENT_WRITE
                                    and conn.sock.fileno() >= 0):
                                self._writable(conn)
                    except Exception as error:  # reglint: disable=RL103
                        # One broken connection must not take down the
                        # loop (and with it every other connection);
                        # listener/wake faults still propagate.
                        if not isinstance(key.data, _Connection):
                            raise
                        _LOG.error(
                            "http.loop.error",
                            error=repr(error),
                            client=key.data.address[0],
                        )
                        self._close_connection(key.data)
                self._drain_done()
                now = time.monotonic()
                if now - last_sweep >= 1.0:
                    last_sweep = now
                    self._sweep_idle(now)
        finally:
            for key in list(self._selector.get_map().values()):
                try:
                    self._selector.unregister(key.fileobj)
                except (KeyError, ValueError):
                    pass
            self._loop_done.set()

    def shutdown(self) -> None:
        """Stop the loop; blocks until :meth:`serve_forever` returns."""
        self._shutdown_requested.set()
        self._wake()
        self._loop_done.wait()
        for _ in self._workers:
            try:
                self._tasks.put_nowait(None)
            except queue.Full:  # workers will see the event instead
                break

    def server_close(self) -> None:
        """Release sockets (call after :meth:`shutdown`)."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_requested.set()
        for conn in list(self._connections.values()):
            try:
                conn.sock.close()
            except OSError:
                pass
        self._connections.clear()
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    def _start_workers(self) -> None:
        if self._workers:
            return
        for index in range(self.http_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-http-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    # -- event-loop internals (loop thread only) -----------------------

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except (OSError, ValueError):
            pass

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _accept(self) -> None:
        for _ in range(64):  # drain a burst per loop turn, then yield
            try:
                sock, address = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            if len(self._connections) >= self.max_connections:
                self._m_shed.labels(reason="connections").inc()
                if not self.quiet:
                    _LOG.warning(
                        "http.shed", reason="connections",
                        client=address[0],
                    )
                try:
                    sock.setblocking(False)
                    sock.send(_CANNED_429)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setblocking(False)
            conn = _Connection(sock, address)
            self._connections[sock.fileno()] = conn
            self._m_connections.set(float(len(self._connections)))
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _close_connection(self, conn: _Connection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        self._connections.pop(conn.sock.fileno(), None)
        self._m_connections.set(float(len(self._connections)))
        try:
            conn.sock.close()
        except OSError:
            pass

    def _readable(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except (ConnectionResetError, OSError):
            self._close_connection(conn)
            return
        if not chunk:
            self._close_connection(conn)
            return
        conn.inbuf.extend(chunk)
        conn.last_activity = time.monotonic()
        if conn.busy:
            # A response is in flight; pipelined bytes wait in the
            # buffer, but a client streaming unbounded data while we
            # are not parsing gets cut off.
            if len(conn.inbuf) > MAX_HEAD_BYTES + MAX_BODY_BYTES:
                self._close_connection(conn)
            return
        self._pump(conn)

    def _writable(self, conn: _Connection) -> None:
        self._pump(conn)

    def _set_interest(self, conn: _Connection, events: int) -> None:
        if conn.interest == events:
            return
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError):
            return
        conn.interest = events

    def _pump(self, conn: _Connection) -> None:
        """Flush output, then parse pipelined requests — iteratively.

        This loop is the only driver of the flush -> parse-next cycle.
        Keeping it flat (instead of ``_writable`` and the parser
        calling each other) bounds stack depth at O(1) no matter how
        many pipelined requests one client crams into a single buffer
        — the recursive formulation let ~250 tiny pipelined requests
        raise ``RecursionError`` on the event-loop thread.
        """
        while True:
            if conn.sock.fileno() < 0:
                return  # closed while a response was in flight
            if conn.outbuf:
                try:
                    sent = conn.sock.send(bytes(conn.outbuf))
                except BlockingIOError:
                    self._set_interest(
                        conn,
                        selectors.EVENT_READ | selectors.EVENT_WRITE,
                    )
                    return
                except (BrokenPipeError, ConnectionResetError, OSError):
                    self._close_connection(conn)
                    return
                if sent <= 0:
                    self._set_interest(
                        conn,
                        selectors.EVENT_READ | selectors.EVENT_WRITE,
                    )
                    return
                conn.last_activity = time.monotonic()
                del conn.outbuf[:sent]
                if conn.outbuf:
                    self._set_interest(
                        conn,
                        selectors.EVENT_READ | selectors.EVENT_WRITE,
                    )
                    return
                if conn.close_after_flush:
                    self._close_connection(conn)
                    return
                # Response fully flushed: the connection is free for
                # the next (possibly already-buffered) request.
                conn.busy = False
            if conn.busy:
                # Request in flight with a worker (e.g. a parked
                # long-poll); its response arrives via _drain_done.
                self._set_interest(conn, selectors.EVENT_READ)
                return
            if not self._parse_one(conn):
                self._set_interest(conn, selectors.EVENT_READ)
                return
            # _parse_one dispatched one request: either it queued to a
            # worker (busy, no output yet) or was answered in-line
            # (outbuf filled) — loop to park or flush accordingly.

    def _parse_one(self, conn: _Connection) -> bool:
        """Parse at most one request off the buffer and dispatch it.

        Returns True when a request (or an error response to one) was
        dispatched, False when the buffer holds no complete request.
        """
        head_end = conn.inbuf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(conn.inbuf) > MAX_HEAD_BYTES:
                self._respond_error(
                    conn, None, 431, "request header too large", close=True
                )
                return True
            return False
        head = bytes(conn.inbuf[:head_end]).decode("latin-1")
        lines = head.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            self._respond_error(conn, None, 400, "bad request line",
                                close=True)
            return True
        method, target, _version = parts
        if method not in ("GET", "POST", "DELETE"):
            self._respond_error(
                conn, None, 405, f"method {method} not allowed", close=True
            )
            return True
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            # A negative Content-Length would under-consume the buffer
            # below and desync the next pipelined request.
            self._respond_error(conn, None, 400, "bad Content-Length",
                                close=True)
            return True
        if length > MAX_BODY_BYTES:
            self._respond_error(
                conn, method, 413, "request body too large", close=True
            )
            return True
        body_start = head_end + 4
        if len(conn.inbuf) - body_start < length:
            return False  # body still arriving
        body = bytes(conn.inbuf[body_start:body_start + length])
        del conn.inbuf[:body_start + length]
        request = Request(
            method=method, target=target, headers=headers, body=body
        )
        if headers.get("connection", "").lower() == "close":
            conn.close_after_flush = True
        conn.busy = True
        self._admit(conn, request)
        return True

    def _sweep_idle(self, now: float) -> None:
        """Close connections idle past the timeout (slowloris guard).

        A connection counts as idle while it is the *client's* turn to
        talk: no request in flight and no unflushed response, or a
        response the client has stopped draining.  Requests parked on
        workers (long-polls) are exempt — their clock is the requested
        wait, not the idle timeout.
        """
        if self.idle_timeout is None:
            return
        cutoff = now - self.idle_timeout
        for conn in list(self._connections.values()):
            if conn.busy and not conn.outbuf:
                continue  # waiting on a worker, not on the client
            if conn.last_activity < cutoff:
                self._m_idle_closed.inc()
                if not self.quiet:
                    _LOG.warning(
                        "http.idle_close", client=conn.address[0],
                        idle_seconds=round(now - conn.last_activity, 1),
                    )
                self._close_connection(conn)

    def _admit(self, conn: _Connection, request: Request) -> None:
        """Run admission control; queue, answer inline, or shed."""
        started = time.perf_counter()
        path = request.path
        if request.method == "GET" and path in _INLINE_PATHS:
            # Observability is answered by the loop itself: never
            # queued behind user work, never shed, never faulted.
            response = self.router.handle(request)
            self._finish(
                _Task(conn, request, started, None, False), response
            )
            return
        tenant: Optional[str] = None
        quota_held = False
        if not path.startswith(_INTERNAL_PREFIXES):
            tenant = request.tenant[:MAX_TENANT_NAME_CHARS]
            if self.tenant_rate is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    assert self.tenant_burst is not None
                    bucket = TokenBucket(self.tenant_rate, self.tenant_burst)
                    self._buckets[tenant] = bucket
                else:
                    self._buckets.move_to_end(tenant)
                while len(self._buckets) > MAX_TRACKED_TENANTS:
                    self._buckets.popitem(last=False)
                if not bucket.try_take():
                    self._shed(
                        conn, request, "rate",
                        retry_after=bucket.retry_after(),
                    )
                    return
            if self.tenant_quota is not None:
                held = self._inflight.get(tenant, 0)
                if held >= self.tenant_quota:
                    self._shed(conn, request, "quota", retry_after=1.0)
                    return
                self._inflight[tenant] = held + 1
                quota_held = True
            self._m_admitted.labels(tenant=self._tenant_label(tenant)).inc()
        task = _Task(conn, request, started, tenant, quota_held)
        try:
            self._tasks.put_nowait(task)
        except queue.Full:
            self._release_quota(task)
            self._shed(conn, request, "queue", retry_after=1.0)
            return
        self._m_queue_depth.set(float(self._tasks.qsize()))

    def _tenant_label(self, tenant: str) -> str:
        """The metric label for a tenant, capping label cardinality."""
        if tenant in self._metric_tenants:
            return tenant
        if len(self._metric_tenants) < MAX_TENANT_LABELS:
            self._metric_tenants.add(tenant)
            return tenant
        return "other"

    def _release_quota(self, task: _Task) -> None:
        if not task.quota_held or task.tenant is None:
            return
        held = self._inflight.get(task.tenant, 0)
        if held <= 1:
            self._inflight.pop(task.tenant, None)
        else:
            self._inflight[task.tenant] = held - 1

    def _shed(
        self,
        conn: _Connection,
        request: Request,
        reason: str,
        *,
        retry_after: float,
    ) -> None:
        self._m_shed.labels(reason=reason).inc()
        if not self.quiet:
            _LOG.warning(
                "http.shed", reason=reason, method=request.method,
                path=request.path, client=conn.address[0],
            )
        response = Response.json(
            429,
            {"error": f"shed: {reason} limit reached", "reason": reason},
        )
        response.headers["Retry-After"] = str(
            max(1, int(math.ceil(retry_after)))
        )
        self._finish(
            _Task(conn, request, time.perf_counter(), None, False),
            response,
        )

    def _respond_error(
        self,
        conn: _Connection,
        method: Optional[str],
        status: int,
        message: str,
        *,
        close: bool = False,
    ) -> None:
        if close:
            conn.close_after_flush = True
        conn.busy = True
        request = Request(method=method or "GET", target="*")
        self._finish(
            _Task(conn, request, time.perf_counter(), None, False),
            Response.json(status, {"error": message}),
            count=method is not None,
        )

    def _finish(
        self, task: _Task, response: Response, *, count: bool = True
    ) -> None:
        """Serialize a response onto its connection (loop thread)."""
        self._release_quota(task)
        conn = task.conn
        if conn.sock.fileno() < 0:
            return  # client went away while the request was in flight
        elapsed = time.perf_counter() - task.started
        if count:
            self._observe(task.request.method, response, elapsed)
            if not self.quiet:
                _LOG.info(
                    "http.access",
                    method=task.request.method,
                    path=task.request.path,
                    status=response.status,
                    duration_ms=round(elapsed * 1000.0, 3),
                    client=conn.address[0],
                )
        # Only buffer the bytes here — the caller's _pump drives the
        # actual flush, keeping the flush -> parse cycle iterative.
        conn.outbuf.extend(self._serialize(response, conn))

    def _observe(
        self, method: str, response: Response, elapsed: float
    ) -> None:
        self._m_requests.labels(
            method=method, status=str(response.status)
        ).inc()
        # Long-poll park time is the *requested* wait, not service
        # latency; excluding it keeps the p99 gate meaningful.
        self._m_latency.labels(method=method).observe(
            max(0.0, elapsed - response.waited)
        )
        if response.waited > 0.0:
            self._m_longpoll.observe(response.waited)

    def _serialize(self, response: Response, conn: _Connection) -> bytes:
        reason = _STATUS_REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(
            "Connection: close" if conn.close_after_flush
            else "Connection: keep-alive"
        )
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + response.body

    def _drain_done(self) -> None:
        while True:
            try:
                task, response = self._done.popleft()
            except IndexError:
                return
            self._finish(task, response)
            self._pump(task.conn)

    # -- worker pool ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                task = self._tasks.get(timeout=0.5)
            except queue.Empty:
                if self._shutdown_requested.is_set():
                    return
                continue
            if task is None:
                return
            self._m_queue_depth.set(float(self._tasks.qsize()))
            try:
                response = self.router.handle(task.request)
            except Exception as error:  # reglint: disable=RL103
                # Last-ditch 500: a router bug must answer the client
                # and keep the worker alive, not kill the pool.
                _LOG.error(
                    "http.worker.error",
                    error=repr(error),
                    path=task.request.path,
                )
                response = Response.json(
                    500, {"error": f"internal error: {error}"}
                )
            self._done.append((task, response))
            self._wake()

    # -- compatibility -------------------------------------------------

    def observe_request(
        self, method: str, status: int, elapsed: float
    ) -> None:
        """Count and time one finished request (kept for the old
        ``ServiceHTTPServer`` surface; the loop calls ``_observe``)."""
        self._m_requests.labels(method=method, status=str(status)).inc()
        self._m_latency.labels(method=method).observe(elapsed)

    def fileno(self) -> int:
        return self._listener.fileno()

    def admission_snapshot(self) -> Dict[str, Any]:
        """Admission state for debugging (loop-thread values, racy)."""
        return {
            "connections": len(self._connections),
            "queue_depth": self._tasks.qsize(),
            "inflight": dict(self._inflight),
            "tenants_seen": sorted(self._buckets),
        }
