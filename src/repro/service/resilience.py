"""Deterministic fault injection and recovery policies for the service.

The sharded search decomposes into independent per-start shards whose
merge is proven bit-identical to single-process mining (see
:mod:`repro.service.executor`).  Independence is exactly what makes
recovery tractable: a crashed shard can be retried, a killed daemon can
resume from the shards already finished, and a shard whose retry budget
is exhausted can be *dropped* — the surviving shards still merge into a
well-defined (if incomplete) result.  This module supplies the two
policy objects that machinery runs on:

:class:`FaultPlan`
    A **deterministic, seeded** fault-injection plan.  Production code
    never constructs one (the default everywhere is ``None`` — zero
    overhead); the chaos test-suite and ``make chaos-smoke`` inject
    worker crashes, artificial shard delays, cache-write failures and
    HTTP 5xx responses through it.  Shard faults are a pure function of
    ``(shard, attempt)``, so they reproduce identically inside worker
    processes regardless of start method, scheduling or retry timing.
    Plans activate either programmatically (a service/executor argument)
    or via the ``REPRO_FAULTS`` environment variable (JSON, see
    :meth:`FaultPlan.from_env` and ``docs/robustness.md``).

:class:`RetryPolicy`
    Bounded per-shard retries with exponential backoff and
    deterministic jitter.  The jitter is derived by hashing
    ``(seed, shard, attempt)`` — no global RNG state, so concurrent
    shards never perturb each other's delays and a re-run of the same
    plan sleeps the same amounts.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjected",
    "RetryPolicy",
]

#: Environment variable holding a JSON fault plan (see
#: :meth:`FaultPlan.from_env`).
FAULTS_ENV_VAR = "REPRO_FAULTS"


class FaultInjected(RuntimeError):
    """An artificial failure raised by an active :class:`FaultPlan`.

    Deliberately a distinct type: recovery code retries it like any
    worker failure, while test assertions can tell injected faults from
    organic bugs.  Carries the :class:`FaultKind` that fired so the
    retry layer can count injections per kind; ``__reduce__`` keeps the
    kind attached when the exception crosses a process-pool boundary
    (default exception pickling would re-construct with the message
    only).
    """

    def __init__(self, message: str, kind: Optional["FaultKind"] = None):
        super().__init__(message)
        self.kind = kind

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[str, Optional["FaultKind"]]]:
        return (FaultInjected, (str(self), self.kind))


class FaultKind(str, Enum):
    """The fault taxonomy (``docs/robustness.md``)."""

    #: Raise :class:`FaultInjected` inside the worker mining the target
    #: shard — a clean per-shard crash (the shard fails, the pool lives).
    CRASH_SHARD = "crash-shard"
    #: ``os._exit`` inside the worker mining the target shard — a hard
    #: process death that breaks the whole pool (the executor rebuilds
    #: it).  Downgraded to :attr:`CRASH_SHARD` when mining in-process.
    KILL_WORKER = "kill-worker"
    #: Sleep ``delay`` seconds before mining the target shard (hung or
    #: slow shard; the lever for exercising job timeouts).
    DELAY_SHARD = "delay-shard"
    #: Make the artifact cache's next write(s) raise :class:`OSError`
    #: (disk full / permission flake).
    CACHE_WRITE_FAIL = "cache-write-fail"
    #: Make the HTTP front end answer the next request(s) with a 503
    #: (transient server failure; the client must retry through it).
    HTTP_5XX = "http-5xx"


#: Fault kinds that fire inside shard workers, keyed on (shard, attempt).
_SHARD_KINDS = frozenset(
    {FaultKind.CRASH_SHARD, FaultKind.KILL_WORKER, FaultKind.DELAY_SHARD}
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    kind:
        What breaks (:class:`FaultKind`).
    shard:
        For shard faults: the target shard (first chain condition), or
        ``None`` to match every shard.  Ignored by call-counted faults.
    times:
        How many times the fault fires.  Shard faults fire on attempts
        ``0 .. times-1`` of the target shard — so ``times=1`` crashes
        the first attempt and lets the retry succeed.  Call-counted
        faults (cache / HTTP) fire on their first ``times`` triggers.
    delay:
        Sleep duration in seconds (:attr:`FaultKind.DELAY_SHARD` only).
    """

    kind: FaultKind
    shard: Optional[int] = None
    times: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind.value}
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.times != 1:
            payload["times"] = self.times
        if self.delay:
            payload["delay"] = self.delay
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        known = {"kind", "shard", "times", "delay"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault field(s): {', '.join(sorted(unknown))}"
            )
        if "kind" not in payload:
            raise ValueError("fault spec requires a 'kind'")
        try:
            kind = FaultKind(payload["kind"])
        except ValueError:
            valid = ", ".join(k.value for k in FaultKind)
            raise ValueError(
                f"unknown fault kind {payload['kind']!r} (one of: {valid})"
            ) from None
        shard = payload.get("shard")
        return cls(
            kind=kind,
            shard=None if shard is None else int(shard),
            times=int(payload.get("times", 1)),
            delay=float(payload.get("delay", 0.0)),
        )


class FaultPlan:
    """A seeded, deterministic set of faults to inject.

    Shard faults are stateless — :meth:`shard_faults` is a pure function
    of ``(shard, attempt)``, so a plan shipped to worker processes (by
    fork inheritance or pickling) fires identically everywhere.
    Call-counted faults (cache writes, HTTP responses) consume a
    thread-safe in-process budget via :meth:`fire`.

    >>> plan = FaultPlan([FaultSpec(FaultKind.CRASH_SHARD, shard=2)])
    >>> [s.kind.value for s in plan.shard_faults(2, attempt=0)]
    ['crash-shard']
    >>> plan.shard_faults(2, attempt=1)  # the retry is allowed through
    []
    >>> plan.shard_faults(3, attempt=0)  # other shards untouched
    []
    """

    def __init__(
        self, specs: Sequence[FaultSpec] = (), *, seed: int = 0
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self._fired: Dict[FaultKind, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Shard faults (pure, cross-process)
    # ------------------------------------------------------------------

    def shard_faults(self, shard: int, attempt: int) -> List[FaultSpec]:
        """The faults that hit ``shard`` on its ``attempt``-th try."""
        return [
            spec
            for spec in self.specs
            if spec.kind in _SHARD_KINDS
            and (spec.shard is None or spec.shard == shard)
            and attempt < spec.times
        ]

    def choose_shard(self, n_shards: int) -> int:
        """A deterministic victim shard derived from the plan's seed.

        Lets chaos harnesses say "kill one seeded-random shard" without
        hard-coding a shard id:

        >>> FaultPlan(seed=7).choose_shard(10) == \\
        ...     FaultPlan(seed=7).choose_shard(10)
        True
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        digest = hashlib.sha256(
            f"fault-plan/{self.seed}".encode("ascii")
        ).digest()
        return int.from_bytes(digest[:8], "big") % n_shards

    # ------------------------------------------------------------------
    # Call-counted faults (in-process)
    # ------------------------------------------------------------------

    def fire(self, kind: FaultKind) -> bool:
        """Consume one firing of a call-counted fault.

        Returns ``True`` while the summed ``times`` budget of the
        plan's specs of this kind is unspent, ``False`` afterwards (and
        always ``False`` for kinds the plan does not contain).
        """
        budget = sum(
            spec.times for spec in self.specs if spec.kind is kind
        )
        if budget == 0:
            return False
        with self._lock:
            fired = self._fired.get(kind, 0)
            if fired >= budget:
                return False
            self._fired[kind] = fired + 1
            return True

    def fired(self, kind: FaultKind) -> int:
        """How many times a call-counted fault has fired so far."""
        with self._lock:
            return self._fired.get(kind, 0)

    # ------------------------------------------------------------------
    # Serialization / activation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Any) -> "FaultPlan":
        """Build a plan from parsed JSON.

        Accepts either the full ``{"seed": ..., "faults": [...]}`` form
        or a bare fault list.
        """
        if isinstance(payload, list):
            payload = {"faults": payload}
        if not isinstance(payload, dict):
            raise ValueError(
                "fault plan must be a JSON object or a fault list"
            )
        unknown = set(payload) - {"seed", "faults"}
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}"
            )
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("'faults' must be a list of fault specs")
        return cls(
            [FaultSpec.from_dict(spec) for spec in faults],
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset.

        ``REPRO_FAULTS`` holds the JSON of :meth:`to_dict`, e.g.::

            REPRO_FAULTS='{"seed": 7, "faults":
                [{"kind": "crash-shard", "shard": 2}]}'
        """
        env = os.environ if environ is None else environ
        text = env.get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_json(text)

    # Pickle support: the lock is per-process state, rebuilt on load so
    # a plan shipped to spawn-context workers arrives intact.
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "specs": self.specs,
            "seed": self.seed,
            "fired": dict(self._fired),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.specs = state["specs"]
        self.seed = state["seed"]
        self._fired = dict(state["fired"])
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"FaultPlan(specs={self.specs!r}, seed={self.seed})"


def _unit_float(seed: int, shard: int, attempt: int) -> float:
    """A deterministic float in [0, 1) from (seed, shard, attempt)."""
    digest = hashlib.sha256(
        f"retry-jitter/{seed}/{shard}/{attempt}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-shard retries with deterministic backoff + jitter.

    Attributes
    ----------
    max_retries:
        Extra attempts granted to each shard beyond its first (the
        *retry budget*).  ``0`` disables retries: any shard failure
        immediately counts the shard as lost.
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    backoff_max:
        Upper bound on the un-jittered delay.
    jitter:
        Fractional jitter: the delay is scaled by a deterministic
        factor in ``[1, 1 + jitter)`` derived from
        ``(seed, shard, attempt)``, decorrelating concurrent retries
        without global RNG state.
    seed:
        Jitter seed.

    >>> policy = RetryPolicy(max_retries=2, backoff_base=0.1, jitter=0.0)
    >>> policy.backoff(shard=0, attempt=0)
    0.1
    >>> policy.backoff(shard=0, attempt=1)
    0.2
    >>> jittered = RetryPolicy(backoff_base=0.1, jitter=0.5)
    >>> 0.1 <= jittered.backoff(shard=3, attempt=0) < 0.15
    True
    >>> jittered.backoff(3, 0) == jittered.backoff(3, 0)  # deterministic
    True
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0.0 or self.backoff_max < 0.0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def backoff(self, shard: int, attempt: int) -> float:
        """Seconds to wait before retrying ``shard`` after ``attempt``."""
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** attempt,
        )
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 + self.jitter * _unit_float(
            self.seed, shard, attempt
        ))

    def sleep_before_retry(self, shard: int, attempt: int) -> None:
        """Block for the computed backoff (tiny in tests, real in prod)."""
        delay = self.backoff(shard, attempt)
        if delay > 0.0:
            time.sleep(delay)
