"""On-disk LRU cache for expensive mining artifacts.

Three artifact kinds are memoized:

``index``
    A pickled :class:`~repro.core.rwave.RWaveIndex`, keyed by matrix
    content digest + gamma.  Building the index (Definition 3.1 models
    for every gene plus the max-chain tables) dominates startup cost on
    large matrices, and the same index serves *every* parameter setting
    that shares gamma — only MinG/MinC/epsilon change between typical
    sweep jobs.
``kernel``
    A pickled :class:`~repro.core.kernels.RegulationKernel` — the
    bit-packed Eq. 3 relation the miner's hot path runs on — keyed the
    same way as the index (digest + gamma determine it completely).
    Cached separately from the index so each stays small and evicts
    independently.
``result``
    A completed mining result in the ``reg-cluster/v1`` JSON schema,
    keyed by job id (which already encodes digest + all parameters).

The cache is a directory of artifact files plus a ``manifest.json``
recording sizes and last-use ordering; total bytes are bounded by
evicting least-recently-used entries.  Everything is guarded by one
lock, so HTTP threads and the execution worker can share an instance.
"""

# The cache lock deliberately serializes artifact/manifest file I/O —
# that is what keeps the LRU accounting and the on-disk state mutually
# consistent; RL303's blocking-I/O-under-lock warning is this class's
# design, not a defect (docs/robustness.md, "Concurrency model").
# reglint: disable-file=RL303

from __future__ import annotations

import json
import os
import pickle
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Union

from repro.core.kernels import RegulationKernel
from repro.core.rwave import RWaveIndex
from repro.service.resilience import FaultKind, FaultPlan

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "kernel_cache_key",
]

#: Default size bound: generous for indexes of paper-scale matrices
#: (the 2884x17 yeast index pickles to a few MB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters (observable service behaviour)."""

    index_hits: int = 0
    index_misses: int = 0
    index_stores: int = 0
    kernel_hits: int = 0
    kernel_misses: int = 0
    kernel_stores: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_stores: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "index_stores": self.index_stores,
            "kernel_hits": self.kernel_hits,
            "kernel_misses": self.kernel_misses,
            "kernel_stores": self.kernel_stores,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_stores": self.result_stores,
            "evictions": self.evictions,
        }


@dataclass
class _ManifestEntry:
    file: str
    size: int
    last_used: int = 0
    #: the parent matrix digest a delta-updated artifact was derived
    #: from (``None`` for cold-built artifacts) — lineage provenance,
    #: surfaced through :meth:`ArtifactCache.derived_from`
    parent_digest: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "file": self.file,
            "size": self.size,
            "last_used": self.last_used,
        }
        if self.parent_digest is not None:
            payload["parent_digest"] = self.parent_digest
        return payload


#: Index/kernel keys embed the matrix digest; results do not.
_ARTIFACT_KEY = re.compile(r"^(?:index|kernel)-([0-9a-f]{64})-gamma-")


def _key_digest(key: str) -> Optional[str]:
    match = _ARTIFACT_KEY.match(key)
    return match.group(1) if match else None


def _index_key(matrix_digest: str, gamma: float) -> str:
    return f"index-{matrix_digest}-gamma-{float(gamma)!r}"


def _kernel_key(matrix_digest: str, gamma: float) -> str:
    return f"kernel-{matrix_digest}-gamma-{float(gamma)!r}"


def kernel_cache_key(matrix_digest: str, gamma: float) -> str:
    """The cache key of a kernel artifact — doubles as the fleet's
    shard-affinity token: a node advertising this key already built
    the (matrix, gamma) kernel (docs/distributed.md)."""
    return _kernel_key(matrix_digest, gamma)


def _result_key(job_id: str) -> str:
    return f"result-{job_id}"


class ArtifactCache:
    """LRU-bounded artifact store under one directory.

    Parameters
    ----------
    root:
        Cache directory (created if absent).
    max_bytes:
        Total artifact size bound; least-recently-used entries are
        evicted when an insertion would exceed it.  The entry being
        inserted is never evicted by its own insertion, so a single
        oversized artifact still caches (as the sole entry).
    fault_plan:
        Chaos-testing hook: an active plan with ``cache-write-fail``
        faults makes :meth:`_store` raise :class:`OSError`, simulating
        a full or flaky disk.  ``None`` (production) adds no overhead.
        The service treats cache writes as best-effort, so an injected
        write failure must never fail a job (``docs/robustness.md``).
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        fault_plan: Optional[FaultPlan] = None,
        fault_observer: Optional[Callable[[FaultKind], None]] = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.fault_plan = fault_plan
        #: notified with the :class:`FaultKind` of every fault this
        #: cache fires (metrics seam; the injected error still raises).
        self.fault_observer = fault_observer
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._clock = 0
        self._manifest: Dict[str, _ManifestEntry] = {}
        #: secondary indexes over the manifest — matrix digest -> keys
        #: of its index/kernel artifacts, and parent digest -> keys of
        #: artifacts delta-derived from it.  Maintained on every
        #: insert/evict/drop so lineage lookups never scan the manifest.
        self._by_digest: Dict[str, Set[str]] = {}
        self._by_parent: Dict[str, Set[str]] = {}
        # Construction is single-threaded, but the index helpers are
        # shared with locked paths — hold the (reentrant) lock so every
        # mutation of the secondary indexes is under it.
        with self._lock:
            self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def _load_manifest(self) -> None:
        try:
            payload = json.loads(self._manifest_path.read_text("utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return
        for key, entry in payload.get("entries", {}).items():
            if (self.root / entry["file"]).exists():
                parent = entry.get("parent_digest")
                self._manifest[key] = _ManifestEntry(
                    file=entry["file"],
                    size=int(entry["size"]),
                    last_used=int(entry.get("last_used", 0)),
                    parent_digest=None if parent is None else str(parent),
                )
                self._index_entry(key)
        if self._manifest:
            self._clock = max(e.last_used for e in self._manifest.values())

    def _save_manifest(self) -> None:
        payload = {
            "entries": {
                key: entry.to_dict() for key, entry in self._manifest.items()
            }
        }
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self._manifest_path)

    # ------------------------------------------------------------------
    # Secondary indexes (matrix digest / parent digest -> keys)
    # ------------------------------------------------------------------

    def _index_entry(self, key: str) -> None:
        """Register one manifest entry in the digest/parent indexes."""
        digest = _key_digest(key)
        if digest is not None:
            self._by_digest.setdefault(digest, set()).add(key)
        parent = self._manifest[key].parent_digest
        if parent is not None:
            self._by_parent.setdefault(parent, set()).add(key)

    def _unindex_entry(self, key: str, entry: _ManifestEntry) -> None:
        """Drop one (removed) manifest entry from the secondary indexes."""
        digest = _key_digest(key)
        if digest is not None:
            bucket = self._by_digest.get(digest)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_digest[digest]
        if entry.parent_digest is not None:
            bucket = self._by_parent.get(entry.parent_digest)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_parent[entry.parent_digest]

    def _forget(self, key: str) -> Optional[_ManifestEntry]:
        """Remove one key from manifest + indexes (file left to caller)."""
        entry = self._manifest.pop(key, None)
        if entry is not None:
            self._unindex_entry(key, entry)
        return entry

    def artifacts_for_digest(self, matrix_digest: str) -> List[str]:
        """Cached index/kernel keys of one matrix (no manifest scan)."""
        with self._lock:
            return sorted(self._by_digest.get(matrix_digest, ()))

    def derived_from(self, parent_digest: str) -> List[str]:
        """Keys of artifacts delta-derived from ``parent_digest``.

        Children are self-contained: the parent artifact is only an
        input at *build* time, so evicting a parent never invalidates
        the artifacts derived from it — this lookup exists for
        provenance and cache-warming decisions, not liveness.
        """
        with self._lock:
            return sorted(self._by_parent.get(parent_digest, ()))

    # ------------------------------------------------------------------
    # LRU core
    # ------------------------------------------------------------------

    def _touch(self, key: str) -> None:
        self._clock += 1
        self._manifest[key].last_used = self._clock

    def _bump(self, counter: str) -> None:
        """Increment one :class:`CacheStats` field under the cache lock.

        Counters are written concurrently from HTTP handler threads
        (result lookups) and the executor thread (index/kernel reuse);
        an unlocked ``+=`` is a read-modify-write race that loses
        updates (reglint RL301).
        """
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def total_bytes(self) -> int:
        """Bytes currently accounted to cached artifacts."""
        with self._lock:
            return sum(entry.size for entry in self._manifest.values())

    def _evict_for(self, incoming_key: str) -> None:
        """Drop LRU entries until the bound holds (sparing the newcomer)."""
        while (
            sum(e.size for e in self._manifest.values()) > self.max_bytes
        ):
            victims = [k for k in self._manifest if k != incoming_key]
            if not victims:
                break
            victim = min(victims, key=lambda k: self._manifest[k].last_used)
            entry = self._forget(victim)
            if entry is None:
                continue
            try:
                (self.root / entry.file).unlink()
            except FileNotFoundError:
                pass
            self.stats.evictions += 1

    def _store(
        self,
        key: str,
        filename: str,
        data: bytes,
        *,
        parent_digest: Optional[str] = None,
    ) -> None:
        if self.fault_plan is not None and self.fault_plan.fire(
            FaultKind.CACHE_WRITE_FAIL
        ):
            if self.fault_observer is not None:
                self.fault_observer(FaultKind.CACHE_WRITE_FAIL)
            raise OSError(
                f"injected {FaultKind.CACHE_WRITE_FAIL.value} storing {key}"
            )
        with self._lock:
            path = self.root / filename
            tmp = path.with_suffix(path.suffix + ".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, path)
            self._forget(key)
            self._manifest[key] = _ManifestEntry(
                file=filename, size=len(data), parent_digest=parent_digest
            )
            self._index_entry(key)
            self._touch(key)
            self._evict_for(key)
            self._save_manifest()

    def _load(self, key: str) -> Optional[bytes]:
        with self._lock:
            entry = self._manifest.get(key)
            if entry is None:
                return None
            try:
                data = (self.root / entry.file).read_bytes()
            except FileNotFoundError:
                self._forget(key)
                self._save_manifest()
                return None
            self._touch(key)
            self._save_manifest()
            return data

    def keys(self) -> Dict[str, int]:
        """Mapping of cached key -> artifact size in bytes."""
        with self._lock:
            return {k: e.size for k, e in self._manifest.items()}

    # ------------------------------------------------------------------
    # RWave indexes
    # ------------------------------------------------------------------

    def get_index(
        self, matrix_digest: str, gamma: float
    ) -> Optional[RWaveIndex]:
        """A cached index for (digest, gamma), or ``None`` on a miss."""
        key = _index_key(matrix_digest, gamma)
        data = self._load(key)
        if data is None:
            self._bump("index_misses")
            return None
        try:
            index = pickle.loads(data)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError):
            # A corrupt or stale artifact is a miss, not an error.
            with self._lock:
                self._forget(key)
                self._save_manifest()
            self._bump("index_misses")
            return None
        if not isinstance(index, RWaveIndex):
            self._bump("index_misses")
            return None
        self._bump("index_hits")
        return index

    def put_index(
        self,
        matrix_digest: str,
        gamma: float,
        index: RWaveIndex,
        *,
        parent_digest: Optional[str] = None,
    ) -> None:
        """Memoize a built index under (digest, gamma).

        ``parent_digest`` records lineage when the index was
        delta-updated from another matrix's index (docs/incremental.md).
        """
        key = _index_key(matrix_digest, gamma)
        data = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        self._store(key, f"{key}.pkl", data, parent_digest=parent_digest)
        self._bump("index_stores")

    # ------------------------------------------------------------------
    # Regulation kernels
    # ------------------------------------------------------------------

    def get_kernel(
        self, matrix_digest: str, gamma: float
    ) -> Optional[RegulationKernel]:
        """A cached kernel for (digest, gamma), or ``None`` on a miss."""
        key = _kernel_key(matrix_digest, gamma)
        data = self._load(key)
        if data is None:
            self._bump("kernel_misses")
            return None
        try:
            kernel = pickle.loads(data)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError):
            # A corrupt or stale artifact is a miss, not an error.
            with self._lock:
                self._forget(key)
                self._save_manifest()
            self._bump("kernel_misses")
            return None
        if not isinstance(kernel, RegulationKernel):
            self._bump("kernel_misses")
            return None
        self._bump("kernel_hits")
        return kernel

    def put_kernel(
        self,
        matrix_digest: str,
        gamma: float,
        kernel: RegulationKernel,
        *,
        parent_digest: Optional[str] = None,
    ) -> None:
        """Memoize a built kernel under (digest, gamma).

        ``parent_digest`` records lineage when the kernel was
        delta-updated from another matrix's kernel (docs/incremental.md).
        """
        key = _kernel_key(matrix_digest, gamma)
        data = pickle.dumps(kernel, protocol=pickle.HIGHEST_PROTOCOL)
        self._store(key, f"{key}.pkl", data, parent_digest=parent_digest)
        self._bump("kernel_stores")

    def get_kernel_bytes(
        self, matrix_digest: str, gamma: float
    ) -> Optional[bytes]:
        """The raw pickled kernel artifact, or ``None`` on a miss.

        The fleet artifact-exchange seam: the coordinator serves this
        verbatim over ``GET /artifacts/kernel/...`` and a node stores
        it straight into its own cache via :meth:`put_kernel_bytes` —
        no unpickle/re-pickle round trip on either side
        (docs/distributed.md).  Counted as a kernel hit/miss like
        :meth:`get_kernel`.
        """
        data = self._load(_kernel_key(matrix_digest, gamma))
        self._bump("kernel_misses" if data is None else "kernel_hits")
        return data

    def put_kernel_bytes(
        self, matrix_digest: str, gamma: float, data: bytes
    ) -> None:
        """Store an already-pickled kernel artifact under (digest, gamma)."""
        key = _kernel_key(matrix_digest, gamma)
        self._store(key, f"{key}.pkl", data)
        self._bump("kernel_stores")

    def kernel_keys(self) -> List[str]:
        """Cache keys of every kernel artifact currently held.

        The fleet node advertises these in its lease requests so the
        coordinator can route shards of the same (matrix, gamma) back
        to it — the shard-affinity seam (docs/distributed.md).
        """
        with self._lock:
            return sorted(
                key for key in self._manifest if key.startswith("kernel-")
            )

    # ------------------------------------------------------------------
    # Completed results
    # ------------------------------------------------------------------

    def get_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """A cached ``reg-cluster/v1`` payload for a job id, or ``None``."""
        data = self._load(_result_key(job_id))
        if data is None:
            self._bump("result_misses")
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._bump("result_misses")
            return None
        self._bump("result_hits")
        return dict(payload)

    def put_result(self, job_id: str, payload: Dict[str, Any]) -> None:
        """Memoize a completed result payload under its job id."""
        key = _result_key(job_id)
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._store(key, f"{key}.json", data)
        self._bump("result_stores")

    def drop_result(self, job_id: str) -> None:
        """Forget a cached result (used when a job record is deleted)."""
        self.drop_artifact(_result_key(job_id))

    def drop_artifact(self, key: str) -> None:
        """Evict one artifact by cache key (no-op when absent).

        Safe on any key — including a parent whose delta-derived
        children are still cached: children are self-contained
        (:meth:`derived_from`), so dropping the parent only costs the
        next revision a cold build, never correctness.
        """
        with self._lock:
            entry = self._forget(key)
            if entry is not None:
                try:
                    (self.root / entry.file).unlink()
                except FileNotFoundError:
                    pass
                self._save_manifest()
