"""repro.service — a job-oriented mining daemon.

The service layer turns the one-shot miner into long-lived
infrastructure: persistent jobs with deterministic ids
(:mod:`repro.service.jobs`), a sharded multiprocessing executor whose
merged output is bit-identical to single-process mining
(:mod:`repro.service.executor`), an LRU artifact cache for RWave
indexes and completed results (:mod:`repro.service.cache`), and a
stdlib JSON-over-HTTP front end (:mod:`repro.service.http`).  See
``docs/service.md`` for the full tour.
"""

from repro.service.cache import ArtifactCache, CacheStats, DEFAULT_MAX_BYTES
from repro.service.executor import merge_shard_results, mine_sharded
from repro.service.http import (
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
    serve,
)
from repro.service.jobs import (
    JobRecord,
    JobState,
    JobStore,
    compute_job_id,
    parameters_from_dict,
    parameters_to_dict,
)
from repro.service.service import MiningService

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "JobRecord",
    "JobState",
    "JobStore",
    "MiningService",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "compute_job_id",
    "merge_shard_results",
    "mine_sharded",
    "parameters_from_dict",
    "parameters_to_dict",
    "serve",
]
