"""repro.service — a job-oriented mining daemon.

The service layer turns the one-shot miner into long-lived
infrastructure: persistent jobs with deterministic ids
(:mod:`repro.service.jobs`), a sharded multiprocessing executor whose
merged output is bit-identical to single-process mining
(:mod:`repro.service.executor`), an LRU artifact cache for RWave
indexes and completed results (:mod:`repro.service.cache`), a
stdlib JSON-over-HTTP front end (:mod:`repro.service.http`), the
fault-injection / retry / checkpoint machinery that keeps all of it
honest under crashes (:mod:`repro.service.resilience`,
``docs/robustness.md``), and a distributed work-queue fleet that
stretches the shard decomposition across machines
(:mod:`repro.service.fleet`, ``docs/distributed.md``).  See
``docs/service.md`` for the full tour.
"""

from repro.service.cache import ArtifactCache, CacheStats, DEFAULT_MAX_BYTES
from repro.service.executor import (
    ShardedOutcome,
    ShardFailure,
    merge_shard_results,
    mine_sharded,
    mine_sharded_outcome,
)
from repro.service.fleet import (
    FleetNode,
    FleetState,
    ShardLease,
    shard_from_wire,
    shard_to_wire,
)
from repro.service.frontdoor import FrontDoorServer
from repro.service.http import (
    ServiceBusy,
    ServiceClient,
    ServiceError,
    ServiceHTTPServer,
    serve,
)
from repro.service.jobs import (
    RESULT_STATES,
    JobRecord,
    JobState,
    JobStore,
    compute_job_id,
    parameters_from_dict,
    parameters_to_dict,
)
from repro.service.resilience import (
    FaultInjected,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.service.service import MiningService

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "FaultInjected",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FleetNode",
    "FleetState",
    "FrontDoorServer",
    "JobRecord",
    "JobState",
    "JobStore",
    "MiningService",
    "RESULT_STATES",
    "RetryPolicy",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ShardFailure",
    "ShardLease",
    "ShardedOutcome",
    "compute_job_id",
    "merge_shard_results",
    "mine_sharded",
    "mine_sharded_outcome",
    "parameters_from_dict",
    "parameters_to_dict",
    "serve",
    "shard_from_wire",
    "shard_to_wire",
]
