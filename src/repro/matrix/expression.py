"""Expression-matrix container.

The :class:`ExpressionMatrix` is the substrate every other subsystem is
built on.  It wraps a dense ``float64`` numpy array of shape
``(n_genes, n_conditions)`` together with gene and condition names, and
offers the handful of views the reg-cluster machinery needs: row access by
name or index, projections onto gene/condition subsets, and per-gene
summary statistics.

The container is deliberately immutable after construction: the mining
algorithm pre-computes per-gene index structures (see
:mod:`repro.core.rwave`) that would be invalidated by in-place mutation.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = ["ExpressionMatrix"]

GeneKey = Union[int, str]
ConditionKey = Union[int, str]


class ExpressionMatrix:
    """A genes x conditions matrix of expression levels.

    Parameters
    ----------
    values:
        Anything convertible to a 2-D ``float64`` numpy array with shape
        ``(n_genes, n_conditions)``.
    gene_names:
        Optional sequence of unique gene identifiers.  Defaults to
        ``g1 .. gN`` (matching the paper's notation).
    condition_names:
        Optional sequence of unique condition identifiers.  Defaults to
        ``c1 .. cM``.

    Raises
    ------
    ValueError
        If the array is not 2-D, contains non-finite entries, or the name
        sequences do not match the array shape or contain duplicates.

    Examples
    --------
    >>> m = ExpressionMatrix([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]])
    >>> m.shape
    (2, 3)
    >>> m.gene_names[0], m.condition_names[-1]
    ('g1', 'c3')
    """

    def __init__(
        self,
        values: ArrayLike,
        gene_names: Optional[Sequence[str]] = None,
        condition_names: Optional[Sequence[str]] = None,
    ) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(
                f"expression values must be 2-D, got shape {array.shape}"
            )
        if array.size and not np.all(np.isfinite(array)):
            raise ValueError(
                "expression values must be finite; impute or drop missing "
                "values first (see repro.matrix.io.impute_missing)"
            )
        self._values = array
        self._values.setflags(write=False)
        n_genes, n_conditions = array.shape

        self._gene_names = self._checked_names(gene_names, n_genes, "g", "gene")
        self._condition_names = self._checked_names(
            condition_names, n_conditions, "c", "condition"
        )
        self._gene_index: Mapping[str, int] = {
            name: i for i, name in enumerate(self._gene_names)
        }
        self._condition_index: Mapping[str, int] = {
            name: j for j, name in enumerate(self._condition_names)
        }

    @staticmethod
    def _checked_names(
        names: Optional[Sequence[str]], count: int, prefix: str, kind: str
    ) -> Tuple[str, ...]:
        if names is None:
            return tuple(f"{prefix}{i + 1}" for i in range(count))
        resolved = tuple(str(n) for n in names)
        if len(resolved) != count:
            raise ValueError(
                f"expected {count} {kind} names, got {len(resolved)}"
            )
        if len(set(resolved)) != len(resolved):
            raise ValueError(f"{kind} names must be unique")
        return resolved

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def values(self) -> NDArray[np.float64]:
        """The underlying (read-only) ``float64`` array."""
        return self._values

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_genes, n_conditions)``."""
        return (int(self._values.shape[0]), int(self._values.shape[1]))

    @property
    def n_genes(self) -> int:
        return int(self._values.shape[0])

    @property
    def n_conditions(self) -> int:
        return int(self._values.shape[1])

    @property
    def gene_names(self) -> Tuple[str, ...]:
        return self._gene_names

    @property
    def condition_names(self) -> Tuple[str, ...]:
        return self._condition_names

    def __repr__(self) -> str:
        return (
            f"ExpressionMatrix(n_genes={self.n_genes}, "
            f"n_conditions={self.n_conditions})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExpressionMatrix):
            return NotImplemented
        return (
            self._gene_names == other._gene_names
            and self._condition_names == other._condition_names
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    # ------------------------------------------------------------------
    # Name <-> index resolution
    # ------------------------------------------------------------------

    def gene_index(self, gene: GeneKey) -> int:
        """Resolve a gene name or integer index to an integer index."""
        if isinstance(gene, (int, np.integer)):
            index = int(gene)
            if not -self.n_genes <= index < self.n_genes:
                raise IndexError(f"gene index {index} out of range")
            return index % self.n_genes
        try:
            return self._gene_index[gene]
        except KeyError:
            raise KeyError(f"unknown gene {gene!r}") from None

    def condition_index(self, condition: ConditionKey) -> int:
        """Resolve a condition name or integer index to an integer index."""
        if isinstance(condition, (int, np.integer)):
            index = int(condition)
            if not -self.n_conditions <= index < self.n_conditions:
                raise IndexError(f"condition index {index} out of range")
            return index % self.n_conditions
        try:
            return self._condition_index[condition]
        except KeyError:
            raise KeyError(f"unknown condition {condition!r}") from None

    def gene_indices(self, genes: Iterable[GeneKey]) -> NDArray[np.intp]:
        """Resolve an iterable of gene keys to an index array."""
        return np.asarray([self.gene_index(g) for g in genes], dtype=np.intp)

    def condition_indices(
        self, conditions: Iterable[ConditionKey]
    ) -> NDArray[np.intp]:
        """Resolve an iterable of condition keys to an index array."""
        return np.asarray(
            [self.condition_index(c) for c in conditions], dtype=np.intp
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def row(self, gene: GeneKey) -> NDArray[np.float64]:
        """Expression profile of one gene across all conditions."""
        return self._values[self.gene_index(gene)]

    def column(self, condition: ConditionKey) -> NDArray[np.float64]:
        """Expression levels of all genes under one condition."""
        return self._values[:, self.condition_index(condition)]

    def value(self, gene: GeneKey, condition: ConditionKey) -> float:
        """Single expression level ``d_{i,c}``."""
        return float(
            self._values[self.gene_index(gene), self.condition_index(condition)]
        )

    def submatrix(
        self,
        genes: Optional[Iterable[GeneKey]] = None,
        conditions: Optional[Iterable[ConditionKey]] = None,
    ) -> "ExpressionMatrix":
        """Project onto a subset of genes and/or conditions.

        The order of the returned rows/columns follows the order of the
        given keys, which makes this suitable for materializing a
        reg-cluster's submatrix in chain order.
        """
        if genes is None:
            gene_idx = np.arange(self.n_genes, dtype=np.intp)
        else:
            gene_idx = self.gene_indices(genes)
        if conditions is None:
            cond_idx = np.arange(self.n_conditions, dtype=np.intp)
        else:
            cond_idx = self.condition_indices(conditions)
        return ExpressionMatrix(
            self._values[np.ix_(gene_idx, cond_idx)],
            [self._gene_names[i] for i in gene_idx],
            [self._condition_names[j] for j in cond_idx],
        )

    # ------------------------------------------------------------------
    # Per-gene statistics used by the regulation model
    # ------------------------------------------------------------------

    def gene_ranges(self) -> NDArray[np.float64]:
        """Per-gene expression range ``max_j d_ij - min_j d_ij`` (Eq. 4)."""
        if self.n_conditions == 0:
            return np.zeros(self.n_genes, dtype=np.float64)
        return np.asarray(
            self._values.max(axis=1) - self._values.min(axis=1),
            dtype=np.float64,
        )

    def describe(self) -> Mapping[str, float]:
        """Whole-matrix summary statistics (for dataset reports)."""
        v = self._values
        if v.size == 0:
            return {"min": float("nan"), "max": float("nan"),
                    "mean": float("nan"), "std": float("nan")}
        return {
            "min": float(v.min()),
            "max": float(v.max()),
            "mean": float(v.mean()),
            "std": float(v.std()),
        }
