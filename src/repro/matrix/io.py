"""Reading and writing expression matrices.

The on-disk format is the tab-delimited layout used by the benchmark yeast
dataset the paper evaluates on (one header row of condition names, one row
per gene, first column the gene name).  Missing values — common in real
microarray exports — may be written as an empty field, ``NA``, ``NaN`` or
``?`` and are imputed before an :class:`~repro.matrix.expression.ExpressionMatrix`
is constructed, because the reg-cluster model is defined over complete
profiles.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "load_expression_matrix",
    "save_expression_matrix",
    "parse_expression_text",
    "format_expression_text",
    "impute_missing",
]

_MISSING_TOKENS = {"", "na", "nan", "null", "?", "-"}


def _parse_cell(token: str) -> float:
    stripped = token.strip()
    if stripped.lower() in _MISSING_TOKENS:
        return float("nan")
    return float(stripped)


def parse_expression_text(
    text: str,
    *,
    delimiter: str = "\t",
    impute: str = "gene_mean",
) -> ExpressionMatrix:
    """Parse a tab-delimited expression table from a string.

    Parameters
    ----------
    text:
        Header row of condition names (first field is an arbitrary corner
        label and is ignored), then one row per gene.
    delimiter:
        Field separator, tab by default.
    impute:
        Strategy for missing values, see :func:`impute_missing`.

    Raises
    ------
    ValueError
        On an empty table, ragged rows, or duplicate names.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty expression table")
    header = lines[0].split(delimiter)
    condition_names = [h.strip() for h in header[1:]]
    if not condition_names:
        raise ValueError("expression table has no condition columns")

    gene_names: List[str] = []
    rows: List[List[float]] = []
    for lineno, line in enumerate(lines[1:], start=2):
        fields = line.split(delimiter)
        if len(fields) != len(condition_names) + 1:
            raise ValueError(
                f"line {lineno}: expected {len(condition_names) + 1} fields, "
                f"got {len(fields)}"
            )
        gene_names.append(fields[0].strip())
        rows.append([_parse_cell(tok) for tok in fields[1:]])
    if not rows:
        raise ValueError("expression table has no gene rows")

    values = impute_missing(np.asarray(rows, dtype=np.float64), strategy=impute)
    return ExpressionMatrix(values, gene_names, condition_names)


def load_expression_matrix(
    path: Union[str, Path],
    *,
    delimiter: str = "\t",
    impute: str = "gene_mean",
) -> ExpressionMatrix:
    """Load a matrix from a tab-delimited file (yeast benchmark format)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_expression_text(
            handle.read(), delimiter=delimiter, impute=impute
        )


def format_expression_text(
    matrix: ExpressionMatrix,
    *,
    delimiter: str = "\t",
    corner_label: str = "gene",
    float_format: str = "%.6g",
) -> str:
    """Render a matrix back into the tab-delimited text format."""
    buffer = io.StringIO()
    buffer.write(delimiter.join([corner_label, *matrix.condition_names]))
    buffer.write("\n")
    for name, row in zip(matrix.gene_names, matrix.values):
        cells = [float_format % v for v in row]
        buffer.write(delimiter.join([name, *cells]))
        buffer.write("\n")
    return buffer.getvalue()


def save_expression_matrix(
    matrix: ExpressionMatrix,
    path: Union[str, Path],
    *,
    delimiter: str = "\t",
    float_format: str = "%.6g",
) -> None:
    """Write a matrix to a tab-delimited file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            format_expression_text(
                matrix, delimiter=delimiter, float_format=float_format
            )
        )


def impute_missing(
    values: ArrayLike,
    *,
    strategy: str = "gene_mean",
    fill_value: Optional[float] = None,
) -> NDArray[np.float64]:
    """Replace NaN entries so the matrix is complete.

    Strategies
    ----------
    ``"gene_mean"``
        Replace a gene's missing entries with the mean of its observed
        entries (the standard microarray pre-processing choice).  A gene
        with no observed entry at all is filled with the global mean.
    ``"drop"``
        Remove gene rows that contain any missing entry.
    ``"constant"``
        Replace with ``fill_value`` (required).
    ``"error"``
        Raise :class:`ValueError` if anything is missing.
    """
    if strategy not in ("gene_mean", "drop", "constant", "error"):
        raise ValueError(f"unknown imputation strategy {strategy!r}")
    data = np.array(values, dtype=np.float64, copy=True)
    mask = np.isnan(data)
    if not mask.any():
        return data

    if strategy == "error":
        raise ValueError(f"matrix contains {int(mask.sum())} missing values")
    if strategy == "drop":
        keep = ~mask.any(axis=1)
        return np.asarray(data[keep], dtype=np.float64)
    if strategy == "constant":
        if fill_value is None:
            raise ValueError("strategy 'constant' requires fill_value")
        data[mask] = fill_value
        return data
    if strategy == "gene_mean":
        observed = np.where(mask, 0.0, data)
        counts = (~mask).sum(axis=1)
        overall = observed.sum() / max(int((~mask).sum()), 1)
        with np.errstate(invalid="ignore"):
            gene_means = np.where(
                counts > 0, observed.sum(axis=1) / np.maximum(counts, 1), overall
            )
        fill = np.broadcast_to(gene_means[:, None], data.shape)
        data[mask] = fill[mask]
        return data
    raise AssertionError("unreachable")  # pragma: no cover
