"""Matrix transformations used by prior pattern-based models.

The paper's introduction (Eq. 1 and Eq. 2) explains how earlier systems
reduce one pattern family to another by transforming the whole dataset:

* pCluster / delta-cluster assume scaling patterns become shifting patterns
  after a *logarithm* of the data (Eq. 1);
* TriCluster assumes shifting patterns become scaling patterns after an
  *exponential* of the data (Eq. 2).

These transforms are provided both because the baselines need them and
because tests demonstrate the paper's core point: no single global
transform linearizes a combined shifting-and-scaling pattern.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "log_transform",
    "exp_transform",
    "standardize_genes",
    "rank_transform",
]


def log_transform(
    matrix: ExpressionMatrix, *, base: float = np.e, shift: Optional[float] = None
) -> ExpressionMatrix:
    """Element-wise ``log(d + shift)`` (Eq. 1 pre-processing).

    Real expression data may contain non-positive values, so a ``shift``
    is added first; by default the smallest shift making every entry
    strictly positive (plus one) is chosen automatically.
    """
    values = matrix.values
    if shift is None:
        minimum = float(values.min()) if values.size else 0.0
        shift = 1.0 - minimum if minimum <= 0 else 0.0
    shifted = values + shift
    if shifted.size and shifted.min() <= 0:
        raise ValueError(
            f"log transform undefined: min(d + {shift}) = {shifted.min()} <= 0"
        )
    return ExpressionMatrix(
        np.log(shifted) / np.log(base),
        matrix.gene_names,
        matrix.condition_names,
    )


def exp_transform(matrix: ExpressionMatrix, *, base: float = np.e) -> ExpressionMatrix:
    """Element-wise ``base ** d`` (Eq. 2 pre-processing).

    Values are clipped-checked rather than silently overflowed: very large
    inputs raise instead of producing ``inf``.
    """
    values = matrix.values
    if values.size and float(values.max()) * np.log(base) > 700.0:
        raise ValueError(
            "exp transform would overflow float64; rescale the data first"
        )
    return ExpressionMatrix(
        np.power(base, values), matrix.gene_names, matrix.condition_names
    )


def standardize_genes(matrix: ExpressionMatrix) -> ExpressionMatrix:
    """Per-gene z-score normalization (classic full-space pre-processing).

    Genes with zero variance are mapped to all-zero rows rather than NaN.
    """
    values = matrix.values
    means = values.mean(axis=1, keepdims=True)
    stds = values.std(axis=1, keepdims=True)
    safe = np.where(stds == 0, 1.0, stds)
    z = (values - means) / safe
    z = np.where(stds == 0, 0.0, z)
    return ExpressionMatrix(z, matrix.gene_names, matrix.condition_names)


def rank_transform(matrix: ExpressionMatrix) -> ExpressionMatrix:
    """Per-gene rank transform (the view tendency-based models work on).

    Ties receive their average rank, matching ``scipy.stats.rankdata``
    semantics without the import.
    """
    values = matrix.values
    n = matrix.n_conditions
    ranks = np.empty_like(values)
    for i in range(matrix.n_genes):
        order = np.argsort(values[i], kind="stable")
        rank_row = np.empty(n, dtype=np.float64)
        rank_row[order] = np.arange(1, n + 1, dtype=np.float64)
        # average ranks over tied groups
        sorted_vals = values[i][order]
        start = 0
        for end in range(1, n + 1):
            if end == n or sorted_vals[end] != sorted_vals[start]:
                if end - start > 1:
                    avg = (start + 1 + end) / 2.0
                    rank_row[order[start:end]] = avg
                start = end
        ranks[i] = rank_row
    return ExpressionMatrix(ranks, matrix.gene_names, matrix.condition_names)
