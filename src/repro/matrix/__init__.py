"""Expression-matrix substrate: container, I/O and transforms."""

from repro.matrix.expression import ExpressionMatrix
from repro.matrix.io import (
    format_expression_text,
    impute_missing,
    load_expression_matrix,
    parse_expression_text,
    save_expression_matrix,
)
from repro.matrix.summary import MatrixSummary, matrix_digest, summarize
from repro.matrix.transform import (
    exp_transform,
    log_transform,
    rank_transform,
    standardize_genes,
)

__all__ = [
    "ExpressionMatrix",
    "load_expression_matrix",
    "save_expression_matrix",
    "parse_expression_text",
    "format_expression_text",
    "impute_missing",
    "log_transform",
    "exp_transform",
    "standardize_genes",
    "rank_transform",
    "MatrixSummary",
    "matrix_digest",
    "summarize",
]
