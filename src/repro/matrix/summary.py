"""Dataset profiling: quick-look statistics before mining.

Choosing mining parameters needs a feel for the data: per-gene dynamic
ranges (which set the regulation thresholds), per-condition level shifts,
and how concentrated the expression values are.  ``summarize`` computes a
compact report; the CLI's ``describe`` subcommand prints it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.matrix.expression import ExpressionMatrix

__all__ = ["MatrixSummary", "matrix_digest", "summarize"]


def matrix_digest(matrix: ExpressionMatrix) -> str:
    """Content hash of a matrix: shape, names and exact float64 values.

    Two matrices share a digest exactly when they are equal as
    :class:`~repro.matrix.expression.ExpressionMatrix` objects (same
    names, bit-identical values).  The digest keys the
    :mod:`repro.service.cache` artifact cache and job identities, and is
    reported by ``reg-cluster describe``.

    >>> from repro.matrix.expression import ExpressionMatrix
    >>> m = ExpressionMatrix([[1.0, 2.0], [3.0, 4.0]])
    >>> matrix_digest(m) == matrix_digest(
    ...     ExpressionMatrix([[1.0, 2.0], [3.0, 4.0]])
    ... )
    True
    >>> matrix_digest(m) == matrix_digest(
    ...     ExpressionMatrix([[1.0, 2.0], [3.0, 4.5]])
    ... )
    False
    >>> len(matrix_digest(m)), matrix_digest(m)[:8]
    (64, 'de4175ba')
    """
    hasher = hashlib.sha256()
    hasher.update(b"reg-cluster-matrix/v1")
    hasher.update(f"{matrix.n_genes}x{matrix.n_conditions}".encode("ascii"))
    for names in (matrix.gene_names, matrix.condition_names):
        for name in names:
            hasher.update(b"\x00")
            hasher.update(name.encode("utf-8"))
        hasher.update(b"\x01")
    hasher.update(np.ascontiguousarray(matrix.values).tobytes())
    return hasher.hexdigest()


def _quantiles(values: NDArray[np.float64]) -> Tuple[float, float, float]:
    q25, q50, q75 = np.quantile(values, [0.25, 0.5, 0.75])
    return float(q25), float(q50), float(q75)


@dataclass(frozen=True)
class MatrixSummary:
    """Headline statistics of one expression matrix."""

    n_genes: int
    n_conditions: int
    value_min: float
    value_max: float
    value_mean: float
    value_std: float
    #: quartiles of the per-gene expression ranges (Eq. 4 inputs)
    gene_range_quartiles: Tuple[float, float, float]
    #: quartiles of per-condition means (level shifts across conditions)
    condition_mean_quartiles: Tuple[float, float, float]
    n_constant_genes: int
    #: sha256 content hash (see :func:`matrix_digest`)
    digest: str = ""

    def suggested_gamma_threshold(self, gamma: float) -> float:
        """Median per-gene regulation threshold at a given gamma."""
        return gamma * self.gene_range_quartiles[1]

    def render(self) -> str:
        rows = [
            ["genes x conditions", f"{self.n_genes} x {self.n_conditions}"],
            ["value range", f"[{self.value_min:.4g}, {self.value_max:.4g}]"],
            ["value mean +- std",
             f"{self.value_mean:.4g} +- {self.value_std:.4g}"],
            ["gene range quartiles",
             " / ".join(f"{q:.4g}" for q in self.gene_range_quartiles)],
            ["condition mean quartiles",
             " / ".join(f"{q:.4g}" for q in self.condition_mean_quartiles)],
            ["constant genes", str(self.n_constant_genes)],
        ]
        if self.digest:
            rows.append(["sha256 digest", self.digest])
        # rendered locally (not via repro.bench) to keep the matrix
        # substrate free of upward dependencies
        width = max(len(label) for label, __ in rows)
        return "\n".join(
            f"{label.ljust(width)}  {value}" for label, value in rows
        )


def summarize(matrix: ExpressionMatrix) -> MatrixSummary:
    """Profile a matrix.

    Raises :class:`ValueError` on an empty matrix — there is nothing to
    summarize and downstream quantiles would be undefined.
    """
    values = matrix.values
    if values.size == 0:
        raise ValueError("cannot summarize an empty matrix")
    ranges = matrix.gene_ranges()
    condition_means = values.mean(axis=0)
    return MatrixSummary(
        n_genes=matrix.n_genes,
        n_conditions=matrix.n_conditions,
        value_min=float(values.min()),
        value_max=float(values.max()),
        value_mean=float(values.mean()),
        value_std=float(values.std()),
        gene_range_quartiles=_quantiles(ranges),
        condition_mean_quartiles=_quantiles(condition_means),
        n_constant_genes=int(np.sum(ranges == 0)),
        digest=matrix_digest(matrix),
    )


def _top_variable_genes(
    matrix: ExpressionMatrix, count: int
) -> List[Tuple[str, float]]:
    """The ``count`` genes with the widest expression ranges."""
    ranges = matrix.gene_ranges()
    order = np.argsort(-ranges, kind="stable")[:count]
    return [(matrix.gene_names[i], float(ranges[i])) for i in order]
