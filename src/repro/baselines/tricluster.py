"""TriCluster-style scaling baseline (Zhao & Zaki, SIGMOD 2005 — ref [26]),
restricted to a 2D expression matrix.

TriCluster captures *pure scaling* patterns: two genes belong together on
a condition set when the ratios of their expression values are nearly
constant, i.e. the ratio range is within a tolerance epsilon:

    max_c (d_ic / d_jc)  <=  (1 + epsilon) * min_c (d_ic / d_jc).

A pure scaling pattern (``d_i = s1 * d_j``, ``s1 > 0``) has ratio range
zero.  Shifting components break the constant ratio, and the coexistence
of positively and negatively correlated genes produces sign flips — the
"rather large expression ratio range" the reg-cluster paper points out.

As with the pCluster baseline, pairwise validity equals set validity, so
the miner enumerates condition subsets and extracts maximal cliques from
the gene compatibility graph.  Ratios are only meaningful on same-sign,
non-zero values; gene pairs violating that on a condition set are simply
incompatible (which is faithful: TriCluster operates on positive
expression values).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.baselines.common import Bicluster
from repro.baselines.pcluster import _prune_contained
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "ratio_range",
    "is_scaling_cluster",
    "TriClusterMiner",
    "mine_scaling_clusters",
]


def ratio_range(profile_i: np.ndarray, profile_j: np.ndarray) -> float:
    """Relative spread of the ratio ``d_i / d_j`` across conditions.

    Returns ``max_ratio / min_ratio - 1`` for strictly positive ratio
    sequences (after flipping a uniformly-negative one), and ``inf`` when
    ratios change sign or hit zero — such a pair can never satisfy a
    scaling model.
    """
    profile_i = np.asarray(profile_i, dtype=np.float64)
    profile_j = np.asarray(profile_j, dtype=np.float64)
    if profile_i.shape != profile_j.shape or profile_i.ndim != 1:
        raise ValueError("profiles must be 1-D and of equal length")
    if profile_i.size == 0:
        return 0.0
    if np.any(profile_j == 0):
        return float("inf")
    ratios = profile_i / profile_j
    if np.all(ratios < 0):
        ratios = -ratios
    if np.any(ratios <= 0):
        return float("inf")
    return float(ratios.max() / ratios.min() - 1.0)


def is_scaling_cluster(submatrix: np.ndarray, epsilon: float) -> bool:
    """Does every gene pair keep a near-constant expression ratio?"""
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    submatrix = np.asarray(submatrix, dtype=np.float64)
    if submatrix.ndim != 2:
        raise ValueError("expected a 2-D submatrix")
    n = submatrix.shape[0]
    for i in range(n - 1):
        for j in range(i + 1, n):
            if ratio_range(submatrix[i], submatrix[j]) > epsilon:
                return False
    return True


class TriClusterMiner:
    """Exact maximal scaling-bicluster miner for small matrices."""

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        epsilon: float,
        min_genes: int = 2,
        min_conditions: int = 2,
        max_conditions_searched: int = 20,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if min_genes < 2 or min_conditions < 2:
            raise ValueError(
                "scaling clusters need at least 2 genes and 2 conditions"
            )
        if matrix.n_conditions > max_conditions_searched:
            raise ValueError(
                f"matrix has {matrix.n_conditions} conditions; the exact "
                f"search is exponential and capped at "
                f"{max_conditions_searched}"
            )
        self.matrix = matrix
        self.epsilon = float(epsilon)
        self.min_genes = min_genes
        self.min_conditions = min_conditions

    def _maximal_gene_sets(
        self, conditions: Tuple[int, ...]
    ) -> Iterator[Tuple[int, ...]]:
        values = self.matrix.values[:, conditions]
        n = self.matrix.n_genes
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n - 1):
            for j in range(i + 1, n):
                if ratio_range(values[i], values[j]) <= self.epsilon:
                    graph.add_edge(i, j)
        for clique in nx.find_cliques(graph):
            if len(clique) >= self.min_genes:
                yield tuple(sorted(clique))

    def mine(self) -> List[Bicluster]:
        """All maximal scaling biclusters meeting the size thresholds."""
        found: Set[Bicluster] = set()
        n_cond = self.matrix.n_conditions

        def extend(conditions: Tuple[int, ...]) -> None:
            if len(conditions) >= self.min_conditions:
                best = 0
                for gene_set in self._maximal_gene_sets(conditions):
                    best = max(best, len(gene_set))
                    found.add(Bicluster(gene_set, conditions))
                if best < self.min_genes:
                    return
            start = conditions[-1] + 1 if conditions else 0
            for nxt in range(start, n_cond):
                extend(conditions + (nxt,))

        extend(())
        return _prune_contained(found)


def mine_scaling_clusters(
    matrix: ExpressionMatrix,
    *,
    epsilon: float,
    min_genes: int = 2,
    min_conditions: int = 2,
) -> Sequence[Bicluster]:
    """Convenience wrapper around :class:`TriClusterMiner`."""
    return TriClusterMiner(
        matrix,
        epsilon=epsilon,
        min_genes=min_genes,
        min_conditions=min_conditions,
    ).mine()
