"""Shared bicluster value object for the baseline algorithms.

The baselines predate the reg-cluster model and know nothing about
regulation chains or p/n orientation — their result is a plain (gene set,
condition set) bicluster.  A light value object keeps their outputs
comparable to each other and convertible for the evaluation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

import numpy as np

from repro.matrix.expression import ExpressionMatrix

__all__ = ["Bicluster"]


@dataclass(frozen=True)
class Bicluster:
    """An unordered genes x conditions bicluster."""

    genes: Tuple[int, ...]
    conditions: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "genes", tuple(sorted(set(int(g) for g in self.genes)))
        )
        object.__setattr__(
            self,
            "conditions",
            tuple(sorted(set(int(c) for c in self.conditions))),
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.genes), len(self.conditions))

    def cells(self) -> FrozenSet[Tuple[int, int]]:
        """The (gene, condition) cells the bicluster covers."""
        return frozenset((g, c) for g in self.genes for c in self.conditions)

    def submatrix(self, matrix: ExpressionMatrix) -> np.ndarray:
        """The raw value block of this bicluster."""
        return matrix.values[np.ix_(self.genes, self.conditions)]

    def contains(self, other: "Bicluster") -> bool:
        """Set containment on both axes."""
        return set(other.genes) <= set(self.genes) and set(
            other.conditions
        ) <= set(self.conditions)

    @classmethod
    def from_iterables(
        cls, genes: Iterable[int], conditions: Iterable[int]
    ) -> "Bicluster":
        return cls(tuple(genes), tuple(conditions))
