"""Scalable pCluster mining via pairwise maximal dimension sets.

The exact miner in :mod:`repro.baselines.pcluster` enumerates condition
subsets and is exponential in matrix width — fine for the paper's
comparison experiments, unusable beyond ~15 conditions.  The original
pCluster algorithm tames real datasets with *pairwise Maximal Dimension
Sets* (MDS): for genes ``x`` and ``y``, a maximal set of conditions on
which the per-condition differences ``d_x,c - d_y,c`` span at most
``delta``.  Computing an MDS is exactly the maximal-window problem over
the sorted differences, so this module reuses the reg-cluster sliding
window machinery.

:class:`FastPClusterMiner` is a seed-and-grow heuristic built on exact
pairwise MDSes:

1. every gene-pair MDS with enough conditions becomes a seed bicluster
   ``({x, y}, T)``;
2. each seed greedily absorbs every gene compatible (difference range
   within delta) with *all* current members on ``T``;
3. the grown gene set's condition set is then re-maximized, and the
   result deduplicated and containment-pruned.

Every reported bicluster is exactly delta-valid (the grow steps only
admit compatible rows); maximality is heuristic — the price of
polynomial time.  The unit tests cross-check against the exact miner on
small inputs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro.baselines.common import Bicluster
from repro.baselines.pcluster import _prune_contained
from repro.core.window import maximal_coherent_windows
from repro.matrix.expression import ExpressionMatrix

__all__ = ["gene_pair_mds", "FastPClusterMiner", "mine_pclusters_fast"]


def gene_pair_mds(
    row_x: np.ndarray,
    row_y: np.ndarray,
    delta: float,
    min_conditions: int,
) -> List[Tuple[int, ...]]:
    """Maximal dimension sets of one gene pair.

    Conditions whose difference values fit in a window of width delta;
    each returned tuple is sorted by condition id and has at least
    ``min_conditions`` members.
    """
    differences = np.asarray(row_x, dtype=np.float64) - np.asarray(
        row_y, dtype=np.float64
    )
    order = np.argsort(differences, kind="stable")
    windows = maximal_coherent_windows(
        differences[order], delta, min_conditions
    )
    return [
        tuple(sorted(int(c) for c in order[start : end + 1]))
        for start, end in windows
    ]


class FastPClusterMiner:
    """Seed-and-grow delta-pCluster mining (polynomial time, heuristic).

    Parameters mirror :class:`repro.baselines.pcluster.PClusterMiner`,
    without the width cap — this miner handles wide matrices.
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        delta: float,
        min_genes: int = 2,
        min_conditions: int = 2,
        max_seeds: int = 10000,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be >= 0")
        if min_genes < 2 or min_conditions < 2:
            raise ValueError("pClusters need at least 2 genes and 2 conditions")
        if max_seeds < 1:
            raise ValueError("max_seeds must be >= 1")
        self.matrix = matrix
        self.delta = float(delta)
        self.min_genes = min_genes
        self.min_conditions = min_conditions
        self.max_seeds = max_seeds

    # ------------------------------------------------------------------

    def _seeds(self) -> Iterator[Tuple[int, int, Tuple[int, ...]]]:
        """Gene-pair MDS seeds, largest condition sets first."""
        values = self.matrix.values
        n = self.matrix.n_genes
        collected: List[Tuple[int, int, Tuple[int, ...]]] = []
        for x in range(n - 1):
            for y in range(x + 1, n):
                for mds in gene_pair_mds(
                    values[x], values[y], self.delta, self.min_conditions
                ):
                    collected.append((x, y, mds))
        collected.sort(key=lambda seed: (-len(seed[2]), seed[:2]))
        yield from collected[: self.max_seeds]

    def _compatible(
        self, gene: int, members: List[int], conditions: Tuple[int, ...]
    ) -> bool:
        """Pairwise difference range within delta against every member."""
        values = self.matrix.values
        cols = list(conditions)
        candidate = values[gene, cols]
        for member in members:
            difference = candidate - values[member, cols]
            if difference.max() - difference.min() > self.delta:
                return False
        return True

    def _grow_genes(
        self, seed_genes: Tuple[int, int], conditions: Tuple[int, ...]
    ) -> List[int]:
        members = list(seed_genes)
        for gene in range(self.matrix.n_genes):
            if gene in seed_genes:
                continue
            if self._compatible(gene, members, conditions):
                members.append(gene)
        return sorted(members)

    def _valid_on(self, genes: List[int], conditions: List[int]) -> bool:
        """Exact delta-pCluster test for a gene set on a condition set."""
        values = self.matrix.values[np.ix_(genes, conditions)]
        for i in range(len(genes) - 1):
            diffs = values[i] - values[i + 1 :]
            if (diffs.max(axis=1) - diffs.min(axis=1)).max() > self.delta:
                return False
        return True

    def _widen_conditions(
        self, genes: List[int], conditions: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        """Greedily add conditions that keep the gene set delta-valid."""
        current = list(conditions)
        for condition in range(self.matrix.n_conditions):
            if condition in conditions:
                continue
            if self._valid_on(genes, current + [condition]):
                current.append(condition)
        return tuple(sorted(current))

    # ------------------------------------------------------------------

    def mine(self) -> List[Bicluster]:
        """All (deduplicated, containment-pruned) grown biclusters."""
        found: Set[Bicluster] = set()
        seen_seeds: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], bool] = {}
        for x, y, conditions in self._seeds():
            genes = self._grow_genes((x, y), conditions)
            if len(genes) < self.min_genes:
                continue
            key = (tuple(genes), conditions)
            if key in seen_seeds:
                continue
            seen_seeds[key] = True
            found.add(Bicluster(tuple(genes), conditions))
            widened = self._widen_conditions(genes, conditions)
            if len(widened) > len(conditions):
                found.add(Bicluster(tuple(genes), widened))
        return _prune_contained(found)


def mine_pclusters_fast(
    matrix: ExpressionMatrix,
    *,
    delta: float,
    min_genes: int = 2,
    min_conditions: int = 2,
    max_seeds: int = 10000,
) -> List[Bicluster]:
    """Convenience wrapper around :class:`FastPClusterMiner`."""
    return FastPClusterMiner(
        matrix,
        delta=delta,
        min_genes=min_genes,
        min_conditions=min_conditions,
        max_seeds=max_seeds,
    ).mine()
