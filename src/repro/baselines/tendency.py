"""Tendency-based baseline (OP-cluster / OPSM style — refs [3, 18]).

Tendency (order-preserving) models group genes whose expression values
*rise and fall synchronously* on a condition subset: a set of genes
supports an ordered condition sequence when every gene's values are
non-descending along it.  There is no coherence guarantee — the magnitudes
are ignored entirely — which is exactly the weakness the reg-cluster paper
demonstrates with its Figure 4 outlier: the tendency model happily groups
g2 with g1 and g3 because the three genes share a subsequence order, even
though g2 is affinely unrelated to the others.

The miner enumerates ordered condition sequences depth-first, keeping the
supporting gene set; a sequence is reported when it reaches the size
thresholds and its gene set is maximal.  ``min_difference`` optionally
requires each step to increase by more than a constant — the "regulation
threshold 0.8" style patch the paper discusses (and shows to behave
inconsistently, since the constraint applies only to adjacent sorted
values rather than all pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "supports_order",
    "OrderPreservingCluster",
    "TendencyMiner",
    "mine_tendency_clusters",
]


def supports_order(
    profile: np.ndarray,
    order: Sequence[int],
    *,
    min_difference: float = 0.0,
) -> bool:
    """Does a profile rise (weakly) along the ordered conditions?

    With ``min_difference == 0`` this is the classic OPSM test
    (non-descending).  A positive value requires every adjacent step to
    exceed it.
    """
    profile = np.asarray(profile, dtype=np.float64)
    order = list(order)
    if len(order) < 2:
        return True
    steps = np.diff(profile[order])
    if min_difference > 0:
        return bool(np.all(steps > min_difference))
    return bool(np.all(steps >= 0))


@dataclass(frozen=True)
class OrderPreservingCluster:
    """Genes supporting one ordered condition sequence."""

    order: Tuple[int, ...]
    genes: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(int(c) for c in self.order))
        object.__setattr__(
            self, "genes", tuple(sorted(int(g) for g in self.genes))
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.genes), len(self.order))


class TendencyMiner:
    """Order-preserving submatrix miner.

    Enumerates ordered condition sequences depth-first.  A sequence is
    emitted when it has at least ``min_conditions`` conditions and at
    least ``min_genes`` supporting genes, and no extension keeps the same
    gene set (so each reported gene set is attached to its longest
    sequence).
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        min_genes: int = 2,
        min_conditions: int = 2,
        min_difference: float = 0.0,
    ) -> None:
        if min_genes < 1 or min_conditions < 2:
            raise ValueError("min_genes >= 1 and min_conditions >= 2 required")
        if min_difference < 0:
            raise ValueError("min_difference must be >= 0")
        self.matrix = matrix
        self.min_genes = min_genes
        self.min_conditions = min_conditions
        self.min_difference = min_difference

    def mine(self) -> List[OrderPreservingCluster]:
        values = self.matrix.values
        n_genes, n_cond = self.matrix.shape
        found: Set[OrderPreservingCluster] = set()

        def extend(order: Tuple[int, ...], genes: np.ndarray) -> None:
            emitted_same_genes = False
            for nxt in range(n_cond):
                if nxt in order:
                    continue
                steps = values[genes, nxt] - values[genes, order[-1]]
                if self.min_difference > 0:
                    keep = steps > self.min_difference
                else:
                    keep = steps >= 0
                survivors = genes[keep]
                if survivors.shape[0] < self.min_genes:
                    continue
                if survivors.shape[0] == genes.shape[0]:
                    emitted_same_genes = True
                extend(order + (nxt,), survivors)
            if (
                len(order) >= self.min_conditions
                and genes.shape[0] >= self.min_genes
                and not emitted_same_genes
            ):
                found.add(
                    OrderPreservingCluster(order=order, genes=tuple(genes))
                )

        all_genes = np.arange(n_genes, dtype=np.intp)
        for start in range(n_cond):
            extend((start,), all_genes)
        return sorted(found, key=lambda c: (c.order, c.genes))


def mine_tendency_clusters(
    matrix: ExpressionMatrix,
    *,
    min_genes: int = 2,
    min_conditions: int = 2,
    min_difference: float = 0.0,
) -> List[OrderPreservingCluster]:
    """Convenience wrapper around :class:`TendencyMiner`."""
    return TendencyMiner(
        matrix,
        min_genes=min_genes,
        min_conditions=min_conditions,
        min_difference=min_difference,
    ).mine()
