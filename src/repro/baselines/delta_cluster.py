"""delta-cluster / FLOC-style baseline (Yang et al., ICDE 2002 — ref [25]).

The delta-cluster line of work searches for biclusters with low *residue*
by randomized local moves: starting from random seed biclusters, every
gene and every condition is repeatedly tried in/out of each cluster,
applying the single move that best reduces the cluster's mean residue
(the FLOC formulation).  Like pCluster, the model captures pure shifting
patterns — the residue of ``d_i = d_j + s2`` rows is zero — and degrades
on scaling or mixed-sign correlation.

This implementation keeps the structure of FLOC but simplifies the
bookkeeping: moves are evaluated cluster-by-cluster with the exact
mean-squared-residue, and a move is kept only if it strictly improves the
objective while respecting the minimum shape.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.cheng_church import mean_squared_residue
from repro.baselines.common import Bicluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["DeltaClusterMiner", "mine_delta_clusters"]


class DeltaClusterMiner:
    """Randomized move-based residue biclustering.

    Parameters
    ----------
    matrix:
        The expression data.
    n_clusters:
        Number of simultaneous clusters maintained.
    delta:
        Residue target; clusters at or below it stop accepting moves that
        grow the residue.
    min_genes, min_conditions:
        Minimum shape a move may not violate.
    max_rounds:
        Full gene+condition sweeps performed.
    seed:
        Seed for the initial random occupancy.
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        n_clusters: int = 3,
        delta: float = 0.5,
        min_genes: int = 2,
        min_conditions: int = 2,
        max_rounds: int = 10,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if delta < 0:
            raise ValueError("delta must be >= 0")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.matrix = matrix
        self.n_clusters = n_clusters
        self.delta = float(delta)
        self.min_genes = min_genes
        self.min_conditions = min_conditions
        self.max_rounds = max_rounds
        self.seed = seed

    def _residue(self, rows: np.ndarray, cols: np.ndarray) -> float:
        if rows.sum() < 1 or cols.sum() < 1:
            return float("inf")
        block = self.matrix.values[np.ix_(rows, cols)]
        return mean_squared_residue(block)

    def mine(self) -> List[Bicluster]:
        """Run the move-based search and return the final clusters."""
        rng = np.random.default_rng(self.seed)
        n_genes, n_cond = self.matrix.shape
        row_masks = []
        col_masks = []
        for _ in range(self.n_clusters):
            rows = np.zeros(n_genes, dtype=bool)
            cols = np.zeros(n_cond, dtype=bool)
            rows[
                rng.choice(
                    n_genes,
                    size=max(self.min_genes, n_genes // 4),
                    replace=False,
                )
            ] = True
            cols[
                rng.choice(
                    n_cond,
                    size=max(self.min_conditions, n_cond // 2),
                    replace=False,
                )
            ] = True
            row_masks.append(rows)
            col_masks.append(cols)

        for _ in range(self.max_rounds):
            improved = False
            for c in range(self.n_clusters):
                rows, cols = row_masks[c], col_masks[c]
                current = self._residue(rows, cols)
                # gene moves
                for gene in range(n_genes):
                    rows[gene] = not rows[gene]
                    if rows.sum() < self.min_genes:
                        rows[gene] = not rows[gene]
                        continue
                    candidate = self._residue(rows, cols)
                    if candidate < current:
                        current = candidate
                        improved = True
                    else:
                        rows[gene] = not rows[gene]
                # condition moves
                for cond in range(n_cond):
                    cols[cond] = not cols[cond]
                    if cols.sum() < self.min_conditions:
                        cols[cond] = not cols[cond]
                        continue
                    candidate = self._residue(rows, cols)
                    if candidate < current:
                        current = candidate
                        improved = True
                    else:
                        cols[cond] = not cols[cond]
            if not improved:
                break

        return [
            Bicluster(
                tuple(np.flatnonzero(rows)), tuple(np.flatnonzero(cols))
            )
            for rows, cols in zip(row_masks, col_masks)
        ]


def mine_delta_clusters(
    matrix: ExpressionMatrix,
    *,
    n_clusters: int = 3,
    delta: float = 0.5,
    seed: int = 0,
    min_genes: int = 2,
    min_conditions: int = 2,
    max_rounds: int = 10,
) -> List[Bicluster]:
    """Convenience wrapper around :class:`DeltaClusterMiner`."""
    return DeltaClusterMiner(
        matrix,
        n_clusters=n_clusters,
        delta=delta,
        seed=seed,
        min_genes=min_genes,
        min_conditions=min_conditions,
        max_rounds=max_rounds,
    ).mine()
