"""Full-space clustering baselines (refs [10, 23]).

The classic first-generation tools for expression profiles: agglomerative
hierarchical clustering with correlation distance (Eisen et al.) and
k-means (Tavazoie et al.).  Both evaluate similarity over *all*
conditions and assign each gene to exactly one cluster — the two
structural limitations (no subspace, no overlap) that motivated
biclustering in the first place.

Implemented directly on numpy; no external clustering library needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "correlation_distance_matrix",
    "hierarchical_clusters",
    "kmeans_clusters",
    "GeneClustering",
]


@dataclass(frozen=True)
class GeneClustering:
    """A full-space partition of genes."""

    labels: Tuple[int, ...]
    n_clusters: int

    def members(self, cluster: int) -> Tuple[int, ...]:
        """Genes assigned to one cluster."""
        return tuple(
            g for g, label in enumerate(self.labels) if label == cluster
        )

    def clusters(self) -> List[Tuple[int, ...]]:
        """All clusters as gene-id tuples (empty clusters omitted)."""
        return [
            members
            for c in range(self.n_clusters)
            if (members := self.members(c))
        ]


def correlation_distance_matrix(matrix: ExpressionMatrix) -> np.ndarray:
    """Pairwise ``1 - Pearson correlation`` over all conditions.

    Constant genes have undefined correlation; they get distance 1
    (uncorrelated) to everything, matching common tool behaviour.
    """
    values = matrix.values
    centered = values - values.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    safe = np.where(norms == 0, 1.0, norms)
    unit = centered / safe[:, None]
    corr = unit @ unit.T
    corr[norms == 0, :] = 0.0
    corr[:, norms == 0] = 0.0
    np.fill_diagonal(corr, 1.0)
    return 1.0 - np.clip(corr, -1.0, 1.0)


def hierarchical_clusters(
    matrix: ExpressionMatrix, n_clusters: int
) -> GeneClustering:
    """Average-linkage agglomerative clustering on correlation distance.

    O(n^3) in gene count — the textbook algorithm, fine for the
    comparison experiments.
    """
    n = matrix.n_genes
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}]")
    distance = correlation_distance_matrix(matrix)
    active = list(range(n))
    members = {i: [i] for i in range(n)}
    dist = {
        (i, j): float(distance[i, j])
        for i in range(n)
        for j in range(i + 1, n)
    }

    next_id = n
    while len(active) > n_clusters:
        (a, b), __ = min(dist.items(), key=lambda kv: (kv[1], kv[0]))
        merged = members.pop(a) + members.pop(b)
        members[next_id] = merged
        active = [x for x in active if x not in (a, b)]
        dist = {
            key: value
            for key, value in dist.items()
            if a not in key and b not in key
        }
        for other in active:
            pairs = [
                float(distance[i, j]) for i in merged for j in members[other]
            ]
            dist[(other, next_id)] = float(np.mean(pairs))
        active.append(next_id)
        next_id += 1

    labels = [0] * n
    for cluster_index, cluster_id in enumerate(sorted(active)):
        for gene in members[cluster_id]:
            labels[gene] = cluster_index
    return GeneClustering(labels=tuple(labels), n_clusters=len(active))


def kmeans_clusters(
    matrix: ExpressionMatrix,
    n_clusters: int,
    *,
    seed: int = 0,
    max_iterations: int = 100,
) -> GeneClustering:
    """Lloyd's k-means on the raw profiles (Tavazoie et al. style)."""
    values = matrix.values
    n = matrix.n_genes
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    centers = values[rng.choice(n, size=n_clusters, replace=False)].copy()
    labels = np.zeros(n, dtype=np.intp)
    for _ in range(max_iterations):
        distances = np.linalg.norm(
            values[:, None, :] - centers[None, :, :], axis=2
        )
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(n_clusters):
            mask = labels == c
            if mask.any():
                centers[c] = values[mask].mean(axis=0)
            else:  # re-seed an empty cluster with the farthest point
                farthest = int(distances.min(axis=1).argmax())
                centers[c] = values[farthest]
    return GeneClustering(labels=tuple(int(x) for x in labels),
                          n_clusters=n_clusters)
