"""Cheng & Church delta-bicluster baseline (ISMB 2000 — reference [6]).

The classic mean-squared-residue (MSR) biclustering algorithm: a bicluster
is acceptable when its MSR

    H(I, J) = (1/|I||J|) * sum_{i,j} (d_ij - d_iJ - d_Ij + d_IJ)^2

is at most delta, where ``d_iJ``/``d_Ij``/``d_IJ`` are the row, column and
overall means.  Clusters are grown with the paper's three phases —
multiple node deletion, single node deletion, node addition — and, to find
several clusters, discovered cells are masked with random noise before the
next round (the original masking scheme).

MSR tolerates pure shifting patterns (their residue is 0) but *requires
spatial proximity after row/column centering*; the reg-cluster paper's
point is that it cannot express scaling with per-gene factors nor group
negatively correlated genes (both inflate the residue), which the model
comparison benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.baselines.common import Bicluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["mean_squared_residue", "ChengChurchMiner", "mine_msr_biclusters"]


def mean_squared_residue(submatrix: np.ndarray) -> float:
    """The Cheng-Church H(I, J) score of a value block."""
    block = np.asarray(submatrix, dtype=np.float64)
    if block.ndim != 2 or block.size == 0:
        raise ValueError("MSR is defined on a non-empty 2-D block")
    row_means = block.mean(axis=1, keepdims=True)
    col_means = block.mean(axis=0, keepdims=True)
    overall = block.mean()
    residue = block - row_means - col_means + overall
    return float(np.mean(residue**2))


@dataclass
class _State:
    rows: np.ndarray
    cols: np.ndarray


class ChengChurchMiner:
    """Cheng-Church biclustering with masking for multiple clusters.

    Parameters
    ----------
    matrix:
        The expression data.
    delta:
        MSR acceptance threshold.
    n_clusters:
        How many biclusters to extract.
    alpha:
        Multiple-node-deletion aggressiveness (paper default 1.2).
    min_genes, min_conditions:
        Stop deleting below this shape.
    seed:
        Seed for the masking noise.
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        delta: float,
        n_clusters: int = 1,
        alpha: float = 1.2,
        min_genes: int = 2,
        min_conditions: int = 2,
        seed: int = 0,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be >= 0")
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.matrix = matrix
        self.delta = float(delta)
        self.n_clusters = n_clusters
        self.alpha = float(alpha)
        self.min_genes = min_genes
        self.min_conditions = min_conditions
        self.seed = seed

    # -- phases ----------------------------------------------------------

    def _msr_parts(self, block: np.ndarray):
        row_means = block.mean(axis=1, keepdims=True)
        col_means = block.mean(axis=0, keepdims=True)
        overall = block.mean()
        residue = block - row_means - col_means + overall
        msr = float(np.mean(residue**2))
        row_msr = np.mean(residue**2, axis=1)
        col_msr = np.mean(residue**2, axis=0)
        return msr, row_msr, col_msr

    def _multiple_deletion(self, values: np.ndarray, state: _State) -> None:
        while True:
            block = values[np.ix_(state.rows, state.cols)]
            msr, row_msr, col_msr = self._msr_parts(block)
            if msr <= self.delta:
                return
            changed = False
            if state.rows.shape[0] > max(self.min_genes, 100):
                keep = row_msr <= self.alpha * msr
                if keep.sum() >= self.min_genes and not keep.all():
                    state.rows = state.rows[keep]
                    changed = True
            if state.cols.shape[0] > max(self.min_conditions, 100):
                block = values[np.ix_(state.rows, state.cols)]
                msr, row_msr, col_msr = self._msr_parts(block)
                keep = col_msr <= self.alpha * msr
                if keep.sum() >= self.min_conditions and not keep.all():
                    state.cols = state.cols[keep]
                    changed = True
            if not changed:
                return

    def _single_deletion(self, values: np.ndarray, state: _State) -> None:
        while True:
            block = values[np.ix_(state.rows, state.cols)]
            msr, row_msr, col_msr = self._msr_parts(block)
            if msr <= self.delta:
                return
            best_row = int(np.argmax(row_msr))
            best_col = int(np.argmax(col_msr))
            drop_row = (
                row_msr[best_row] >= col_msr[best_col]
                and state.rows.shape[0] > self.min_genes
            )
            if drop_row:
                state.rows = np.delete(state.rows, best_row)
            elif state.cols.shape[0] > self.min_conditions:
                state.cols = np.delete(state.cols, best_col)
            elif state.rows.shape[0] > self.min_genes:
                state.rows = np.delete(state.rows, best_row)
            else:
                return  # cannot shrink further

    def _addition(self, values: np.ndarray, state: _State) -> None:
        n_genes, n_cond = values.shape
        while True:
            block = values[np.ix_(state.rows, state.cols)]
            msr, _, _ = self._msr_parts(block)
            changed = False

            # column addition
            others = np.setdiff1d(
                np.arange(n_cond, dtype=np.intp), state.cols
            )
            if others.size:
                row_means = block.mean(axis=1, keepdims=True)
                overall = block.mean()
                cand = values[np.ix_(state.rows, others)]
                cand_col_means = cand.mean(axis=0, keepdims=True)
                res = cand - row_means - cand_col_means + overall
                scores = np.mean(res**2, axis=0)
                accept = others[scores <= msr]
                if accept.size:
                    state.cols = np.sort(np.concatenate((state.cols, accept)))
                    changed = True

            # row addition
            block = values[np.ix_(state.rows, state.cols)]
            msr, _, _ = self._msr_parts(block)
            others = np.setdiff1d(
                np.arange(n_genes, dtype=np.intp), state.rows
            )
            if others.size:
                col_means = block.mean(axis=0, keepdims=True)
                overall = block.mean()
                cand = values[np.ix_(others, state.cols)]
                cand_row_means = cand.mean(axis=1, keepdims=True)
                res = cand - cand_row_means - col_means + overall
                scores = np.mean(res**2, axis=1)
                accept = others[scores <= msr]
                if accept.size:
                    state.rows = np.sort(np.concatenate((state.rows, accept)))
                    changed = True

            if not changed:
                return

    # -- public ----------------------------------------------------------

    def mine(self) -> List[Bicluster]:
        """Extract ``n_clusters`` delta-biclusters (masking between rounds)."""
        rng = np.random.default_rng(self.seed)
        values = np.array(self.matrix.values, copy=True)
        lo, hi = float(values.min()), float(values.max())
        clusters: List[Bicluster] = []
        for _ in range(self.n_clusters):
            state = _State(
                rows=np.arange(values.shape[0], dtype=np.intp),
                cols=np.arange(values.shape[1], dtype=np.intp),
            )
            self._multiple_deletion(values, state)
            self._single_deletion(values, state)
            self._addition(values, state)
            block = values[np.ix_(state.rows, state.cols)]
            if mean_squared_residue(block) > self.delta:
                break  # could not reach delta, stop extracting
            cluster = Bicluster(tuple(state.rows), tuple(state.cols))
            clusters.append(cluster)
            mask_rows = np.asarray(cluster.genes, dtype=np.intp)
            mask_cols = np.asarray(cluster.conditions, dtype=np.intp)
            values[np.ix_(mask_rows, mask_cols)] = rng.uniform(
                lo, hi, size=(mask_rows.size, mask_cols.size)
            )
        return clusters


def mine_msr_biclusters(
    matrix: ExpressionMatrix,
    *,
    delta: float,
    n_clusters: int = 1,
    seed: int = 0,
    min_genes: int = 2,
    min_conditions: int = 2,
) -> List[Bicluster]:
    """Convenience wrapper around :class:`ChengChurchMiner`."""
    return ChengChurchMiner(
        matrix,
        delta=delta,
        n_clusters=n_clusters,
        seed=seed,
        min_genes=min_genes,
        min_conditions=min_conditions,
    ).mine()
