"""OPSM baseline (Ben-Dor, Chor, Karp, Yakhini, RECOMB 2002 — ref [3]).

The Order-Preserving SubMatrix problem: find a set of columns and a
*linear order* on them such that many rows are strictly increasing along
that order.  Ben-Dor et al. search for a single statistically surprising
model with a greedy partial-model growth: start from all ``(a, b)``
column pairs as 2-column models, keep the ``l`` highest-scoring partial
models, and repeatedly extend them by one column (at either end or, in
this faithful-but-simplified variant, any position) until the target size
``k`` is reached.

A partial model is scored by its *support* (rows strictly increasing
along it); the original paper uses an upper-tail probability score —
support is the monotone surrogate (the row count ordering equals the
tail-probability ordering for fixed k and n), so greedily maximizing
support reproduces the search behaviour without the incomplete-gamma
machinery.

Like every tendency model, OPSM ignores magnitudes entirely: the paper's
Figure 4 outlier is a supporting row of the best model — the comparison
benchmark checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.matrix.expression import ExpressionMatrix

__all__ = ["OPSMModel", "OPSMMiner", "mine_opsm"]


@dataclass(frozen=True)
class OPSMModel:
    """A complete order-preserving model: column order + supporting rows."""

    order: Tuple[int, ...]
    rows: Tuple[int, ...]

    @property
    def support(self) -> int:
        return len(self.rows)

    @property
    def size(self) -> int:
        return len(self.order)


def _supporting_rows(values: np.ndarray, order: Sequence[int]) -> np.ndarray:
    """Rows strictly increasing along the ordered columns."""
    cols = values[:, list(order)]
    return np.flatnonzero(np.all(np.diff(cols, axis=1) > 0, axis=1))


class OPSMMiner:
    """Greedy partial-model search for one k-column OPSM.

    Parameters
    ----------
    matrix:
        The expression data.
    model_size:
        Target number of columns ``k``.
    beam_width:
        Number of partial models kept per growth round (``l`` in the
        original paper; they report ``l = 100`` suffices in practice).
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        model_size: int,
        beam_width: int = 100,
    ) -> None:
        if model_size < 2:
            raise ValueError("model_size must be >= 2")
        if model_size > matrix.n_conditions:
            raise ValueError(
                f"model_size {model_size} exceeds "
                f"{matrix.n_conditions} conditions"
            )
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.matrix = matrix
        self.model_size = model_size
        self.beam_width = beam_width

    def _seed_models(self) -> List[Tuple[int, ...]]:
        """All ordered column pairs, best supported first."""
        n = self.matrix.n_conditions
        values = self.matrix.values
        pairs: List[Tuple[int, Tuple[int, ...]]] = []
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                support = int(np.sum(values[:, b] - values[:, a] > 0))
                pairs.append((support, (a, b)))
        pairs.sort(key=lambda item: (-item[0], item[1]))
        return [order for __, order in pairs[: self.beam_width]]

    def _extensions(self, order: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """All single-column insertions into a partial order."""
        used = set(order)
        out: List[Tuple[int, ...]] = []
        for column in range(self.matrix.n_conditions):
            if column in used:
                continue
            for slot in range(len(order) + 1):
                out.append(order[:slot] + (column,) + order[slot:])
        return out

    def mine(self) -> OPSMModel:
        """The best (highest-support) model of the target size found."""
        values = self.matrix.values
        beam = self._seed_models()
        for __ in range(self.model_size - 2):
            scored: List[Tuple[int, Tuple[int, ...]]] = []
            seen = set()
            for order in beam:
                for extended in self._extensions(order):
                    if extended in seen:
                        continue
                    seen.add(extended)
                    support = _supporting_rows(values, extended).shape[0]
                    scored.append((support, extended))
            scored.sort(key=lambda item: (-item[0], item[1]))
            beam = [order for __, order in scored[: self.beam_width]]
            if not beam:
                break
        best = beam[0]
        rows = _supporting_rows(values, best)
        return OPSMModel(order=best, rows=tuple(int(r) for r in rows))


def mine_opsm(
    matrix: ExpressionMatrix, *, model_size: int, beam_width: int = 100
) -> OPSMModel:
    """Convenience wrapper around :class:`OPSMMiner`."""
    return OPSMMiner(
        matrix, model_size=model_size, beam_width=beam_width
    ).mine()
