"""pCluster baseline (Wang et al., SIGMOD 2002 — reference [24]).

The pCluster model captures *pure shifting* patterns: a submatrix is a
delta-pCluster when the pScore of every 2 x 2 sub-block is at most delta,

    pScore([[d_ia, d_ib], [d_ja, d_jb]]) = |(d_ia - d_ib) - (d_ja - d_jb)|.

Equivalently — and this is what the implementation uses — for every gene
pair the *range* of their per-condition differences over the cluster's
conditions must not exceed delta.  A pure shifting pattern
(``d_i = d_j + s2``) has pScore 0; any genuine scaling component makes the
pScore grow with the data magnitude, which is exactly the limitation the
reg-cluster paper exploits (see the Figure 4 discussion: coexisting
positive and negative correlation leads to a "rather large pScore").

The miner enumerates condition subsets depth-first and, for each subset,
reduces maximal-gene-set discovery to maximal cliques on the gene
compatibility graph (pairwise validity is exactly set validity for this
model).  Exponential in the worst case — the original paper's MDS-based
pruning exists to tame real datasets — but exact, and entirely adequate
for the comparison experiments, which run on small matrices.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.baselines.common import Bicluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["pscore", "max_pscore", "is_pcluster", "PClusterMiner", "mine_pclusters"]


def pscore(block: np.ndarray) -> float:
    """pScore of one 2 x 2 block."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (2, 2):
        raise ValueError(f"pScore is defined on 2x2 blocks, got {block.shape}")
    return float(
        abs((block[0, 0] - block[0, 1]) - (block[1, 0] - block[1, 1]))
    )


def max_pscore(submatrix: np.ndarray) -> float:
    """Largest pScore over all 2 x 2 sub-blocks of a submatrix.

    Computed through the difference-range identity: for genes ``i, j``
    the maximum pScore over condition pairs equals
    ``max_c (d_ic - d_jc) - min_c (d_ic - d_jc)``.
    """
    submatrix = np.asarray(submatrix, dtype=np.float64)
    if submatrix.ndim != 2 or submatrix.shape[0] < 2 or submatrix.shape[1] < 2:
        return 0.0
    worst = 0.0
    for i in range(submatrix.shape[0] - 1):
        diffs = submatrix[i] - submatrix[i + 1 :]
        ranges = diffs.max(axis=1) - diffs.min(axis=1)
        worst = max(worst, float(ranges.max()))
    return worst


def is_pcluster(submatrix: np.ndarray, delta: float) -> bool:
    """Does the submatrix satisfy the delta-pCluster (pure shifting) model?"""
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    return max_pscore(submatrix) <= delta


class PClusterMiner:
    """Exact maximal delta-pCluster miner for small matrices.

    Parameters
    ----------
    matrix:
        The expression data.
    delta:
        pScore tolerance.
    min_genes, min_conditions:
        Minimum bicluster shape (``nr`` and ``nc`` of the original paper).
    max_conditions_searched:
        Safety bound on the matrix width; the subset enumeration is
        exponential in it.
    """

    def __init__(
        self,
        matrix: ExpressionMatrix,
        *,
        delta: float,
        min_genes: int = 2,
        min_conditions: int = 2,
        max_conditions_searched: int = 20,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be >= 0")
        if min_genes < 2 or min_conditions < 2:
            raise ValueError("pClusters need at least 2 genes and 2 conditions")
        if matrix.n_conditions > max_conditions_searched:
            raise ValueError(
                f"matrix has {matrix.n_conditions} conditions; the exact "
                f"pCluster search is exponential and capped at "
                f"{max_conditions_searched} (raise max_conditions_searched "
                f"to override)"
            )
        self.matrix = matrix
        self.delta = float(delta)
        self.min_genes = min_genes
        self.min_conditions = min_conditions

    # -- gene-set discovery for a fixed condition set -------------------

    def _maximal_gene_sets(
        self, conditions: Tuple[int, ...]
    ) -> Iterator[Tuple[int, ...]]:
        values = self.matrix.values[:, conditions]
        n = self.matrix.n_genes
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n - 1):
            diffs = values[i] - values[i + 1 :]
            ranges = diffs.max(axis=1) - diffs.min(axis=1)
            for offset in np.flatnonzero(ranges <= self.delta):
                graph.add_edge(i, i + 1 + int(offset))
        for clique in nx.find_cliques(graph):
            if len(clique) >= self.min_genes:
                yield tuple(sorted(clique))

    # -- search ----------------------------------------------------------

    def mine(self) -> List[Bicluster]:
        """All maximal delta-pClusters meeting the size thresholds.

        Maximality is two-sided: a reported bicluster is not contained in
        any other reported bicluster.
        """
        found: Set[Bicluster] = set()
        n_cond = self.matrix.n_conditions

        def extend(conditions: Tuple[int, ...], genes_upper: int) -> None:
            if genes_upper < self.min_genes:
                return
            if len(conditions) >= self.min_conditions:
                best = 0
                for gene_set in self._maximal_gene_sets(conditions):
                    best = max(best, len(gene_set))
                    found.add(Bicluster(gene_set, conditions))
                if best < self.min_genes:
                    return  # no superset of conditions can do better
            start = conditions[-1] + 1 if conditions else 0
            for nxt in range(start, n_cond):
                extend(conditions + (nxt,), genes_upper)

        extend((), self.matrix.n_genes)
        return _prune_contained(found)


def _prune_contained(found: Set[Bicluster]) -> List[Bicluster]:
    """Drop biclusters contained in another one; deterministic order."""
    ranked = sorted(
        found,
        key=lambda b: (-(len(b.genes) * len(b.conditions)), b.conditions, b.genes),
    )
    kept: List[Bicluster] = []
    for candidate in ranked:
        if not any(other.contains(candidate) for other in kept):
            kept.append(candidate)
    return kept


def mine_pclusters(
    matrix: ExpressionMatrix,
    *,
    delta: float,
    min_genes: int = 2,
    min_conditions: int = 2,
) -> Sequence[Bicluster]:
    """Convenience wrapper around :class:`PClusterMiner`."""
    return PClusterMiner(
        matrix,
        delta=delta,
        min_genes=min_genes,
        min_conditions=min_conditions,
    ).mine()
