"""Baseline models and miners the paper compares reg-cluster against."""

from repro.baselines.cheng_church import (
    ChengChurchMiner,
    mean_squared_residue,
    mine_msr_biclusters,
)
from repro.baselines.common import Bicluster
from repro.baselines.delta_cluster import DeltaClusterMiner, mine_delta_clusters
from repro.baselines.fullspace import (
    GeneClustering,
    correlation_distance_matrix,
    hierarchical_clusters,
    kmeans_clusters,
)
from repro.baselines.opsm import OPSMMiner, OPSMModel, mine_opsm
from repro.baselines.pcluster_fast import (
    FastPClusterMiner,
    gene_pair_mds,
    mine_pclusters_fast,
)
from repro.baselines.pcluster import (
    PClusterMiner,
    is_pcluster,
    max_pscore,
    mine_pclusters,
    pscore,
)
from repro.baselines.tendency import (
    OrderPreservingCluster,
    TendencyMiner,
    mine_tendency_clusters,
    supports_order,
)
from repro.baselines.tricluster import (
    TriClusterMiner,
    is_scaling_cluster,
    mine_scaling_clusters,
    ratio_range,
)

__all__ = [
    "Bicluster",
    # pCluster (pure shifting)
    "pscore",
    "max_pscore",
    "is_pcluster",
    "PClusterMiner",
    "mine_pclusters",
    "FastPClusterMiner",
    "gene_pair_mds",
    "mine_pclusters_fast",
    # TriCluster-style (pure scaling)
    "ratio_range",
    "is_scaling_cluster",
    "TriClusterMiner",
    "mine_scaling_clusters",
    # tendency / order preserving
    "OPSMModel",
    "OPSMMiner",
    "mine_opsm",
    "supports_order",
    "OrderPreservingCluster",
    "TendencyMiner",
    "mine_tendency_clusters",
    # Cheng-Church
    "mean_squared_residue",
    "ChengChurchMiner",
    "mine_msr_biclusters",
    # delta-cluster / FLOC
    "DeltaClusterMiner",
    "mine_delta_clusters",
    # full space
    "correlation_distance_matrix",
    "hierarchical_clusters",
    "kmeans_clusters",
    "GeneClustering",
]
